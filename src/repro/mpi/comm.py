"""Communicators: the user-facing API of the simulated MPI substrate.

A :class:`Comm` is a *per-process handle*: every simulated process holds its
own ``Comm`` object for each communicator it belongs to, carrying its rank
within that communicator and the communicator's context ids.  The API
follows the mpi4py conventions taught by the hpc-parallel guides:

* **lowercase methods** (``send`` / ``recv`` / ``bcast`` / ...) communicate
  arbitrary Python objects through pickling — which, as a pleasant side
  effect, enforces the value semantics of distributed memory: no mutable
  state is ever shared between "processes";
* **uppercase methods** (``Send`` / ``Recv``) communicate numpy arrays
  through explicit buffer copies, the fast path for numerical data.

Communicator-creating operations (``split``, ``dup``, ``create``) are
collective and implemented with the same agreement protocol a real MPI uses:
the root gathers the inputs, computes the new groups, allocates fresh
context ids, and scatters each member its assignment.

Wildcard receives (``ANY_SOURCE``/``ANY_TAG``) and probes are the points
where MPI semantics permit several outcomes; under an armed
:class:`~repro.mpi.sched.MatchSchedule`
(:attr:`~repro.mpi.world.WorldConfig.match_schedule`) those choices are
made by the schedule — seeded, recorded, and replayable — instead of by
arrival timing.  Specific-source operations are unaffected.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import (
    AbortError,
    CollectiveMismatchError,
    CommError,
    ProcessFailedError,
    RevokedError,
    TruncationError,
)
from repro.mpi import buffer_collectives, collectives
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    UNDEFINED,
    is_valid_recv_tag,
    is_valid_tag,
)
from repro.mpi.group import Group
from repro.mpi.mailbox import Envelope, PostedRecv
from repro.mpi.progress import Completion
from repro.mpi.reduce_ops import SUM, Op
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.serialization import Blob
from repro.mpi.status import Status
from repro.mpi.world import World

#: Collective tags advance in strides of this much per collective call
#: (see :meth:`Comm._next_coll_tag`); composed collectives may use
#: sub-tags ``tag + k`` for ``k < _COLL_TAG_STRIDE`` without colliding
#: with the next collective on the same communicator.  The audit constant
#: :data:`repro.mpi.collectives.MAX_TAG_OFFSET` records the largest ``k``
#: actually used and a regression test pins ``MAX_TAG_OFFSET < stride``.
_COLL_TAG_STRIDE = 64

#: Tag space reserved for the ULFM-style recovery operations
#: (``shrink``/``agree``), far above the collective tag sequence
#: (collective tags stay below ``(1 << 24) * _COLL_TAG_STRIDE``).
#: Recovery operations run on the *collective* context with raw
#: envelopes, bypassing the revocation poisoning on purpose — they are
#: exactly the operations that must still work on a revoked communicator.
_RECOVERY_TAG_BASE = 1 << 31
#: Sub-tags per recovery operation (shrink assignment, agree gather,
#: agree result).
_RECOVERY_TAG_STRIDE = 4


class Comm:
    """A per-process handle on one communicator.

    Construct communicators through :func:`make_world_comm` (for
    ``COMM_WORLD``) and the collective methods ``split`` / ``dup`` /
    ``create`` — never directly.
    """

    def __init__(self, world: World, group: Group, my_world_id: int, ctx_pair: tuple[int, int], name: str = "comm"):
        rank = group.rank_of(my_world_id)
        if rank == UNDEFINED:
            raise CommError(f"process {my_world_id} is not a member of {group}")
        self._world = world
        self._group = group
        self._my_world_id = my_world_id
        self._rank = rank
        self._p2p_ctx, self._coll_ctx = ctx_pair
        self._coll_seq = 0
        self._recovery_seq = 0
        self._freed = False
        #: Human-readable communicator name (diagnostics only).
        self.name = name
        #: Encoded size (bytes) of the last payload this handle sent —
        #: diagnostic, read by the MPH layer for byte-level profiling.
        self.last_payload_bytes = 0
        # Lazily computed CommHierarchy (False = not yet computed;
        # None = flat: single node, hierarchy disabled, or trivial size).
        self._hier = False

    def _hierarchy(self):
        """The communicator's node hierarchy, or ``None`` when flat.

        ``None`` means two-level collectives have nothing to exploit:
        the world is single-node, ``hierarchical_collectives`` is off,
        or every member of *this* communicator shares one node.
        """
        if self._hier is False:
            hier = None
            cfg = self._world.config
            topo = getattr(self._world, "topology", None)
            if (
                cfg.hierarchical_collectives
                and topo is not None
                and topo.nnodes > 1
                and self.size > 2
            ):
                from repro.mpi.topology import CommHierarchy

                h = CommHierarchy.from_topology(
                    topo, [self._group.world_id(r) for r in range(self.size)]
                )
                if h.nnodes > 1:
                    hier = h
            self._hier = hier
        return self._hier

    # -- introspection -------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the communicator."""
        return self._group.size

    @property
    def group(self) -> Group:
        """The communicator's process group."""
        return self._group

    @property
    def world(self) -> World:
        """The world this communicator lives in."""
        return self._world

    def Get_rank(self) -> int:
        """mpi4py-style alias of :attr:`rank`."""
        return self._rank

    def Get_size(self) -> int:
        """mpi4py-style alias of :attr:`size`."""
        return self._group.size

    def Get_group(self) -> Group:
        """mpi4py-style alias of :attr:`group`."""
        return self._group

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Comm {self.name!r} rank {self._rank}/{self.size}>"

    # -- internal helpers ------------------------------------------------------

    @property
    def _mailbox(self):
        return self._world.mailboxes[self._my_world_id]

    def _check(self) -> None:
        if self._freed:
            raise CommError(f"communicator {self.name!r} has been freed")
        world = self._world
        if world.ctx_revoked(self._p2p_ctx):
            raise RevokedError(
                f"communicator {self.name!r} has been revoked", comm_name=self.name
            )
        world.check_abort()
        schedule = world.config.fault_schedule
        if schedule is not None:
            schedule.on_op(self._my_world_id)

    def _check_rank(self, rank: int, role: str) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"{role} {rank} out of range for {self.name!r} of size {self.size}")

    def _deliver(self, dest: int, env: Envelope) -> None:
        self._world.deliver(self._group.world_id(dest), env)

    def _world_source(self, source: int) -> Optional[int]:
        """World rank of a comm-local receive source (``None`` for
        wildcards) — lets the mailbox fail the receive the moment that
        rank dies instead of blocking until the watchdog notices."""
        return None if source == ANY_SOURCE else self._group.world_id(source)

    @property
    def _serialization_fastpath(self) -> bool:
        return self._world.config.serialization_fastpath

    # -- point-to-point: object mode ------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a pickled copy of *obj* to rank *dest* (eager: returns as
        soon as the message is buffered at the destination)."""
        self._isend_common(obj, dest, tag, sync=False)

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Synchronous send: blocks until the matching receive is posted."""
        self._isend_common(obj, dest, tag, sync=True)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; the returned request is already complete."""
        self._isend_common(obj, dest, tag, sync=False)
        return SendRequest()

    def _isend_common(self, obj: Any, dest: int, tag: int, sync: bool) -> None:
        self._check()
        if dest == PROC_NULL:
            return
        self._check_rank(dest, "destination rank")
        if not is_valid_tag(tag):
            raise CommError(f"invalid send tag {tag}")
        blob = Blob.encode(obj, allow_array=self._serialization_fastpath)
        self.last_payload_bytes = blob.nbytes
        # Synchronous sends park on a progress-engine Completion: the
        # matching receive signals it, so the blocked sender wakes once
        # (or on abort/watchdog) instead of polling a threading.Event.
        event = Completion() if sync else None
        env = Envelope(self._p2p_ctx, self._rank, tag, blob, "object", blob.nbytes, sync_event=event)
        self._deliver(dest, env)
        if event is not None:
            self._world.wait_event(
                event, self._my_world_id, f"ssend(dest={dest}, tag={tag}) on {self.name}"
            )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Blocking receive; returns the sent object (a private copy)."""
        req = self.irecv(source, tag)
        return req.wait(status)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; posted immediately (MPI matching order)."""
        self._check()
        if source == PROC_NULL:
            return _ProcNullRecvRequest()
        if source != ANY_SOURCE:
            self._check_rank(source, "source rank")
        if not is_valid_recv_tag(tag):
            raise CommError(f"invalid receive tag {tag}")
        posted = self._mailbox.post_recv(
            self._p2p_ctx, source, tag, world_source=self._world_source(source)
        )
        what = f"recv(source={source}, tag={tag}) on {self.name}"
        return RecvRequest(self._mailbox, posted, _decode_object, what)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Combined send and receive (deadlock-free under eager sends)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag, status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; return its status
        without receiving it."""
        self._check()
        what = f"probe(source={source}, tag={tag}) on {self.name}"
        env = self._mailbox.probe(self._p2p_ctx, source, tag, block=True, what=what)
        assert env is not None
        return Status(source=env.source, tag=env.tag, count=env.count)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe: status of a matching pending message, else
        ``None``."""
        self._check()
        env = self._mailbox.probe(self._p2p_ctx, source, tag, block=False, what="iprobe")
        if env is None:
            return None
        return Status(source=env.source, tag=env.tag, count=env.count)

    # -- point-to-point: buffer mode --------------------------------------------

    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer-mode send of a numpy array (a private copy is taken, so
        the caller may immediately reuse the array)."""
        self._check()
        if dest == PROC_NULL:
            return
        self._check_rank(dest, "destination rank")
        if not is_valid_tag(tag):
            raise CommError(f"invalid send tag {tag}")
        arr = np.array(array, copy=True)
        self.last_payload_bytes = arr.nbytes
        env = Envelope(self._p2p_ctx, self._rank, tag, arr, "buffer", arr.size)
        self._deliver(dest, env)

    def Recv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> np.ndarray:
        """Buffer-mode receive into *buf* (which must be large enough);
        returns *buf* for convenience."""
        self._check()
        if source == PROC_NULL:
            if status is not None:
                status.source, status.tag, status.count = PROC_NULL, ANY_TAG, 0
            return buf
        if source != ANY_SOURCE:
            self._check_rank(source, "source rank")
        if not is_valid_recv_tag(tag):
            raise CommError(f"invalid receive tag {tag}")
        posted = self._mailbox.post_recv(
            self._p2p_ctx, source, tag, world_source=self._world_source(source)
        )
        what = f"Recv(source={source}, tag={tag}) on {self.name}"
        env = self._mailbox.wait(posted, what)
        arr = _decode_buffer(env)
        if arr.size > buf.size:
            raise TruncationError(
                f"message of {arr.size} elements truncates receive buffer of {buf.size}"
            )
        flat = buf.reshape(-1)
        flat[: arr.size] = arr.reshape(-1)
        if status is not None:
            status.source, status.tag, status.count = env.source, env.tag, arr.size
        return buf

    def Isend(self, array: np.ndarray, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffer-mode send (eager, already complete)."""
        self.Send(array, dest, tag)
        return SendRequest()

    def Send_init(self, buf: np.ndarray, dest: int, tag: int = 0):
        """Bind a persistent send to ``(buf, dest, tag)``; each ``start``
        snapshots the buffer's current contents (``MPI_Send_init``)."""
        from repro.mpi.persistent import PersistentSend

        self._check()
        if dest != PROC_NULL:
            self._check_rank(dest, "destination rank")
        return PersistentSend(self, buf, dest, tag)

    def Recv_init(self, buf: np.ndarray, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Bind a persistent receive into *buf* (``MPI_Recv_init``)."""
        from repro.mpi.persistent import PersistentRecv

        self._check()
        return PersistentRecv(self, buf, source, tag)

    # -- collectives -------------------------------------------------------------

    def _next_coll_tag(self) -> int:
        seq = self._coll_seq
        self._coll_seq += 1
        return (seq % (1 << 24)) * _COLL_TAG_STRIDE

    # Collective messages carry their operation name in the envelope's
    # ``op`` slot (not inside the pickled payload), so validation never
    # forces a decode and relays can forward received blobs verbatim.

    def _coll_encode(self, value: Any) -> Blob:
        """Encode a collective payload once (shareable across envelopes)."""
        return Blob.encode(value, allow_array=self._serialization_fastpath)

    def _coll_send_blob(
        self, dest: int, tag: int, blob: Blob, opname: str, reused: bool = False
    ) -> None:
        """Send an already-encoded blob.  *reused* marks envelopes whose
        encoding was shared from an earlier send (fan-out siblings, relay
        forwards) for the ``copy_avoided_bytes`` ledger."""
        env = Envelope(
            self._coll_ctx,
            self._rank,
            tag,
            blob,
            "object",
            blob.nbytes,
            op=opname,
            copy_avoided=blob.nbytes if reused else 0,
        )
        self._deliver(dest, env)

    def _coll_send(self, dest: int, tag: int, value: Any, opname: str) -> None:
        self._coll_send_blob(dest, tag, self._coll_encode(value), opname)

    def _coll_fanout(self, dests: Sequence[int], tag: int, value: Any, opname: str) -> None:
        """Send *value* to every rank in *dests*: encoded once and shared
        when the fast path is on, re-encoded per destination when off
        (the legacy cost model, kept for ablation)."""
        if self._serialization_fastpath:
            blob = self._coll_encode(value)
            for i, dest in enumerate(dests):
                self._coll_send_blob(dest, tag, blob, opname, reused=i > 0)
        else:
            for dest in dests:
                self._coll_send(dest, tag, value, opname)

    def _coll_post(self, source: int, tag: int) -> PostedRecv:
        """Pre-post a collective receive (no blocking).  Collectives that
        both send and receive in one phase — ring/dissemination steps,
        ``alltoall`` — post their receives *before* sending, so the
        matching envelope lands directly on the posted receive and the
        subsequent :meth:`_coll_complete` parks at most once."""
        return self._mailbox.post_recv(
            self._coll_ctx, source, tag, world_source=self._world_source(source)
        )

    def _coll_complete(self, posted: PostedRecv, source: int, opname: str) -> Envelope:
        """Wait on a pre-posted collective receive and validate the
        operation name (aborting the world on a collective mismatch)."""
        env = self._mailbox.wait(posted, f"{opname}(source={source}) on {self.name}")
        if self._world.config.validate_collectives and env.op != opname:
            exc = CollectiveMismatchError(
                f"rank {self._rank} of {self.name!r} executing {opname!r} received a "
                f"message belonging to {env.op!r}: ranks called mismatched collectives"
            )
            self._world.abort(AbortError(str(exc), origin_rank=self._my_world_id))
            raise exc
        return env

    def _coll_recv_env(self, source: int, tag: int, opname: str) -> Envelope:
        return self._coll_complete(self._coll_post(source, tag), source, opname)

    def _coll_recv(self, source: int, tag: int, opname: str) -> Any:
        return self._coll_recv_env(source, tag, opname).payload.decode()

    def _coll_recv_blob(self, source: int, tag: int, opname: str) -> Blob:
        """Receive the still-encoded blob (tree relays forward it verbatim
        and decode lazily, only if they need the value themselves)."""
        return self._coll_recv_env(source, tag, opname).payload

    def _coll_send_buffer(self, dest: int, tag: int, arr: np.ndarray, opname: str) -> None:
        snap = np.array(arr, copy=True)
        env = Envelope(self._coll_ctx, self._rank, tag, snap, "bufcoll", snap.size, op=opname)
        self._deliver(dest, env)

    def _coll_fanout_buffer(
        self, dests: Sequence[int], tag: int, arr: np.ndarray, opname: str
    ) -> None:
        """Buffer-mode fan-out: one read-only snapshot shared by every
        destination when the fast path is on (receivers copy out of it),
        one private copy per destination when off."""
        if self._serialization_fastpath and len(dests) > 1:
            snap = np.array(arr, copy=True)
            snap.flags.writeable = False
            for i, dest in enumerate(dests):
                env = Envelope(
                    self._coll_ctx,
                    self._rank,
                    tag,
                    snap,
                    "bufcoll",
                    snap.size,
                    op=opname,
                    copy_avoided=snap.nbytes if i > 0 else 0,
                )
                self._deliver(dest, env)
        else:
            for dest in dests:
                self._coll_send_buffer(dest, tag, arr, opname)

    def _coll_forward_buffer(self, dest: int, tag: int, arr: np.ndarray, opname: str) -> None:
        """Forward a received buffer-mode payload verbatim (tree relay):
        the array is already a private snapshot owned by the transport, so
        no further copy is needed."""
        env = Envelope(
            self._coll_ctx,
            self._rank,
            tag,
            arr,
            "bufcoll",
            arr.size,
            op=opname,
            copy_avoided=arr.nbytes,
        )
        self._deliver(dest, env)

    def _coll_recv_buffer(self, source: int, tag: int, opname: str) -> np.ndarray:
        env = self._coll_recv_env(source, tag, opname)
        return self._coll_buffer_payload(env, opname)

    def _coll_complete_buffer(self, posted: PostedRecv, source: int, opname: str) -> np.ndarray:
        """Buffer-mode counterpart of :meth:`_coll_complete`."""
        env = self._coll_complete(posted, source, opname)
        return self._coll_buffer_payload(env, opname)

    def _coll_buffer_payload(self, env: Envelope, opname: str) -> np.ndarray:
        payload = env.payload
        if isinstance(payload, Blob):
            value = payload.decode()
            if not isinstance(value, np.ndarray):
                raise TruncationError(
                    f"buffer-mode collective {opname!r} received an object-mode "
                    f"payload of type {type(value).__name__}"
                )
            return value
        return payload

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        self._check()
        collectives.barrier(self, self._next_coll_tag())

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast *obj* from *root*; every rank returns the object."""
        self._check()
        self._check_rank(root, "root rank")
        return collectives.bcast(self, obj, root, self._next_coll_tag())

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        """Gather one object per rank to *root* (list in rank order there,
        ``None`` elsewhere)."""
        self._check()
        self._check_rank(root, "root rank")
        return collectives.gather(self, obj, root, self._next_coll_tag())

    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Scatter one object per rank from *root*'s sequence."""
        self._check()
        self._check_rank(root, "root rank")
        return collectives.scatter(self, objs, root, self._next_coll_tag())

    def allgather(self, obj: Any) -> list:
        """Gather one object per rank onto every rank."""
        self._check()
        return collectives.allgather(self, obj, self._next_coll_tag())

    def alltoall(self, objs: Sequence[Any]) -> list:
        """Personalised all-to-all exchange."""
        self._check()
        return collectives.alltoall(self, objs, self._next_coll_tag())

    def reduce(self, obj: Any, op: Op = SUM, root: int = 0) -> Any:
        """Reduce contributions in rank order to *root* (``None`` elsewhere)."""
        self._check()
        self._check_rank(root, "root rank")
        return collectives.reduce(self, obj, op, root, self._next_coll_tag())

    def allreduce(self, obj: Any, op: Op = SUM) -> Any:
        """Reduce contributions; every rank gets the result."""
        self._check()
        return collectives.allreduce(self, obj, op, self._next_coll_tag())

    def scan(self, obj: Any, op: Op = SUM) -> Any:
        """Inclusive prefix reduction."""
        self._check()
        return collectives.scan(self, obj, op, self._next_coll_tag())

    def exscan(self, obj: Any, op: Op = SUM) -> Any:
        """Exclusive prefix reduction (``None`` on rank 0)."""
        self._check()
        return collectives.exscan(self, obj, op, self._next_coll_tag())

    def reduce_scatter(self, objs: Sequence[Any], op: Op = SUM) -> Any:
        """Per-slot reduction followed by a scatter of the slots."""
        self._check()
        return collectives.reduce_scatter(self, objs, op, self._next_coll_tag())

    # -- buffer-mode collectives (numpy fast path, mpi4py uppercase) ---------------

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        """In-place buffer broadcast from *root* (every rank passes an
        identically-shaped array)."""
        self._check()
        self._check_rank(root, "root rank")
        return buffer_collectives.Bcast(self, buf, root, self._next_coll_tag())

    def Gather(
        self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray] = None, root: int = 0
    ) -> Optional[np.ndarray]:
        """Buffer gather: root receives the blocks stacked along a leading
        rank axis (allocated when *recvbuf* is None)."""
        self._check()
        self._check_rank(root, "root rank")
        return buffer_collectives.Gather(self, sendbuf, recvbuf, root, self._next_coll_tag())

    def Scatter(
        self, sendbuf: Optional[np.ndarray], recvbuf: np.ndarray, root: int = 0
    ) -> np.ndarray:
        """Buffer scatter from the root's stacked array into *recvbuf*."""
        self._check()
        self._check_rank(root, "root rank")
        return buffer_collectives.Scatter(self, sendbuf, recvbuf, root, self._next_coll_tag())

    def Allgather(
        self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Buffer allgather (leading rank axis on every rank)."""
        self._check()
        return buffer_collectives.Allgather(self, sendbuf, recvbuf, self._next_coll_tag())

    def Gatherv(self, sendbuf: np.ndarray, root: int = 0):
        """Variable-size buffer gather: root gets ``(concatenated array,
        per-rank counts)``, others ``None`` — counts are discovered, not
        pre-agreed."""
        self._check()
        self._check_rank(root, "root rank")
        return buffer_collectives.Gatherv(self, sendbuf, root, self._next_coll_tag())

    def Scatterv(
        self,
        sendbuf: Optional[np.ndarray] = None,
        counts: Optional[Sequence[int]] = None,
        root: int = 0,
    ) -> np.ndarray:
        """Variable-size buffer scatter: the root splits *sendbuf* along
        axis 0 by *counts*; every rank returns its block."""
        self._check()
        self._check_rank(root, "root rank")
        counts_list = list(counts) if counts is not None else None
        return buffer_collectives.Scatterv(self, sendbuf, counts_list, root, self._next_coll_tag())

    def Reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        op: Op = SUM,
        root: int = 0,
    ) -> Optional[np.ndarray]:
        """Elementwise buffer reduction to *root* (result there, None
        elsewhere)."""
        self._check()
        self._check_rank(root, "root rank")
        return buffer_collectives.Reduce(self, sendbuf, recvbuf, op, root, self._next_coll_tag())

    def Allreduce(
        self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray] = None, op: Op = SUM
    ) -> np.ndarray:
        """Elementwise buffer reduction delivered to every rank."""
        self._check()
        return buffer_collectives.Allreduce(self, sendbuf, recvbuf, op, self._next_coll_tag())

    # -- communicator management ---------------------------------------------------

    def split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """Collectively split into one new communicator per *color*.

        Ranks passing the same color form a new communicator, ordered by
        ``(key, old rank)``.  Passing ``UNDEFINED`` opts out (returns
        ``None``).  This is the workhorse of MPH's handshake (paper §6).
        """
        self._check()
        if color != UNDEFINED and color < 0:
            raise CommError(f"split color must be non-negative or UNDEFINED, got {color}")
        data = self.gather((color, key))
        assignments: Optional[list] = None
        if self._rank == 0:
            assert data is not None
            by_color: dict[int, list[tuple[int, int]]] = {}
            for old_rank, (c, k) in enumerate(data):
                if c != UNDEFINED:
                    by_color.setdefault(c, []).append((k, old_rank))
            assignments = [None] * self.size
            for c in sorted(by_color):
                members = sorted(by_color[c])
                ctxs = self._world.alloc_context_pair()
                world_ids = tuple(self._group.world_id(r) for _, r in members)
                for _, old_rank in members:
                    assignments[old_rank] = (ctxs, world_ids, c)
        mine = self.scatter(assignments)
        if mine is None:
            return None
        ctxs, world_ids, my_color = mine
        return Comm(
            self._world,
            Group(world_ids),
            self._my_world_id,
            ctxs,
            name=f"{self.name}.split({my_color})",
        )

    def dup(self, name: Optional[str] = None) -> "Comm":
        """Collective duplicate: same group, fresh contexts (isolated
        traffic)."""
        self._check()
        ctxs = self.bcast(self._world.alloc_context_pair() if self._rank == 0 else None)
        return Comm(
            self._world, self._group, self._my_world_id, ctxs, name=name or f"{self.name}.dup"
        )

    def create(self, group: Group) -> Optional["Comm"]:
        """Collective creation of a communicator over a subgroup.

        Every rank of this communicator must call it with the same *group*;
        non-members receive ``None``.
        """
        self._check()
        for wid in group.members:
            if self._group.rank_of(wid) == UNDEFINED:
                raise CommError(f"group member {wid} is not part of {self.name!r}")
        ctxs = self.bcast(self._world.alloc_context_pair() if self._rank == 0 else None)
        if self._my_world_id not in group:
            return None
        return Comm(self._world, group, self._my_world_id, ctxs, name=f"{self.name}.create")

    # -- ULFM-style fault tolerance ------------------------------------------

    @property
    def revoked(self) -> bool:
        """Whether this communicator has been revoked."""
        return self._world.ctx_revoked(self._p2p_ctx)

    def revoke(self) -> None:
        """Revoke the communicator (the ``MPIX_Comm_revoke`` analogue).

        Non-collective: any member may call it after observing a failure.
        Every pending receive and probe on the communicator fails with
        :class:`~repro.errors.RevokedError`, and so does every future
        operation on any member's handle — which is the point: all
        surviving members are knocked out of whatever communication
        pattern they were in and reach the recovery path
        (:meth:`shrink` / :meth:`agree`) together.  Idempotent.

        A synchronous send already parked on a matched-but-unclaimed
        message is *not* poisoned (its completion can still arrive);
        revocation targets receives, probes, and future operations.
        """
        if self._freed:
            raise CommError(f"communicator {self.name!r} has been freed")
        self._world.revoke_contexts((self._p2p_ctx, self._coll_ctx), self.name)

    def _live_members(self) -> tuple[list[int], list[int]]:
        """``(comm ranks, world ids)`` of members not known dead, in rank
        order.  The simulated substrate has a perfect failure detector
        (the executor records fail-stop deaths synchronously), so every
        member computes the same answer as long as failures are quiescent
        during recovery — the standard ULFM assumption."""
        failed = self._world.failed_ranks
        live_ranks = [
            r for r in range(self.size) if self._group.world_id(r) not in failed
        ]
        return live_ranks, [self._group.world_id(r) for r in live_ranks]

    def _next_recovery_tag(self) -> int:
        """Reserved tag for the next recovery operation.  Recovery calls
        are collective over the live members, so the per-handle sequence
        stays agreed across ranks."""
        tag = _RECOVERY_TAG_BASE + self._recovery_seq * _RECOVERY_TAG_STRIDE
        self._recovery_seq += 1
        return tag

    def _recovery_send(self, dest: int, tag: int, value: Any) -> None:
        """Raw recovery-plane send to comm rank *dest* (collective
        context, reserved tag) — works on a revoked communicator."""
        blob = Blob.encode(value, allow_array=False)
        env = Envelope(self._coll_ctx, self._rank, tag, blob, "object", blob.nbytes)
        self._deliver(dest, env)

    def _recovery_recv(self, source: int, tag: int, what: str) -> Any:
        """Raw recovery-plane receive from comm rank *source* — fails
        fast with :class:`ProcessFailedError` if *source* dies."""
        posted = self._mailbox.post_recv(
            self._coll_ctx, source, tag, world_source=self._group.world_id(source)
        )
        env = self._mailbox.wait(posted, what)
        return env.payload.decode()

    def shrink(self, name: Optional[str] = None) -> "Comm":
        """Build a new communicator over the surviving members (the
        ``MPIX_Comm_shrink`` analogue).

        Collective over every *live* member of this communicator — dead
        ranks are excluded by construction.  Works on a revoked
        communicator (that is its main use: revoke, then shrink, then
        continue on the result).  The lowest-ranked survivor allocates
        the new context ids and distributes the membership; survivors
        keep their relative rank order.
        """
        if self._freed:
            raise CommError(f"communicator {self.name!r} has been freed")
        self._world.check_abort()
        new_name = name or f"{self.name}.shrink"
        tag = self._next_recovery_tag()
        live_ranks, live_wids = self._live_members()
        coordinator = live_ranks[0]
        if self._rank == coordinator:
            ctxs = self._world.alloc_context_pair()
            for r in live_ranks[1:]:
                try:
                    self._recovery_send(r, tag, (ctxs, live_wids))
                except ProcessFailedError:
                    continue  # died since the liveness snapshot; shrink goes on
        else:
            ctxs, live_wids = self._recovery_recv(
                coordinator, tag, f"shrink(coordinator={coordinator}) on {self.name}"
            )
        return Comm(self._world, Group(live_wids), self._my_world_id, ctxs, name=new_name)

    def agree(self, flag: bool) -> bool:
        """Fault-tolerant agreement on a boolean (the ``MPIX_Comm_agree``
        analogue): returns the logical AND of the *flag* values of the
        members that could contribute.

        Collective over the live members; works on a revoked communicator
        and in the presence of dead ranks.  A member that dies during the
        agreement simply stops contributing — the survivors still all
        return the same value, which is the property recovery protocols
        need ("did everyone checkpoint step N?").
        """
        if self._freed:
            raise CommError(f"communicator {self.name!r} has been freed")
        self._world.check_abort()
        tag = self._next_recovery_tag()
        live_ranks, _ = self._live_members()
        coordinator = live_ranks[0]
        if self._rank == coordinator:
            result = bool(flag)
            for r in live_ranks[1:]:
                try:
                    result = result and bool(
                        self._recovery_recv(
                            r, tag, f"agree(gather from {r}) on {self.name}"
                        )
                    )
                except ProcessFailedError:
                    continue
            for r in live_ranks[1:]:
                try:
                    self._recovery_send(r, tag + 1, result)
                except ProcessFailedError:
                    continue
            return result
        self._recovery_send(coordinator, tag, bool(flag))
        return bool(
            self._recovery_recv(
                coordinator, tag + 1, f"agree(result from {coordinator}) on {self.name}"
            )
        )

    def free(self) -> None:
        """Mark the handle freed; subsequent use raises ``CommError``."""
        self._freed = True

    def abort(self, reason: str = "Comm.Abort called") -> None:
        """Abort the whole world (``MPI_Abort``): wake and fail every
        process."""
        exc = AbortError(
            f"abort from world rank {self._my_world_id} on {self.name!r}: {reason}",
            origin_rank=self._my_world_id,
        )
        self._world.abort(exc)
        raise exc

    # mpi4py-style aliases for the collective/management verbs ---------------

    def Barrier(self) -> None:
        """Alias of :meth:`barrier`."""
        self.barrier()

    def Split(self, color: int, key: int = 0) -> Optional["Comm"]:
        """Alias of :meth:`split`."""
        return self.split(color, key)

    def Dup(self) -> "Comm":
        """Alias of :meth:`dup`."""
        return self.dup()

    def Create(self, group: Group) -> Optional["Comm"]:
        """Alias of :meth:`create`."""
        return self.create(group)

    def Free(self) -> None:
        """Alias of :meth:`free`."""
        self.free()

    def Abort(self, errorcode: int = 1) -> None:
        """Alias of :meth:`abort`."""
        self.abort(f"errorcode {errorcode}")


class _ProcNullRecvRequest(Request):
    """Receive from ``PROC_NULL``: completes immediately with no data."""

    def wait(self, status: Optional[Status] = None) -> None:
        if status is not None:
            status.source, status.tag, status.count = PROC_NULL, ANY_TAG, 0
        return None

    def test(self, status: Optional[Status] = None) -> tuple[bool, Any]:
        return True, self.wait(status)


def _decode_object(env: Envelope) -> Any:
    """Decode an envelope for an object-mode receive."""
    if env.kind == "buffer":
        # A buffer-mode message received by an object-mode receive: the
        # payload is normally a private array copy, handed over directly.
        # A payload mapped zero-copy out of a shm page arrives read-only
        # — copy it so receivers always own writable data (copy-on-read).
        payload = env.payload
        if isinstance(payload, np.ndarray) and not payload.flags.writeable:
            return payload.copy()
        return payload
    if isinstance(env.payload, Blob):
        return env.payload.decode()
    return pickle.loads(env.payload)


def _decode_buffer(env: Envelope) -> np.ndarray:
    """Decode an envelope for a buffer-mode receive."""
    if env.kind == "buffer":
        return env.payload
    obj = env.payload.decode() if isinstance(env.payload, Blob) else pickle.loads(env.payload)
    if not isinstance(obj, np.ndarray):
        raise TruncationError(
            f"buffer-mode receive matched an object-mode message of type {type(obj).__name__}"
        )
    return obj


def make_world_comm(world: World, global_rank: int) -> Comm:
    """Build the ``COMM_WORLD`` handle for one process of *world*."""
    return Comm(
        world,
        Group(range(world.nprocs)),
        global_rank,
        (0, 1),
        name="COMM_WORLD",
    )
