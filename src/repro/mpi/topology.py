"""Simulated node topology: which ranks share a "node" (and thus shm).

Real MPI jobs span multiple nodes; ranks on the same node can exchange
messages through shared memory while cross-node pairs must use the
network.  MPICH-G2 formalised this as *multi-protocol* point-to-point
communication plus *multi-level* collective algorithms that exploit the
cluster hierarchy.  This module provides the same split for the
simulator:

:class:`Topology`
    Maps world ranks onto ``nodes`` simulated nodes (block distribution,
    configured via :attr:`repro.mpi.world.WorldConfig.nodes`).  The
    process backend's ``transport="auto"`` consults it to pick shared
    memory for same-node peer pairs and sockets otherwise; the
    single-node default (``nodes=None`` → 1 node) therefore gives every
    pair the fast path.

:class:`CommHierarchy`
    The topology restricted to one communicator's members: per-node
    member lists and one *leader* rank per node.  Hierarchical
    collectives (``collectives.py`` / ``buffer_collectives.py``) use it
    to run a two-level algorithm — an intra-node phase rooted at the
    leader (over shm) and an inter-node phase among leaders only (over
    the peer transport) — mirroring MPICH-G2's topology-aware trees.

Both classes are plain data + arithmetic: no locks, no I/O, safe to
share across threads and cheap to recompute per communicator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Topology", "CommHierarchy"]


class Topology:
    """Block mapping of ``nprocs`` world ranks onto ``nnodes`` nodes.

    Rank *r* lives on node ``r * nnodes // nprocs`` — the standard block
    distribution: contiguous rank ranges per node, sizes differing by at
    most one.  With one node (the default) every pair is same-node.
    """

    __slots__ = ("nprocs", "nnodes", "_node_of")

    def __init__(self, nprocs: int, nnodes: int = 1):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        self.nprocs = nprocs
        #: Number of simulated nodes (clamped to ``nprocs``: a node with
        #: zero ranks would be meaningless).
        self.nnodes = min(nnodes, nprocs)
        self._node_of = tuple(
            r * self.nnodes // nprocs for r in range(nprocs)
        )

    @classmethod
    def from_config(cls, nprocs: int, config) -> "Topology":
        """Build the world topology from a :class:`WorldConfig`."""
        nodes = getattr(config, "nodes", None)
        return cls(nprocs, nodes if nodes else 1)

    def node_of(self, rank: int) -> int:
        """The simulated node hosting world *rank*."""
        return self._node_of[rank]

    def same_node(self, a: int, b: int) -> bool:
        """True when world ranks *a* and *b* share a simulated node."""
        return self._node_of[a] == self._node_of[b]

    def node_ranks(self, node: int) -> List[int]:
        """World ranks hosted on *node*, in rank order."""
        return [r for r in range(self.nprocs) if self._node_of[r] == node]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Topology nprocs={self.nprocs} nnodes={self.nnodes}>"


class CommHierarchy:
    """A :class:`Topology` restricted to one communicator's members.

    All ranks here are *communicator* ranks (``0..size-1``), not world
    ranks: the hierarchy is computed from the communicator's group so
    two-level collectives address members with ordinary comm sends.

    ``leaders`` holds one member per participating node (the
    lowest-ranked member on that node), in node order.  ``local(rank)``
    is the member's index within its node's member list — the rank it
    plays in the intra-node phase.
    """

    __slots__ = (
        "size",
        "node_by_member",
        "members_by_node",
        "leaders",
        "_leader_pos",
    )

    def __init__(self, node_by_member: List[int]):
        self.size = len(node_by_member)
        #: node id per communicator rank.
        self.node_by_member = tuple(node_by_member)
        members: Dict[int, List[int]] = {}
        for rank, node in enumerate(node_by_member):
            members.setdefault(node, []).append(rank)
        #: node id -> sorted member ranks on that node.
        self.members_by_node = {n: tuple(m) for n, m in members.items()}
        #: one leader member per node, in ascending node order.
        self.leaders = tuple(
            members[n][0] for n in sorted(members)
        )
        self._leader_pos = {n: i for i, n in enumerate(sorted(members))}

    @classmethod
    def from_topology(
        cls, topo: Topology, world_ranks: List[int]
    ) -> "CommHierarchy":
        """Hierarchy of a communicator whose member *i* is
        ``world_ranks[i]``."""
        return cls([topo.node_of(w) for w in world_ranks])

    @property
    def nnodes(self) -> int:
        """Number of nodes with at least one member."""
        return len(self.members_by_node)

    def node(self, rank: int) -> int:
        """Node id of communicator *rank*."""
        return self.node_by_member[rank]

    def same_node(self, a: int, b: int) -> bool:
        """True when communicator ranks *a* and *b* share a node."""
        return self.node_by_member[a] == self.node_by_member[b]

    def members(self, rank: int) -> Tuple[int, ...]:
        """All members on *rank*'s node (including *rank*), rank order."""
        return self.members_by_node[self.node_by_member[rank]]

    def local(self, rank: int) -> int:
        """Index of *rank* within its node's member list."""
        return self.members(rank).index(rank)

    def leader(self, rank: int) -> int:
        """The leader member of *rank*'s node."""
        return self.members(rank)[0]

    def leader_index(self, rank: int) -> int:
        """Position of *rank*'s node in the (node-ordered) leader list."""
        return self._leader_pos[self.node_by_member[rank]]

    def effective_leaders(self, root: int) -> Tuple[List[int], int]:
        """Leader list for a rooted collective, with *root* promoted.

        A rooted two-level collective (bcast, reduce) wants *root* —
        not its node's default leader — to represent its node in the
        inter-node phase, so the data never takes an extra intra-node
        hop.  Returns ``(leaders, root_pos)`` where ``leaders`` is the
        node-ordered leader list with root's node's entry replaced by
        *root*, and ``root_pos`` is root's index in that list.
        """
        leaders = list(self.leaders)
        pos = self.leader_index(root)
        leaders[pos] = root
        return leaders, pos

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CommHierarchy size={self.size} nnodes={self.nnodes} "
            f"leaders={self.leaders}>"
        )
