"""Benchmark-suite configuration.

Every file here regenerates one experiment from DESIGN.md's index (E1–E18
map to the paper's worked examples and prose claims; the paper prints no
numbered tables or figures, so the *shape* assertions in EXPERIMENTS.md are
the reproduction target).

Run with::

    pytest benchmarks/ --benchmark-only

Shape-level expectations (who wins, how costs scale) are asserted inside
the benchmarks themselves where meaningful, so the suite doubles as a
regression harness for the performance claims.
"""

import pytest


def pytest_collection_modifyitems(items):
    """Benchmarks involving many simulated processes are inherently slow;
    mark everything so `-m 'not benchmark_suite'` can skip them in CI."""
    for item in items:
        item.add_marker(pytest.mark.benchmark_suite)
