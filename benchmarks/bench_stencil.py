"""Halo-exchange stencil throughput: 1-D vs 2-D decomposition.

The classic HPC kernel underneath every component model: repeated
five-point Laplacians with halo exchange.  Compared:

* 1-D latitude bands (2 halo messages per process per step) vs the 2-D
  Cartesian decomposition (4 messages, but shorter edges);
* serial baseline for the pure-numpy cost.

Expected shape on this substrate: the serialised compute means more
processes cannot speed a step up, so the measurement isolates the *halo
traffic* overhead — 2-D pays more messages per step at these sizes, the
honest cost of its (real-hardware) surface-to-volume advantage.
"""

import numpy as np
import pytest

from repro.climate.fields import DistributedField
from repro.climate.fields2d import DistributedField2D
from repro.climate.grid import LatLonGrid
from repro.mpi import run_spmd

STEPS = 20
GRID = LatLonGrid(64, 128)


def smooth(lat, lon):
    return np.sin(np.deg2rad(lat)) + np.cos(np.deg2rad(lon))


@pytest.mark.parametrize(
    "layout",
    ["serial", "1d-4", "2d-4", "1d-8", "2d-8"],
)
def test_stencil_iteration(benchmark, layout):
    kind, _, procs = layout.partition("-")
    nprocs = int(procs) if procs else 1
    field_cls = DistributedField2D if kind == "2d" else DistributedField

    def main(comm):
        f = field_cls.from_function(comm, GRID, smooth)
        for _ in range(STEPS):
            f.data = f.data + 0.05 * f.laplacian()
        return f.area_mean()

    def run():
        return run_spmd(nprocs, main)

    values = benchmark(run)
    assert len(set(values)) == 1  # all ranks agree on the reduction
    benchmark.extra_info.update(layout=layout, steps=STEPS, grid="64x128")


def test_1d_and_2d_agree_bitwise(benchmark):
    """The two decompositions produce identical fields; timed as the
    combined verification run."""

    def main_for(cls, n):
        def main(comm):
            f = cls.from_function(comm, GRID, smooth)
            for _ in range(STEPS):
                f.data = f.data + 0.05 * f.laplacian()
            return f.gather_global(root=0)

        return lambda: run_spmd(n, main)[0]

    def run():
        a = main_for(DistributedField, 4)()
        b = main_for(DistributedField2D, 4)()
        np.testing.assert_array_equal(a, b)
        return True

    benchmark.pedantic(run, rounds=3, iterations=1)
