"""E12 — the §2.2 static-allocation memory waste of the monolithic build.

Paper basis: "Static allocation will increase unnecessary memory usage.
For example, component A on processor group A will still allocate memory
for static allocations in module component B which actually sits in
processor group B."

Measured: bytes of per-process static arrays under the monolithic build
vs the MPH-style own-component-only allocation, across resolutions.  The
waste factor grows with the number of components whose grids a process
does *not* run — asserted > 2 at every size (5 components here).
"""

import pytest

from repro.baselines.pcm_monolithic import run_pcm_monolithic
from repro.climate.ccsm import CCSMConfig


def scaled_config(scale: int) -> CCSMConfig:
    return CCSMConfig(
        nsteps=1,
        shapes={
            "atmosphere": (8 * scale, 16 * scale),
            "ocean": (6 * scale, 12 * scale),
            "land": (4 * scale, 8 * scale),
            "ice": (4 * scale, 4 * scale),
        },
    )


@pytest.mark.parametrize("scale", [1, 2, 4])
def test_static_allocation_waste(benchmark, scale):
    cfg = scaled_config(scale)

    def run():
        return run_pcm_monolithic(cfg)

    diags = benchmark(run)
    mem = diags["memory"]
    assert mem.waste_factor > 2.0
    benchmark.extra_info.update(
        scale=scale,
        all_modules_bytes=mem.all_modules_bytes,
        own_component_bytes=mem.own_component_bytes,
        waste_factor=round(mem.waste_factor, 2),
    )
