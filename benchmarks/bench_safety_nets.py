"""Ablation — what the substrate's safety nets cost.

The deadlock watchdog and collective-operation validation are always-on
by default; this bench measures their overhead on a communication-heavy
workload so the default can be defended with a number.  Expected shape:
both are near-free — the watchdog only runs on blocked waiters' wakeup
slices and validation is one string compare per collective message.
"""

import pytest

from repro.mpi import WorldConfig, run_spmd

CONFIGS = {
    "all-on": WorldConfig(),
    "no-deadlock-detection": WorldConfig(deadlock_detection=False),
    "no-collective-validation": WorldConfig(validate_collectives=False),
    "all-off": WorldConfig(deadlock_detection=False, validate_collectives=False),
}


def chatty_workload(comm):
    """A mix of p2p and collectives with real waiting."""
    for i in range(20):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.send(i, right, tag=1)
        comm.recv(source=left, tag=1)
        comm.allreduce(i)
        if i % 5 == 0:
            comm.barrier()
    return True


@pytest.mark.parametrize("config", list(CONFIGS), ids=list(CONFIGS))
def test_safety_net_overhead(benchmark, config):
    def run():
        return run_spmd(8, chatty_workload, config=CONFIGS[config])

    benchmark(run)
    benchmark.extra_info["config"] = config
