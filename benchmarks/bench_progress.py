"""Progress-engine ablation kernels: polling vs event.

Three kernels quantify what the event engine buys over per-slice polling:

* ``blocked_recv_latency`` — a receiver parked in ``Request.waitany`` on
  a message that arrives later; measures send-to-completion latency.
  Under polling, waitany is a sleep loop, so delivery waits out the
  current backoff; under the event engine the waitset is signalled by
  the delivery itself.
* ``idle_wakeups`` — 15 of 16 ranks block on a receive while rank 0
  sleeps; counts wakeups per blocked rank-second.  Polling pays one
  wakeup per wait slice, the event engine O(1) per episode.
* ``handshake`` — 32-rank dissemination barriers (five send/recv
  handshake steps each); measures seconds per barrier round.

Everything runs in-process on the simulated substrate.  The driver in
``compare.py`` runs each kernel under both engines and writes
``BENCH_progress.json``.
"""

from __future__ import annotations

import statistics
import time

from repro.mpi import World, WorldConfig, run_spmd
from repro.mpi.executor import run_world
from repro.mpi.request import Request


def blocked_recv_latency(engine: str, reps: int = 5, idle: float = 0.15) -> dict:
    """Median seconds from send to waitany completion for a parked receiver."""
    world = World(2, WorldConfig(progress_engine=engine))

    def receiver(comm):
        latencies = []
        for i in range(reps):
            req = comm.irecv(source=1, tag=i)
            _, t_sent = Request.waitany([req])
            latencies.append(time.perf_counter() - t_sent)
        return latencies

    def sender(comm):
        for i in range(reps):
            time.sleep(idle)
            comm.send(time.perf_counter(), 0, tag=i)

    results = run_world(world, [receiver, sender], timeout=60)
    latencies = results[0].value
    return {
        "median_latency_s": statistics.median(latencies),
        "max_latency_s": max(latencies),
        "reps": reps,
    }


def idle_wakeups(engine: str, ranks: int = 16, idle: float = 1.0) -> dict:
    """Wakeups per blocked rank-second while ``ranks - 1`` ranks sit in a
    receive that only completes after *idle* seconds."""
    world = World(ranks, WorldConfig(progress_engine=engine))

    def main(comm):
        if comm.rank == 0:
            time.sleep(idle)
            for dest in range(1, comm.size):
                comm.send("go", dest, tag=1)
            return None
        return comm.recv(source=0, tag=1)

    run_world(world, [main] * ranks, timeout=60)
    total_wakeups = sum(world.progress_stats(r).wakeups for r in range(1, ranks))
    blocked = sum(world.progress_stats(r).blocked_seconds for r in range(1, ranks))
    return {
        "ranks": ranks,
        "idle_seconds": idle,
        "total_wakeups": total_wakeups,
        "blocked_rank_seconds": blocked,
        "wakeups_per_blocked_second": total_wakeups / max(blocked, 1e-9),
    }


def handshake(engine: str, ranks: int = 32, rounds: int = 10) -> dict:
    """Seconds per 32-rank dissemination barrier (handshake cascade)."""

    def main(comm):
        comm.barrier()  # warm-up: first rendezvous pays thread start-up
        t0 = time.perf_counter()
        for _ in range(rounds):
            comm.barrier()
        return time.perf_counter() - t0

    values = run_spmd(
        ranks, main, config=WorldConfig(progress_engine=engine), timeout=120
    )
    return {
        "ranks": ranks,
        "rounds": rounds,
        "seconds_per_barrier": max(values) / rounds,
    }


KERNELS = {
    "blocked_recv_latency": blocked_recv_latency,
    "idle_wakeups_16_ranks": idle_wakeups,
    "handshake_32_ranks": handshake,
}

#: Per-kernel metric the ablation compares (lower is better for all three).
HEADLINE = {
    "blocked_recv_latency": "median_latency_s",
    "idle_wakeups_16_ranks": "wakeups_per_blocked_second",
    "handshake_32_ranks": "seconds_per_barrier",
}


def run_progress_ablation() -> dict:
    """Run every kernel under both engines; return the comparison report."""
    report = {}
    for name, kernel in KERNELS.items():
        metric = HEADLINE[name]
        entry = {}
        for engine in ("event", "polling"):
            entry[engine] = kernel(engine)
        entry["metric"] = metric
        entry["event_beats_polling"] = entry["event"][metric] < entry["polling"][metric]
        report[name] = entry
        print(
            f"{name}: event {metric}={entry['event'][metric]:.6g} "
            f"polling {metric}={entry['polling'][metric]:.6g} "
            f"event_beats_polling={entry['event_beats_polling']}"
        )
    return report
