"""E11 — coupled-model step cost across execution modes and transports.

Paper basis: §3's promise of one unified interface over all integration
modes, and §7's CCSM application.  Expected shapes:

* per-step cost is in the same ballpark across SCME / MCSE / MCME — the
  mode changes *wiring*, not work;
* the comm_join transport ("join") and the name-addressed p2p transport
  carry the same fields and land within a small factor of each other;
* physics answers are identical everywhere (asserted — the real E11
  result).
"""

import numpy as np
import pytest

from repro.baselines.pcm_monolithic import run_pcm_monolithic
from repro.climate.ccsm import CCSMConfig, run_ccsm

NSTEPS = 4


@pytest.mark.parametrize("mode", ["scme", "mcse", "mcme"])
def test_coupled_run_by_mode(benchmark, mode):
    cfg = CCSMConfig(nsteps=NSTEPS)

    def run():
        return run_ccsm(mode, cfg)

    diags = benchmark(run)
    assert diags["coupler"]["max_exchange_residual"] < 1e-10
    benchmark.extra_info.update(mode=mode, nsteps=NSTEPS)


@pytest.mark.parametrize("exchange", ["p2p", "join"])
def test_coupled_run_by_transport(benchmark, exchange):
    cfg = CCSMConfig(nsteps=NSTEPS, exchange=exchange)

    def run():
        return run_ccsm("scme", cfg)

    benchmark(run)
    benchmark.extra_info.update(exchange=exchange, nsteps=NSTEPS)


def test_modes_identical_answers(benchmark):
    """The E11 headline: bitwise-equal physics across modes (timed once as
    the full four-mode comparison campaign)."""
    cfg = CCSMConfig(nsteps=NSTEPS)

    def run():
        reference = run_ccsm("scme", cfg)
        for mode in ("mcse", "mcme"):
            other = run_ccsm(mode, cfg)
            for kind in ("atmosphere", "ocean", "land", "ice"):
                np.testing.assert_array_equal(
                    other[kind]["final_field"], reference[kind]["final_field"]
                )
        return reference

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_monolithic_baseline_run(benchmark):
    """E12 companion: the hardwired PCM-style build, same physics."""
    cfg = CCSMConfig(nsteps=NSTEPS)

    def run():
        return run_pcm_monolithic(cfg)

    diags = benchmark(run)
    benchmark.extra_info["memory_waste_factor"] = round(diags["memory"].waste_factor, 2)


@pytest.mark.parametrize("coupler", ["serial-1", "serial-3", "parallel-3"])
def test_coupled_run_by_coupler_mode(benchmark, coupler):
    """Serial (rank-0) vs band-distributed coupler at a larger resolution
    where the flux computation is worth distributing."""
    mode, nprocs = coupler.split("-")
    base = CCSMConfig()
    cfg = CCSMConfig(
        nsteps=NSTEPS,
        shapes={
            "atmosphere": (48, 96),
            "ocean": (36, 72),
            "land": (24, 48),
            "ice": (24, 24),
        },
        procs=dict(base.procs, coupler=int(nprocs)),
        coupler_mode=mode,
    )

    def run():
        return run_ccsm("scme", cfg)

    diags = benchmark(run)
    assert diags["coupler"]["max_exchange_residual"] < 1e-9
    benchmark.extra_info.update(coupler=coupler, nsteps=NSTEPS)


@pytest.mark.parametrize("resolution", ["16x32", "32x64"])
def test_coupled_run_by_resolution(benchmark, resolution):
    nlat, nlon = map(int, resolution.split("x"))
    cfg = CCSMConfig(
        nsteps=NSTEPS,
        shapes={
            "atmosphere": (nlat, nlon),
            "ocean": (nlat * 3 // 4, nlon * 3 // 4),
            "land": (nlat // 2, nlon // 2),
            "ice": (nlat // 2, nlon // 4),
        },
    )

    def run():
        return run_ccsm("scme", cfg)

    benchmark(run)
    benchmark.extra_info.update(resolution=resolution, nsteps=NSTEPS)
