"""Coupling-algorithms ablation: solver iteration counts and driver overhead.

Two questions, two kernels:

* ``solver_iterations`` — on a stiff linear interface problem (joint
  spectral radius 0.94, where plain relaxation grinds), how many coupled
  iterations do Gauss-Seidel, Aitken, and IQN-ILS each need to reach the
  same interface tolerance?  Iteration counts are deterministic — no
  timing noise — and the claim under test is strict: both accelerated
  solvers must converge in *strictly fewer* total iterations than
  Gauss-Seidel (``accelerated_strictly_fewer`` in the report).

* ``driver_overhead_per_iteration`` — what does the coupling machinery
  (command protocol, criterion, solver bookkeeping) cost per iteration
  on top of the bytes it moves?  The same participants serve the same
  interface vectors two ways on the thread backend: through a
  :class:`~repro.coupling.driver.CouplingDriver` pinned to exactly one
  iteration per step, and through a hand-rolled fixed exchange (the bare
  ``bcast``/``gather`` pattern of the paper's explicit coupler).  The
  difference per step is the per-iteration machinery overhead.

``BENCH_coupling.json`` records per-solver iteration totals and
convergence histories, the strictly-fewer verdict, and median
per-iteration wall-clock for both exchange paths plus their ratio.
Usage::

    PYTHONPATH=src python benchmarks/compare.py --suite coupling
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro import components_setup
from repro.coupling import (
    AbsoluteNorm,
    AitkenSolver,
    CouplingDriver,
    GaussSeidelSolver,
    IQNILSSolver,
    InterfaceSpec,
    IterationBound,
    LinearParticipant,
    Participant,
    serve_participant,
)
from repro.launcher.job import mph_run

# -- kernel 1: solver iteration counts on a stiff interface -----------------------

#: Interface size and the two affine half-operators.  The joint operator
#: A2 @ A1 has spectral radius 0.94 — stiff enough that plain relaxation
#: needs dozens of sweeps while the quasi-Newton solver finishes in
#: about ``N_IFACE`` iterations.
N_IFACE = 12
_diag1 = np.linspace(1.0, 0.62, N_IFACE)
_diag2 = np.linspace(0.94, 0.70, N_IFACE) / _diag1
A1 = np.diag(_diag1)
B1 = np.linspace(0.5, 1.5, N_IFACE)
A2 = np.diag(_diag2)
B2 = np.linspace(-0.2, 0.8, N_IFACE)
STIFF_TOL = 1e-10
STIFF_STEPS = 3
MAX_ITERATIONS = 400

SOLVERS = ("gauss_seidel", "aitken", "iqn_ils")


def _make_solver(name: str):
    criterion = AbsoluteNorm(STIFF_TOL)
    if name == "gauss_seidel":
        return GaussSeidelSolver(criterion, max_iterations=MAX_ITERATIONS)
    if name == "aitken":
        return AitkenSolver(criterion, max_iterations=MAX_ITERATIONS)
    if name == "iqn_ils":
        return IQNILSSolver(criterion, reuse_steps=2, max_iterations=MAX_ITERATIONS)
    raise ValueError(name)


def run_stiff_problem(solver_name: str) -> dict:
    """Iterate the stiff ring operator to convergence for STIFF_STEPS
    coupling steps; return the iteration history.  The offset drifts per
    step so every step needs real work (a stationary operator would make
    the warm-started steps free) and IQN-ILS secant reuse has something
    to pay off on."""

    solver = _make_solver(solver_name)
    solver.initialize()
    x0 = np.zeros(N_IFACE)
    iterations, converged = [], []
    for step in range(STIFF_STEPS):
        b1 = B1 + 0.3 * step

        def op(x, b1=b1):
            return A2 @ (A1 @ x + b1) + B2

        solver.initialize_solution_step()
        res = solver.solve_solution_step(x0, op)
        solver.finalize_solution_step()
        iterations.append(res.iterations)
        converged.append(res.converged)
        x0 = res.x
    solver.finalize()
    return {
        "iterations_per_step": iterations,
        "total_iterations": sum(iterations),
        "all_converged": all(converged),
    }


# -- kernel 2: driver machinery overhead per iteration ----------------------------

REG = "BEGIN\ncoupler\np1\np2\nEND"
OVERHEAD_STEPS = 40


def _p1(world, env):
    mph = components_setup(world, "p1", env=env)
    return serve_participant(mph, LinearParticipant(A1, B1))


def _p2(world, env):
    mph = components_setup(world, "p2", env=env)
    return serve_participant(mph, LinearParticipant(A2, B2))


def _driver_coupler(world, env):
    """One driver-mediated iteration per step: the machinery path."""
    mph = components_setup(world, "coupler", env=env)
    spec = InterfaceSpec([("u", (N_IFACE,))])
    driver = CouplingDriver(
        mph,
        GaussSeidelSolver(IterationBound(1), max_iterations=1, strict=False),
        [Participant("p1", spec), Participant("p2", spec)],
    )
    driver.initialize()
    start = time.perf_counter()
    driver.solve(OVERHEAD_STEPS)
    elapsed = time.perf_counter() - start
    driver.close()
    return elapsed


def _raw_coupler(world, env):
    """The bare fixed exchange: same joins, same vectors, no machinery."""
    mph = components_setup(world, "coupler", env=env)
    joins = [(mph.comm_join(n, "coupler"), mph.component_size(n)) for n in ("p1", "p2")]
    x = np.zeros(N_IFACE)
    start = time.perf_counter()
    for step in range(OVERHEAD_STEPS):
        for join, size in joins:
            join.bcast(("eval", step, x), root=size)
            parts = join.gather(None, root=size)
            x = np.concatenate([np.asarray(p, float).ravel() for p in parts[:size]])
    elapsed = time.perf_counter() - start
    for join, size in joins:
        join.bcast(("close", OVERHEAD_STEPS, None), root=size)
    return elapsed


def _raw_participant(matrix, offset):
    def run(world, env):
        name = "p1" if matrix is A1 else "p2"
        mph = components_setup(world, name, env=env)
        model = LinearParticipant(matrix, offset)
        join = mph.comm_join(name, "coupler")
        root = mph.component_size(name)
        while True:
            cmd, _step, payload = join.bcast(None, root=root)
            if cmd == "close":
                return None
            join.gather(model.evaluate(np.asarray(payload, float)), root=root)

    return run


def _time_exchange(raw: bool) -> float:
    if raw:
        executables = [
            (_raw_coupler, 1),
            (_raw_participant(A1, B1), 1),
            (_raw_participant(A2, B2), 1),
        ]
    else:
        executables = [(_driver_coupler, 1), (_p1, 1), (_p2, 1)]
    result = mph_run(executables, registry=REG, timeout=120.0)
    return result.by_executable(0)[0]


def run_driver_overhead(reps: int) -> dict:
    driver = [_time_exchange(raw=False) for _ in range(reps)]
    raw = [_time_exchange(raw=True) for _ in range(reps)]
    driver_med = statistics.median(driver)
    raw_med = statistics.median(raw)
    return {
        "steps": OVERHEAD_STEPS,
        "driver_median_s": driver_med,
        "raw_median_s": raw_med,
        "driver_per_iteration_us": driver_med / OVERHEAD_STEPS * 1e6,
        "raw_per_iteration_us": raw_med / OVERHEAD_STEPS * 1e6,
        "overhead_per_iteration_us": (driver_med - raw_med) / OVERHEAD_STEPS * 1e6,
        "overhead_ratio": driver_med / raw_med,
        "reps": reps,
    }


# -- report -----------------------------------------------------------------------


def run_coupling_ablation(reps: int = 5) -> dict:
    """Both kernels; returns the BENCH_coupling.json payload."""
    solvers = {name: run_stiff_problem(name) for name in SOLVERS}
    gs_total = solvers["gauss_seidel"]["total_iterations"]
    strictly_fewer = all(
        solvers[name]["total_iterations"] < gs_total for name in ("aitken", "iqn_ils")
    )
    for name in SOLVERS:
        s = solvers[name]
        print(
            f"{name}: iterations={s['iterations_per_step']} "
            f"total={s['total_iterations']} converged={s['all_converged']}"
        )
    overhead = run_driver_overhead(reps)
    print(
        f"driver={overhead['driver_per_iteration_us']:.0f}us/iter "
        f"raw={overhead['raw_per_iteration_us']:.0f}us/iter "
        f"ratio={overhead['overhead_ratio']:.2f}x"
    )
    return {
        "solver_iterations": {
            "problem": {
                "interface_size": N_IFACE,
                "joint_spectral_radius": float(np.max(_diag1 * _diag2)),
                "tolerance": STIFF_TOL,
                "steps": STIFF_STEPS,
            },
            "solvers": solvers,
            "accelerated_strictly_fewer": strictly_fewer,
        },
        "driver_overhead_per_iteration": overhead,
    }


if __name__ == "__main__":
    print(run_coupling_ablation())
