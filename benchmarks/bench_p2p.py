"""E6 — inter-component messaging cost (§5.2), against its alternatives.

Three ways to move a field between components, measured head to head:

* MPH name-addressed messages (``mph.send(obj, "ocean", 3)``) — the §5.2
  mechanism; translation through the layout should add only a dictionary
  lookup over raw world-rank sends;
* raw world-communicator sends with hardwired global ranks — the PCM-style
  wiring MPH replaces;
* buffer-mode numpy transfer — the fast path for large fields.

Expected shape: MPH addressing ≈ raw sends (translation is cheap);
buffer mode beats object mode for large arrays; and both beat the
file-coupling baseline by orders of magnitude (see bench_ensemble for the
file numbers).
"""

import numpy as np
import pytest

from repro import components_setup, mph_run
from repro.mpi import WorldConfig

REG = "BEGIN\natm\nocn\nEND"
ROUNDTRIPS = 50


def run_pingpong(
    payload_factory, use_mph_addressing: bool, buffer_mode: bool = False, config=None
):
    def atm(world, env):
        mph = components_setup(world, "atm", env=env)
        payload = payload_factory()
        dest = mph.global_id("ocn", 0)
        for i in range(ROUNDTRIPS):
            if buffer_mode:
                mph.Send(payload, "ocn", 0, tag=1)
                mph.Recv(payload, "ocn", 0, tag=2)
            elif use_mph_addressing:
                mph.send(payload, "ocn", 0, tag=1)
                payload = mph.recv("ocn", 0, tag=2)
            else:
                world.send(payload, dest, tag=1)
                payload = world.recv(source=dest, tag=2)
        return True

    def ocn(world, env):
        mph = components_setup(world, "ocn", env=env)
        src = mph.global_id("atm", 0)
        buf = payload_factory() if buffer_mode else None
        for i in range(ROUNDTRIPS):
            if buffer_mode:
                mph.Recv(buf, "atm", 0, tag=1)
                mph.Send(buf, "atm", 0, tag=2)
            elif use_mph_addressing:
                got = mph.recv("atm", 0, tag=1)
                mph.send(got, "atm", 0, tag=2)
            else:
                got = world.recv(source=src, tag=1)
                world.send(got, src, tag=2)
        return True

    return mph_run([(atm, 1), (ocn, 1)], registry=REG, config=config)


@pytest.mark.parametrize("addressing", ["mph-name", "raw-rank"])
def test_small_message_pingpong(benchmark, addressing):
    """Latency: name-addressed vs hardwired-rank messaging."""

    def run():
        return run_pingpong(lambda: {"step": 1}, addressing == "mph-name")

    benchmark(run)
    benchmark.extra_info.update(roundtrips=ROUNDTRIPS, addressing=addressing)


@pytest.mark.parametrize("nelems", [1_000, 100_000])
@pytest.mark.parametrize("mode", ["object", "buffer"])
def test_field_transfer(benchmark, nelems, mode):
    """Throughput: pickled object mode vs numpy buffer mode."""

    def run():
        return run_pingpong(
            lambda: np.zeros(nelems),
            use_mph_addressing=True,
            buffer_mode=(mode == "buffer"),
        )

    benchmark(run)
    benchmark.extra_info.update(nelems=nelems, mode=mode, roundtrips=ROUNDTRIPS)


@pytest.mark.parametrize("fastpath", [True, False], ids=["fastpath-on", "fastpath-off"])
@pytest.mark.parametrize("nelems", [1_000, 100_000])
def test_field_transfer_fastpath_ablation(benchmark, nelems, fastpath):
    """Zero-copy serialization fast path vs legacy pickling on the same
    object-mode ``mph.send`` of a numpy field."""

    def run():
        return run_pingpong(
            lambda: np.zeros(nelems),
            use_mph_addressing=True,
            config=WorldConfig(serialization_fastpath=fastpath),
        )

    benchmark(run)
    benchmark.extra_info.update(nelems=nelems, fastpath=fastpath, roundtrips=ROUNDTRIPS)


def test_recv_any_overhead(benchmark):
    """recv_any adds sender identification on top of a plain receive."""

    def atm(world, env):
        mph = components_setup(world, "atm", env=env)
        for i in range(ROUNDTRIPS):
            mph.send(i, "ocn", 0, tag=3)
        return True

    def ocn(world, env):
        mph = components_setup(world, "ocn", env=env)
        out = 0
        for _ in range(ROUNDTRIPS):
            obj, comp, local = mph.recv_any(tag=3)
            out += obj
        return out

    def run():
        return mph_run([(atm, 1), (ocn, 1)], registry=REG)

    result = benchmark(run)
    assert result.by_executable(1)[0] == sum(range(ROUNDTRIPS))
