"""Schedule-exploration ablation kernels: what does the match-schedule
hook cost when it is off, and what does arming one cost?

Three configurations per kernel, answered in ``BENCH_sched.json``:

* **disabled** (twice — the second run is the noise floor): no
  :class:`~repro.mpi.sched.MatchSchedule` armed.  The hooks in
  ``Mailbox.post_recv``/``Mailbox._deliver_one``/``Mailbox.probe`` and
  ``Request.waitany`` are one ``is None`` branch each, so the disabled
  cost must be indistinguishable from the noise between two identical
  disabled runs (the <1% claim).
* **armed_inert**: a fifo schedule with holds off — every operation pays
  the trace recording and counter bookkeeping but no decision ever
  deviates from the baseline.
* **armed_random**: the default exploration schedule (seeded choices,
  25% holds) — the full price of a sweep run, for context.

Kernels: the PR-1 empty-roundtrip op loop (tightest per-operation view)
and a wildcard fan-in (the path where the schedule actually has choices
to weigh).  Driver: ``compare.py --suite sched``.
"""

from __future__ import annotations

import statistics
import time

from repro.mpi import MatchSchedule, WorldConfig, run_spmd
from repro.mpi.constants import ANY_SOURCE


def _op_loop_kernel(config: WorldConfig) -> float:
    """Seconds for 2000 empty send/recv roundtrips, timed *inside* one
    long-lived 2-rank world — no per-sample world start-up."""
    ops = 2000

    def main(comm):
        peer = 1 - comm.rank
        if comm.rank == 0:
            t0 = time.perf_counter()
            for i in range(ops):
                comm.send(None, peer, tag=1)
                comm.recv(source=peer, tag=1)
            return time.perf_counter() - t0
        for i in range(ops):
            comm.recv(source=peer, tag=1)
            comm.send(None, peer, tag=1)
        return None

    return run_spmd(2, main, config=config)[0]


def _fan_in_kernel(config: WorldConfig) -> float:
    """Seconds for 500 wildcard fan-in rounds (3 senders → 1 receiver),
    timed inside one 4-rank world: every receive is an ANY_SOURCE match
    with a real candidate frontier, the schedule's busiest code path."""
    rounds = 500

    def main(comm):
        if comm.rank == 0:
            t0 = time.perf_counter()
            for r in range(rounds):
                for _ in range(comm.size - 1):
                    comm.recv(source=ANY_SOURCE, tag=2)
                comm.barrier()
            return time.perf_counter() - t0
        for r in range(rounds):
            comm.send(comm.rank, 0, tag=2)
            comm.barrier()
        return None

    return run_spmd(4, main, config=config)[0]


KERNELS = {
    "p2p_op_loop_2ranks": _op_loop_kernel,
    "wildcard_fan_in_4ranks": _fan_in_kernel,
}


def _inert_schedule() -> MatchSchedule:
    """Armed but decision-free: fifo policy, holds off — pays the full
    per-operation bookkeeping (counters, trace records) while changing
    no behavior."""
    return MatchSchedule(seed=0, policy="fifo", hold_prob=0.0)


def hook_overhead(name: str, reps: int = 5) -> dict:
    """Time one kernel disabled (twice — noise floor), armed-inert, and
    armed-random.  Configurations are *interleaved* per repetition so
    machine-load drift cancels instead of masquerading as overhead."""
    kernel = KERNELS[name]

    def configs():
        # Fresh schedule objects per sample: a schedule carries per-run
        # counters and reuse across worlds would need reset() anyway.
        return (
            ("disabled", WorldConfig()),
            ("rerun", WorldConfig()),
            ("armed_inert", WorldConfig(match_schedule=_inert_schedule())),
            ("armed_random", WorldConfig(match_schedule=MatchSchedule(seed=0))),
        )

    for _, config in configs():  # warm-up (imports, thread-pool priming)
        kernel(config)
    samples: dict[str, list[float]] = {
        "disabled": [], "rerun": [], "armed_inert": [], "armed_random": []
    }
    for _ in range(reps):
        for key, config in configs():
            samples[key].append(kernel(config))
    # Fresh threads per sample mean heavy scheduler noise.  The headline
    # overheads are *paired* medians: within one repetition the four
    # configurations run back-to-back, so the per-rep relative difference
    # cancels slow machine-load drift that a min-vs-min comparison across
    # the whole run would read as overhead.
    def paired_pct(key: str) -> float:
        return statistics.median(
            (b - a) / a * 100
            for a, b in zip(samples["disabled"], samples[key])
        )

    return {
        "disabled_min_s": min(samples["disabled"]),
        "disabled_rerun_min_s": min(samples["rerun"]),
        "armed_inert_min_s": min(samples["armed_inert"]),
        "armed_random_min_s": min(samples["armed_random"]),
        "disabled_median_s": statistics.median(samples["disabled"]),
        "armed_inert_median_s": statistics.median(samples["armed_inert"]),
        "armed_random_median_s": statistics.median(samples["armed_random"]),
        # The disabled hook is one `is None` branch per choice point; its
        # cost is bounded by the paired noise between two identical
        # disabled runs (this is the <1% claim).
        "disabled_overhead_percent": abs(paired_pct("rerun")),
        "armed_inert_overhead_percent": paired_pct("armed_inert"),
        "armed_random_overhead_percent": paired_pct("armed_random"),
        "reps": reps,
    }


def run_sched_ablation(reps: int = 5) -> dict:
    """The full schedule suite: per-kernel hook overhead."""
    report: dict = {"hook_overhead": {}}
    for name in KERNELS:
        entry = hook_overhead(name, reps)
        report["hook_overhead"][name] = entry
        print(
            f"{name}: disabled={entry['disabled_min_s'] * 1e3:.1f}ms "
            f"noise={entry['disabled_overhead_percent']:.2f}% "
            f"armed_inert={entry['armed_inert_overhead_percent']:+.2f}% "
            f"armed_random={entry['armed_random_overhead_percent']:+.2f}%"
        )
    return report
