"""E6 companion — file-exchange coupling vs MPH in-memory messaging.

The pre-MPMD baseline couples components through the filesystem.  The
expected shape: per-exchange cost orders of magnitude above the in-memory
name-addressed messaging of bench_p2p (milliseconds of write+poll+read vs
microseconds of mailbox delivery), plus a file-count bill per step.
"""

import pytest

from repro.baselines.file_coupling import run_file_coupled
from repro.climate.grid import LatLonGrid

NSTEPS = 5


@pytest.mark.parametrize("shape", [(4, 8), (16, 32)])
def test_file_coupled_exchange(benchmark, shape, tmp_path_factory):
    grid = LatLonGrid(*shape)
    counter = iter(range(10_000))

    def run():
        workdir = tmp_path_factory.mktemp(f"fc_{next(counter)}")
        return run_file_coupled(grid, NSTEPS, 3600.0, workdir)

    report = benchmark(run)
    assert report.files_written == 2 * NSTEPS
    benchmark.extra_info.update(
        shape=f"{shape[0]}x{shape[1]}",
        per_exchange_seconds=round(report.atm_exchange_seconds, 6),
        files_written=report.files_written,
    )
