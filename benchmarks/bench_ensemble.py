"""E10 — MIME on-the-fly ensembles vs the independent-jobs baseline (§2.5).

Paper claims reproduced as measurable shapes:

* the MIME approach "eliminates large data output and storage for
  post-processing averaging": intermediate files = 0 vs K×T for the
  baseline (asserted);
* "enables nonlinear ensemble statistics which are otherwise impossible
  to compute at post-processing step" without storing everything: the
  MIME run produces per-step medians while writing nothing;
* end-to-end wall time of the two campaigns is measured head to head on
  identical member physics.
"""

import numpy as np
import pytest

from repro import components_setup, mph_run, multi_instance
from repro.baselines.independent_jobs import perturbed_params, run_independent_ensemble
from repro.climate.components import OceanModel
from repro.climate.grid import LatLonGrid
from repro.core.ensemble import EnsembleCollector, EnsembleMember

GRID = LatLonGrid(8, 16)
NSTEPS = 10
DT = 3600.0


def run_mime_ensemble(k: int):
    """The MIME campaign: K instances + a statistics executable, no files."""
    lines = "\n".join(f"Member{i + 1} {i} {i} albedo={0.1 + 0.02 * i:.2f}" for i in range(k))
    registry = f"BEGIN\nMulti_Instance_Begin\n{lines}\nMulti_Instance_End\nstats\nEND"

    def member(world, env):
        mph = multi_instance(world, "Member", env=env)
        from dataclasses import replace

        params = replace(
            OceanModel.default_params(), albedo=mph.get_argument("albedo", float)
        )
        model = OceanModel(mph.component_comm(), GRID, params)
        reporter = EnsembleMember(mph, "stats")
        for step in range(NSTEPS):
            model.step(DT)
            reporter.report(step, model.temperature.data)
        return True

    def stats(world, env):
        mph = components_setup(world, "stats", env=env)
        collector = EnsembleCollector.for_prefix(mph, "Member")
        w = GRID.area_weights
        medians = []
        for step in range(NSTEPS):
            s = collector.collect(step)
            # Median across members of the area-weighted global mean — the
            # nonlinear statistic the independent-jobs baseline can only
            # produce by storing every field (summation order matches
            # DistributedField.area_mean for bitwise comparability).
            member_means = [float((f * w).sum(axis=1).sum()) for f in s.fields.values()]
            medians.append(float(np.median(member_means)))
        return medians

    result = mph_run([(member, k), (stats, 1)], registry=registry)
    return result.by_executable(1)[0]


@pytest.mark.parametrize("k", [2, 4, 8])
def test_mime_ensemble(benchmark, k):
    medians = benchmark(run_mime_ensemble, k)
    assert len(medians) == NSTEPS  # nonlinear statistic available every step
    benchmark.extra_info.update(k=k, nsteps=NSTEPS, files_written=0)


@pytest.mark.parametrize("k", [2, 4, 8])
def test_independent_jobs_ensemble(benchmark, k, tmp_path_factory):
    campaigns = iter(range(10_000))

    def run():
        outdir = tmp_path_factory.mktemp(f"ens{k}_{next(campaigns)}")
        return run_independent_ensemble(k, GRID, NSTEPS, DT, outdir)

    report = benchmark(run)
    # The baseline's storage cost, the core E10 contrast:
    assert report.files_written == k * NSTEPS
    assert report.bytes_written > 0
    benchmark.extra_info.update(
        k=k,
        nsteps=NSTEPS,
        files_written=report.files_written,
        bytes_written=report.bytes_written,
    )


def test_mime_and_baseline_statistics_agree(benchmark):
    """Same member physics -> the two campaigns' ensemble means agree
    (the baseline just pays files for them)."""
    k = 4

    def run():
        return run_mime_ensemble(k)

    medians = benchmark(run)

    def member_mean_series(i):
        from repro.baselines.independent_jobs import run_one_member

        _, _, means = run_one_member(i, GRID, NSTEPS, DT, outdir=None)
        return means

    baseline = np.array([member_mean_series(i) for i in range(k)])
    baseline_median = np.median(baseline, axis=0)
    np.testing.assert_allclose(medians, baseline_median, rtol=0, atol=1e-9)
