"""Shared-memory transport curves and topology-aware collective gains.

Two questions, answered in ``BENCH_shm.json``:

* **What does the shm substrate buy over sockets?**  Every kernel from
  :mod:`bench_backend` (large ping-pong, small-message latency,
  object-mode allreduce) is timed on ``thread`` (the in-process floor),
  ``process-unix`` (pickled frames over Unix sockets) and
  ``process-shm`` (mmap rings + zero-copy pages).  The report carries
  the per-rep paired ratios: shm-vs-thread (how close true process
  isolation gets to the no-wire floor) and unix-vs-shm (the speedup
  the rings deliver over the socket path).
* **Do two-level collectives beat flat ones once the world spans
  nodes?**  ``allreduce`` on 4 ranks split across 2 simulated nodes,
  flat binomial over sockets vs the hierarchical path (intra-node
  leader over shm rings, inter-node exchange between leaders only) —
  the MPICH-G2 topology argument, reproduced on one host.  Measured
  twice: on a scalar (pure per-message latency, where an oversubscribed
  single-CPU host shows no win — every hop costs one scheduler round
  trip whichever wire carries it) and on a ~0.8 MiB field (the MPH
  workload shape — coupled models exchange fields, not scalars — where
  intra-node hops ride the zero-copy page pool and skip the
  pickle+socket copy entirely).

Same timing discipline as :mod:`bench_backend`: substrates interleave
within each rep and every ratio pairs runs from the same rep, so
machine drift cancels instead of masquerading as overhead.

Usage::

    PYTHONPATH=src python benchmarks/compare.py --suite shm
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.mpi import WorldConfig, run_spmd

try:
    from benchmarks.bench_backend import KERNELS, allreduce_seconds
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from bench_backend import KERNELS, allreduce_seconds


def allreduce_field_seconds(
    config: WorldConfig, rounds: int = 25, elements: int = 100_000, nprocs: int = 4
) -> float:
    """Allreduce of a ~0.8 MiB float64 field on 4 ranks — the coupled-model
    exchange shape, where the zero-copy page pool carries intra-node hops."""

    def main(comm):
        field = np.zeros(elements)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(rounds):
            comm.allreduce(field)
        comm.barrier()
        return time.perf_counter() - t0

    return run_spmd(nprocs, main, config=config, timeout=300.0)[0]


def _curve_substrates() -> dict[str, WorldConfig]:
    return {
        "thread": WorldConfig(),
        "process-unix": WorldConfig(backend="process", transport="unix"),
        "process-shm": WorldConfig(backend="process", transport="shm"),
    }


def _hierarchy_substrates() -> dict[str, WorldConfig]:
    # Both span 2 simulated nodes; the flat side keeps every pair on
    # sockets and single-level algorithms, the two-level side runs
    # same-node traffic over shm rings with leader-based collectives.
    return {
        "flat-sockets": WorldConfig(
            backend="process",
            transport="unix",
            nodes=2,
            hierarchical_collectives=False,
        ),
        "twolevel-shm": WorldConfig(
            backend="process",
            transport="auto",
            nodes=2,
            hierarchical_collectives=True,
        ),
    }


def run_shm_ablation(reps: int = 9) -> dict:
    """Time the transport curves and the hierarchy comparison."""
    report: dict = {}
    substrates = _curve_substrates()
    for name, kernel in KERNELS.items():
        for config in substrates.values():
            kernel(config)  # warm-up
        samples: dict[str, list] = {s: [] for s in substrates}
        for _ in range(reps):
            for substrate, config in substrates.items():
                samples[substrate].append(kernel(config))
        entry = {"reps": reps}
        for substrate in substrates:
            entry[f"{substrate.replace('-', '_')}_median_s"] = (
                statistics.median(samples[substrate])
            )
        entry["shm_vs_thread_ratio"] = statistics.median(
            s / t for s, t in zip(samples["process-shm"], samples["thread"])
        )
        entry["unix_vs_shm_speedup"] = statistics.median(
            u / s
            for u, s in zip(samples["process-unix"], samples["process-shm"])
        )
        report[name] = entry
        print(
            f"{name}: thread={entry['thread_median_s'] * 1e3:.1f}ms "
            f"unix={entry['process_unix_median_s'] * 1e3:.1f}ms "
            f"shm={entry['process_shm_median_s'] * 1e3:.1f}ms "
            f"shm/thread={entry['shm_vs_thread_ratio']:.2f}x "
            f"unix/shm={entry['unix_vs_shm_speedup']:.2f}x"
        )

    hier = _hierarchy_substrates()
    hier_kernels = {
        "allreduce_p4_nodes2_hierarchical": allreduce_seconds,
        "allreduce_field_p4_nodes2_hierarchical": allreduce_field_seconds,
    }
    for name, kernel in hier_kernels.items():
        for config in hier.values():
            kernel(config)  # warm-up
        samples = {s: [] for s in hier}
        for _ in range(reps):
            for substrate, config in hier.items():
                samples[substrate].append(kernel(config))
        entry = {
            "reps": reps,
            "flat_sockets_median_s": statistics.median(samples["flat-sockets"]),
            "twolevel_shm_median_s": statistics.median(samples["twolevel-shm"]),
            "speedup": statistics.median(
                f / t
                for f, t in zip(samples["flat-sockets"], samples["twolevel-shm"])
            ),
        }
        report[name] = entry
        print(
            f"{name}: flat={entry['flat_sockets_median_s'] * 1e3:.1f}ms "
            f"twolevel={entry['twolevel_shm_median_s'] * 1e3:.1f}ms "
            f"speedup={entry['speedup']:.2f}x"
        )
    return report


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run_shm_ablation(), indent=2))
