"""MCT-style parallel rearrangement vs the rank-0 funnel.

Paper context (§7): the Model Coupling Toolkit builds its parallel data
transfer on MPH's handshake.  Measured here: moving a row-decomposed field
from a P-process producer to a Q-process consumer

* through the :class:`~repro.core.rearranger.Rearranger` (direct
  owner-to-owner messages), vs
* through the serial funnel (gather at producer rank 0 → one transfer →
  scatter at consumer rank 0) — the early-coupler pattern.

Expected shape: the funnel serialises the whole field through two
processes, so the router's advantage grows with field size; message
*counts* are also asserted via the schedule.
"""

import numpy as np
import pytest

from repro import components_setup, mph_run
from repro.core.rearranger import Rearranger
from repro.mpi import WorldConfig

REG = "BEGIN\nalpha\nbeta\nEND"
ROUNDS = 5


def run_transfer(nrows, ncols, n_alpha, n_beta, method, config=None, rounds=ROUNDS):
    def alpha(world, env):
        mph = components_setup(world, "alpha", env=env)
        r = Rearranger(mph, "alpha", "beta", nrows, ncols)
        start, stop = r.src_rows
        block = np.ones((stop - start, ncols))
        comm = mph.component_comm()
        for _ in range(rounds):
            if method == "router":
                r(block)
            else:
                full = comm.gather(block, root=0)
                if comm.rank == 0:
                    mph.send(np.concatenate(full), "beta", 0, tag=7)
        return True

    def beta(world, env):
        mph = components_setup(world, "beta", env=env)
        r = Rearranger(mph, "alpha", "beta", nrows, ncols)
        comm = mph.component_comm()
        from repro.core.migration import block_rows

        for _ in range(rounds):
            if method == "router":
                out = r(None)
            else:
                blocks = None
                if comm.rank == 0:
                    full = mph.recv("alpha", 0, tag=7)
                    blocks = [
                        full[block_rows(nrows, comm.size, q)[0] : block_rows(nrows, comm.size, q)[1]]
                        for q in range(comm.size)
                    ]
                out = comm.scatter(blocks, root=0)
            assert out.shape[1] == ncols
        return True

    return mph_run([(alpha, n_alpha), (beta, n_beta)], registry=REG, config=config)


@pytest.mark.parametrize("method", ["router", "funnel"])
@pytest.mark.parametrize("nrows", [64, 512])
def test_field_rearrangement(benchmark, method, nrows):
    def run():
        return run_transfer(nrows, 64, 4, 4, method)

    benchmark(run)
    benchmark.extra_info.update(method=method, nrows=nrows, ncols=64, rounds=ROUNDS)


@pytest.mark.parametrize("fastpath", [True, False], ids=["fastpath-on", "fastpath-off"])
def test_coupled_routing_fastpath_ablation(benchmark, fastpath):
    """Repeated coupled routing: buffer-mode persistent requests vs the
    legacy pickled path.  Many coupling steps over a misaligned
    moderate-width field — the regime where the fast path's savings (no
    pickling, no per-call allocation, no request re-setup) dominate."""
    nrows, ncols, rounds = 512, 8, 100
    config = WorldConfig(
        rearranger_fastpath=fastpath, serialization_fastpath=fastpath
    )

    def run():
        return run_transfer(nrows, ncols, 4, 3, "router", config=config, rounds=rounds)

    benchmark(run)
    benchmark.extra_info.update(
        nrows=nrows, ncols=ncols, rounds=rounds, fastpath=fastpath
    )
