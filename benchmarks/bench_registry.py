"""Registry parsing cost — the runtime-configuration price of MPH §3.

The registration file is read once per job by the root and broadcast, so
absolute cost barely matters; the shape of interest is that parsing stays
linear in file size (no accidental quadratic scans) and round-trips.
"""

import pytest

from repro.core.registry import Registry


def synthetic_registry(n_single: int, n_blocks: int, comps_per_block: int) -> str:
    lines = ["BEGIN"]
    for i in range(n_single):
        lines.append(f"single{i} field{i} alpha={i}")
    for b in range(n_blocks):
        lines.append("Multi_Component_Begin")
        for c in range(comps_per_block):
            lines.append(f"blk{b}c{c} {c} {c} in{c}.nc key=val{c}")
        lines.append("Multi_Component_End")
    lines.append("END")
    return "\n".join(lines)


@pytest.mark.parametrize("scale", [1, 4, 16])
def test_parse_scaling(benchmark, scale):
    text = synthetic_registry(5 * scale, 2 * scale, 5)

    reg = benchmark(Registry.from_text, text)
    assert reg.total_components == 5 * scale + 10 * scale
    benchmark.extra_info.update(
        components=reg.total_components, chars=len(text)
    )


def test_paper_mcme_registry(benchmark):
    text = """
BEGIN
Multi_Component_Begin
atmosphere 0 15
land       0 15
chemistry  16 19
Multi_Component_End
Multi_Component_Begin
ocean 0 15
ice   16 31
Multi_Component_End
coupler
END
"""
    reg = benchmark(Registry.from_text, text)
    assert reg.total_components == 6


def test_roundtrip(benchmark):
    text = synthetic_registry(10, 3, 4)
    reg = Registry.from_text(text)

    def roundtrip():
        return Registry.from_text(reg.to_text())

    assert benchmark(roundtrip) == reg
