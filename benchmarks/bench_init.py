"""Bootstrap scaling: flat vs tree rank rendezvous at 512–4096 ranks.

The process backend's original *flat* bootstrap has the launcher accept
one connection per rank and pickle an O(N)-entry welcome payload O(N)
times — O(N²) launcher CPU (see :mod:`repro.mpi.bootstrap`).  The tree
scheme aggregates hellos up a fanout-ary relay tree and pickles the
shared welcome exactly once, relayed verbatim.  This bench measures the
real protocol code — :func:`serve_tree_address_exchange` and
:func:`child_tree_address_exchange` against a faithful replica of the
flat serve loop — with *simulated* ranks: one thread per rank over real
Unix sockets, no child processes and no data plane, so a single host
can drive 4096-rank bootstraps.  Data addresses in the hellos are fake
(never dialled), and the clock covers exactly the address exchange:
thread spawn through every rank holding the peer map.  The follow-up
register/result/shutdown protocol is scheme-identical by construction
(one O(1) launcher connect per child, see :mod:`repro.mpi.bootstrap`)
and excluded — under a shared GIL, 4096 simulated ranks slamming the
register socket at once measures interpreter thread scheduling, not
the bootstrap.

``BENCH_init.json`` records per-size medians for both schemes, the
tree/flat speedup, and the *crossover*: the smallest measured world
size from which the tree wins (small worlds pay the relay hops without
amortising any pickling).  Usage::

    PYTHONPATH=src python benchmarks/compare.py --suite init
"""

from __future__ import annotations

import os
import shutil
import statistics
import sys
import tempfile
import threading
import time

from repro.mpi.bootstrap import (
    child_tree_address_exchange,
    connect_retry,
    serve_tree_address_exchange,
)
from repro.mpi.transport import make_listener, recv_frame, send_frame
from repro.mpi.world import WorldConfig

#: World sizes swept.  The small end exists to locate the crossover;
#: 512–4096 is the claim range (tree must win throughout).
SIZES = (64, 256, 512, 1024, 2048, 4096)

#: Fanout under test — the :class:`WorldConfig` default.
FANOUT = 8

#: Simulated ranks only park on sockets, so they run on tiny stacks —
#: 4096 threads at the interpreter default (8 MiB) would be 32 GiB of
#: address space for nothing.
_STACK_BYTES = 256 * 1024

#: GIL quantum while a bootstrap runs, applied identically to both
#: schemes.  At the interpreter default (5 ms) thousands of
#: simultaneously-runnable simulated ranks turn every hop into a GIL
#: handoff convoy — the tree's relay cascade at 4096 ranks measures 7×
#: slower than the same protocol under a long quantum, because each
#: relay needs several handoffs per hop while a real deployment gives
#: every rank its own interpreter.  A long quantum lets each simulated
#: rank finish its whole protocol step per scheduling turn, so the
#: clock measures the protocol, not CPython's scheduler.
_SWITCH_INTERVAL_S = 0.05

#: Generous per-step cap: thousands of simulated ranks oversubscribe the
#: host's cores, so a single blocking step can legitimately starve far
#: longer than in a real per-process deployment.
_CHILD_TIMEOUT = 300.0


# ---------------------------------------------------------------------------
# Simulated ranks (one thread each, real sockets, fake data addresses)
# ---------------------------------------------------------------------------


def _flat_child(rendezvous: tuple, rank: int, my_addr: tuple) -> None:
    """The flat scheme's child half: direct hello, personal welcome."""
    ctrl = connect_retry(rendezvous, timeout=_CHILD_TIMEOUT)
    try:
        send_frame(ctrl, ("hello", rank, my_addr))
        welcome = recv_frame(ctrl, timeout=_CHILD_TIMEOUT)
        if not welcome or welcome[0] != "welcome":
            raise RuntimeError(f"expected welcome frame, got {welcome!r}")
        if len(welcome[1]["peers"]) != welcome[1]["nprocs"]:
            raise RuntimeError("short peer map in flat welcome")
    finally:
        ctrl.close()


def _serve_flat(listener, nprocs: int, config: WorldConfig) -> dict:
    """A faithful replica of ``_Rendezvous._gather_hellos`` plus its
    per-rank welcome loop (including the per-rank peer-map copy) — the
    O(N²) the tree scheme removes."""
    addrs: dict[int, tuple] = {}
    conns: dict[int, object] = {}
    while len(conns) < nprocs:
        conn, _ = listener.accept()
        hello = recv_frame(conn, timeout=_CHILD_TIMEOUT)
        if not hello or hello[0] != "hello":
            raise RuntimeError(f"malformed hello frame: {hello!r}")
        _, rank, addr = hello
        conns[rank] = conn
        addrs[rank] = addr
    for rank, conn in conns.items():
        peers = {r: a for r, a in addrs.items()}
        send_frame(
            conn,
            (
                "welcome",
                {"nprocs": nprocs, "peers": peers, "config": config, "meta": None},
            ),
        )
    return conns


def _tree_child(
    rendezvous: tuple, rank: int, nprocs: int, sockdir: str, my_addr: tuple
) -> None:
    peers, _config, _meta = child_tree_address_exchange(
        rendezvous, rank, nprocs, FANOUT, sockdir, my_addr, timeout=_CHILD_TIMEOUT
    )
    if len(peers) != nprocs:
        raise RuntimeError("short peer map in tree welcome")


def bootstrap_seconds(scheme: str, nprocs: int) -> float:
    """Wall-clock for one full N-rank address exchange under *scheme*
    (``"flat"`` or ``"tree"``), thread-per-rank."""
    config = WorldConfig(backend="process", transport="unix", bootstrap=scheme)
    # mkdtemp under /tmp keeps ctrl-socket paths under the 108-byte
    # AF_UNIX limit even at rank 4095.
    sockdir = tempfile.mkdtemp(prefix="mphinit")
    old_stack = threading.stack_size(_STACK_BYTES)
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(_SWITCH_INTERVAL_S)
    listener = None
    conns: dict = {}
    try:
        listener, rendezvous = make_listener(
            "unix", os.path.join(sockdir, "rendezvous.sock")
        )
        errors: list = []

        def child(rank: int) -> None:
            try:
                my_addr = ("unix", os.path.join(sockdir, f"d{rank}"))
                if scheme == "tree":
                    _tree_child(rendezvous, rank, nprocs, sockdir, my_addr)
                else:
                    _flat_child(rendezvous, rank, my_addr)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((rank, exc))

        threads = [
            threading.Thread(target=child, args=(r,), daemon=True)
            for r in range(nprocs)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        if scheme == "tree":
            serve_tree_address_exchange(listener, nprocs, config, None)
        else:
            conns = _serve_flat(listener, nprocs, config)
        for t in threads:
            t.join(_CHILD_TIMEOUT)
        elapsed = time.perf_counter() - t0
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"simulated rank {rank} failed: {exc!r}") from exc
        return elapsed
    finally:
        sys.setswitchinterval(old_interval)
        threading.stack_size(old_stack)
        for conn in conns.values():
            try:
                conn.close()
            except OSError:
                pass
        if listener is not None:
            listener.close()
        shutil.rmtree(sockdir, ignore_errors=True)


def legacy_setup_seconds(rounds: int = 10) -> float:
    """Per-job seconds for the §4 ``MPH_setup`` path — since the
    sessions refactor a thin shim over ``Session.handshake_result()`` —
    on a three-executable SCME job (thread backend).  Tracked so shim
    overhead regressions show up in ``BENCH_init.json``; the refactor
    acceptance bar was staying within noise of the pre-sessions eager
    handshake."""
    from repro import components_setup, mph_run

    names = ("atm", "ocn", "cpl")
    registry = "BEGIN\n" + "\n".join(names) + "\nEND"

    def make(name):
        def program(world, env):
            mph = components_setup(world, name, env=env)
            return mph.total_components()

        program.__name__ = name
        return program

    exes = [(make(n), 2) for n in names]
    t0 = time.perf_counter()
    for _ in range(rounds):
        result = mph_run(exes, registry=registry, timeout=120.0)
        assert set(result.values()) == {3}
    return (time.perf_counter() - t0) / rounds


# ---------------------------------------------------------------------------
# Ablation
# ---------------------------------------------------------------------------


def run_init_ablation(reps: int = 5, sizes=SIZES) -> dict:
    """Time both schemes across *sizes*; record medians and the crossover.

    Reps are capped at 3 from 2048 ranks up and 2 at 4096 — the flat
    side alone pickles gigabytes there, and the scheme gap at that
    scale dwarfs run-to-run noise.
    """
    report: dict = {"fanout": FANOUT, "sizes": list(sizes)}
    crossover = None
    for nprocs in sizes:
        n_reps = reps if nprocs < 2048 else min(reps, 3 if nprocs < 4096 else 2)
        samples: dict[str, list] = {"flat": [], "tree": []}
        for scheme in samples:
            bootstrap_seconds(scheme, min(nprocs, 64))  # warm-up
        for _ in range(n_reps):
            for scheme in samples:  # interleave so drift cancels
                samples[scheme].append(bootstrap_seconds(scheme, nprocs))
        entry = {
            "reps": n_reps,
            "flat_median_s": statistics.median(samples["flat"]),
            "tree_median_s": statistics.median(samples["tree"]),
            "tree_speedup": statistics.median(
                f / t for f, t in zip(samples["flat"], samples["tree"])
            ),
        }
        if crossover is None and entry["tree_median_s"] < entry["flat_median_s"]:
            crossover = nprocs
        report[f"bootstrap_n{nprocs}"] = entry
        print(
            f"bootstrap n={nprocs}: flat={entry['flat_median_s'] * 1e3:.1f}ms "
            f"tree={entry['tree_median_s'] * 1e3:.1f}ms "
            f"speedup={entry['tree_speedup']:.2f}x"
        )
    report["tree_crossover_nprocs"] = crossover
    print(f"tree crossover: n={crossover}")

    legacy_setup_seconds(rounds=2)  # warm-up
    samples = [legacy_setup_seconds() for _ in range(max(reps, 3))]
    report["legacy_mph_setup"] = {
        "reps": len(samples),
        "per_job_median_s": statistics.median(samples),
    }
    print(f"legacy MPH_setup shim: {statistics.median(samples) * 1e3:.1f}ms/job")
    return report


if __name__ == "__main__":  # pragma: no cover
    import json

    print(json.dumps(run_init_ablation(), indent=2))
