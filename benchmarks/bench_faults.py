"""Fault-injection ablation kernels: hook overhead and recovery latency.

Two questions, answered in ``BENCH_faults.json``:

* **What does the injection substrate cost when it is off?**  The hooks
  in ``Comm._check`` and ``Mailbox.deliver`` are one ``is None`` branch
  when no :class:`~repro.mpi.faults.FaultSchedule` is armed.  The
  ``*_overhead`` kernels time the PR-1 hot-path kernels (object-mode
  ping-pong, 1 MiB linear broadcast over 16 ranks) three ways — hook
  disabled, hook disabled again (the noise floor), and armed with an
  *inert* schedule that never fires — so the report separates the cost
  of the disabled branch (indistinguishable from noise, the <2% claim)
  from the cost of arming (one lock + counter per operation).
* **How long does ULFM recovery take?**  ``recovery_latency`` kills the
  highest rank of a ring mid-run and times the survivors' full
  revoke → shrink → agree sequence, at 8 and 16 ranks.

Everything runs in-process on the simulated substrate.  The driver in
``compare.py`` (``--suite faults``) writes ``BENCH_faults.json``.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.errors import ProcessFailedError, RevokedError
from repro.mpi import FaultSchedule, WorldConfig, run_spmd


def _p2p_kernel(config: WorldConfig) -> None:
    try:
        from benchmarks.bench_p2p import run_pingpong
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from bench_p2p import run_pingpong

    run_pingpong(lambda: np.zeros(100_000), use_mph_addressing=True, config=config)


def _bcast_kernel(config: WorldConfig) -> None:
    payload = np.arange(131_072, dtype=np.float64)  # 1 MiB

    def main(comm):
        for _ in range(5):
            comm.bcast(payload if comm.rank == 0 else None)
        return True

    run_spmd(16, main, config=config)


def _op_loop_kernel(config: WorldConfig) -> float:
    """Seconds for 2000 empty send/recv roundtrips, timed *inside* one
    long-lived 2-rank world — no per-sample world start-up, so this is
    the tightest view of the per-operation hook cost."""
    ops = 2000

    def main(comm):
        peer = 1 - comm.rank
        if comm.rank == 0:
            t0 = time.perf_counter()
            for i in range(ops):
                comm.send(None, peer, tag=1)
                comm.recv(source=peer, tag=1)
            return time.perf_counter() - t0
        for i in range(ops):
            comm.recv(source=peer, tag=1)
            comm.send(None, peer, tag=1)
        return None

    return run_spmd(2, main, config=config)[0]


OVERHEAD_KERNELS = {
    "p2p_op_loop_2ranks": _op_loop_kernel,
    "p2p_field_roundtrip": _p2p_kernel,
    "bcast_1mib_p16_linear": _bcast_kernel,
}


def _inert_schedule() -> FaultSchedule:
    """Armed but never firing: a crash far beyond any op count the
    kernels reach, so every hook call pays its full bookkeeping."""
    return FaultSchedule(seed=0).crash_rank(0, at_op=10_000_000)


def hook_overhead(name: str, reps: int = 5) -> dict:
    """Time one hot-path kernel with the hook disabled (twice — the
    second run is the noise floor) and with an inert schedule armed.

    The three configurations are *interleaved* per repetition rather
    than timed in separate blocks, so slow drift in machine load (thread
    start-up, caches) cancels instead of masquerading as overhead.
    """
    kernel = OVERHEAD_KERNELS[name]
    base = WorldConfig(bcast_algorithm="linear") if "bcast" in name else WorldConfig()
    armed = WorldConfig(
        bcast_algorithm=base.bcast_algorithm, fault_schedule=_inert_schedule()
    ) if "bcast" in name else WorldConfig(fault_schedule=_inert_schedule())
    kernel(base)  # warm-up (imports, thread-pool priming)
    kernel(armed)
    samples: dict[str, list[float]] = {"disabled": [], "rerun": [], "armed": []}
    for _ in range(reps):
        for key, config in (("disabled", base), ("rerun", base), ("armed", armed)):
            t0 = time.perf_counter()
            inner = kernel(config)
            elapsed = time.perf_counter() - t0
            # A kernel may time itself (excluding world start-up) and
            # return the seconds; otherwise use the wall clock.
            samples[key].append(inner if isinstance(inner, float) else elapsed)
    # The kernels spawn a fresh 2- or 16-thread world per sample, so the
    # samples carry heavy scheduler noise; the minimum is the stable
    # "how fast can this configuration go" statistic the overhead
    # comparison needs (medians are reported alongside for context).
    disabled = min(samples["disabled"])
    disabled_rerun = min(samples["rerun"])
    armed_inert = min(samples["armed"])
    return {
        "disabled_min_s": disabled,
        "disabled_rerun_min_s": disabled_rerun,
        "armed_inert_min_s": armed_inert,
        "disabled_median_s": statistics.median(samples["disabled"]),
        "armed_inert_median_s": statistics.median(samples["armed"]),
        # The disabled hook is one `is None` branch; its cost is bounded
        # by the measurement noise between two identical disabled runs.
        "disabled_overhead_percent": abs(disabled_rerun - disabled) / disabled * 100,
        "armed_inert_overhead_percent": (armed_inert - disabled) / disabled * 100,
        "reps": reps,
    }


def recovery_latency(nprocs: int, reps: int = 3) -> dict:
    """Wall-clock seconds from fault detection to a usable shrunken
    communicator (revoke + shrink + agree), max over the survivors."""
    samples = []
    for rep in range(reps):
        sched = FaultSchedule(seed=rep).crash_rank(nprocs - 1, at_op=5)

        def main(comm):
            try:
                for i in range(50):
                    comm.send(i, (comm.rank + 1) % comm.size, tag=1)
                    comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
            except (ProcessFailedError, RevokedError):
                pass
            t0 = time.perf_counter()
            comm.revoke()
            new = comm.shrink()
            comm.agree(True)
            assert new.size == comm.size - 1
            return time.perf_counter() - t0

        values = run_spmd(
            nprocs, main, config=WorldConfig(fault_schedule=sched), timeout=60.0
        )
        samples.append(max(v for v in values if v is not None))
    return {
        "ranks": nprocs,
        "reps": reps,
        "median_recovery_s": statistics.median(samples),
        "max_recovery_s": max(samples),
    }


def run_faults_ablation(reps: int = 5) -> dict:
    """The full faults suite: hook overhead plus recovery latency."""
    report: dict = {"hook_overhead": {}, "recovery_latency": {}}
    for name in OVERHEAD_KERNELS:
        entry = hook_overhead(name, reps)
        report["hook_overhead"][name] = entry
        print(
            f"{name}: disabled={entry['disabled_min_s'] * 1e3:.1f}ms "
            f"noise={entry['disabled_overhead_percent']:.2f}% "
            f"armed_inert={entry['armed_inert_overhead_percent']:+.2f}%"
        )
    for nprocs in (8, 16):
        entry = recovery_latency(nprocs)
        report["recovery_latency"][f"ring_{nprocs}_ranks"] = entry
        print(
            f"recovery ring_{nprocs}_ranks: median={entry['median_recovery_s'] * 1e3:.1f}ms "
            f"max={entry['max_recovery_s'] * 1e3:.1f}ms"
        )
    return report
