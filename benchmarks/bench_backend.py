"""Execution-backend ablation: thread-direct vs thread-transport vs process.

Three questions, answered in ``BENCH_backend.json``:

* **Did the transport seam slow the thread backend down?**  Routing all
  remote delivery through :meth:`World.deliver` put exactly one
  ``transport is None`` branch on the seed's hot path.  Each kernel is
  timed on ``thread-direct`` (the seed configuration) twice — the second
  batch against the first is the *noise floor* — and the claim is that
  the branch is indistinguishable from that floor (<1%).
* **What does the ThreadTransport indirection itself cost?**  The
  ``thread-transport`` substrate layers the full :class:`Transport`
  interface over the same in-memory mailboxes (no sockets), isolating
  the cost of the abstraction from the cost of the wire.
* **What does a real wire cost?**  ``process-unix`` runs every rank as a
  forked OS process over Unix-domain sockets — pickled frames, kernel
  round trips, real context switches.  This is the honest price of true
  address-space isolation, reported so nobody mistakes the thread
  backend's numbers for it.

Every kernel times its operation loop *inside* the job from rank 0,
between two barriers — process spawn and socket bootstrap are excluded,
so the comparison is per-operation transport cost, not launch cost.

Timing discipline: substrates are *interleaved within each repetition*
(rep 0 runs every substrate back to back, then rep 1, ...), and every
overhead figure is the median of the **per-rep paired ratios** against
the thread-direct run of the *same* rep.  Unpaired batches — all
thread runs, then all process runs — let minute-scale machine drift
land entirely on one substrate and regularly produced negative
"overheads" on loaded hosts; pairing cancels the drift because both
sides of each ratio see the same machine state.

The driver in ``compare.py`` (``--suite backend``) writes
``BENCH_backend.json``.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.mpi import WorldConfig, run_spmd


def _substrates() -> dict[str, WorldConfig]:
    return {
        "thread-direct": WorldConfig(),
        "thread-transport": WorldConfig(transport="thread"),
        "process-unix": WorldConfig(backend="process", transport="unix"),
        "process-shm": WorldConfig(backend="process", transport="shm"),
    }


# ---------------------------------------------------------------------------
# Kernels: each returns rank 0's in-job seconds for the operation loop
# ---------------------------------------------------------------------------


def pingpong_seconds(config: WorldConfig, rounds: int = 50, elements: int = 100_000) -> float:
    """Object-mode ping-pong of a ~0.8 MiB field between 2 ranks."""

    def main(comm):
        payload = np.zeros(elements)
        comm.barrier()
        t0 = time.perf_counter()
        for i in range(rounds):
            if comm.rank == 0:
                comm.send(payload, 1, tag=1)
                comm.recv(source=1, tag=2)
            else:
                comm.recv(source=0, tag=1)
                comm.send(payload, 0, tag=2)
        comm.barrier()
        return time.perf_counter() - t0

    return run_spmd(2, main, config=config, timeout=300.0)[0]


def small_p2p_seconds(config: WorldConfig, rounds: int = 500) -> float:
    """Latency view: empty-payload send/recv roundtrips between 2 ranks."""

    def main(comm):
        comm.barrier()
        t0 = time.perf_counter()
        for i in range(rounds):
            if comm.rank == 0:
                comm.send(None, 1, tag=1)
                comm.recv(source=1, tag=2)
            else:
                comm.recv(source=0, tag=1)
                comm.send(None, 0, tag=2)
        comm.barrier()
        return time.perf_counter() - t0

    return run_spmd(2, main, config=config, timeout=300.0)[0]


def allreduce_seconds(config: WorldConfig, rounds: int = 100, nprocs: int = 4) -> float:
    """Collective view: object-mode allreduce on 4 ranks."""

    def main(comm):
        comm.barrier()
        t0 = time.perf_counter()
        for i in range(rounds):
            comm.allreduce(comm.rank + i)
        comm.barrier()
        return time.perf_counter() - t0

    return run_spmd(nprocs, main, config=config, timeout=300.0)[0]


KERNELS = {
    "pingpong_100k_x50": pingpong_seconds,
    "small_p2p_x500": small_p2p_seconds,
    "allreduce_p4_x100": allreduce_seconds,
}


def run_backend_ablation(reps: int = 9) -> dict:
    """Time every kernel on every substrate; return the report.

    Substrates are interleaved within each rep (see the module
    docstring): every overhead is the median of per-rep ratios against
    the same-rep thread-direct run, and the noise floor is a second
    thread-direct run inside the same rep, reported the same way.
    """
    substrates = _substrates()
    report: dict = {}
    for name, kernel in KERNELS.items():
        for config in substrates.values():
            kernel(config)  # warm-up: imports, forks, socket bootstrap
        samples: dict[str, list] = {s: [] for s in substrates}
        samples["noise-probe"] = []
        for _ in range(reps):
            for substrate, config in substrates.items():
                samples[substrate].append(kernel(config))
                if substrate == "thread-direct":
                    # paired noise probe: same config, same rep
                    samples["noise-probe"].append(kernel(config))
        baselines = samples["thread-direct"]
        entry = {
            "reps": reps,
            "thread_direct_median_s": statistics.median(baselines),
            "noise_floor_percent": statistics.median(
                abs(n - b) / b * 100.0
                for n, b in zip(samples["noise-probe"], baselines)
            ),
        }
        for substrate in substrates:
            if substrate == "thread-direct":
                continue
            key = substrate.replace("-", "_")
            entry[f"{key}_median_s"] = statistics.median(samples[substrate])
            entry[f"{key}_overhead_percent"] = statistics.median(
                (s - b) / b * 100.0
                for s, b in zip(samples[substrate], baselines)
            )
        report[name] = entry
        print(
            f"{name}: thread={entry['thread_direct_median_s'] * 1e3:.1f}ms "
            f"noise={entry['noise_floor_percent']:.2f}% "
            f"transport={entry['thread_transport_overhead_percent']:+.1f}% "
            f"unix={entry['process_unix_overhead_percent']:+.1f}% "
            f"shm={entry['process_shm_overhead_percent']:+.1f}%"
        )
    return report


def main(argv=None) -> None:  # pragma: no cover
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=9)
    parser.add_argument("--quick", action="store_true",
                        help="2 reps — CI smoke, numbers not for citing")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here as well")
    args = parser.parse_args(argv)
    report = run_backend_ablation(2 if args.quick else args.reps)
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)


if __name__ == "__main__":  # pragma: no cover
    main()
