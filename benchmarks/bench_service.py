"""Service throughput ablation: what the MPH-as-a-service warm paths buy.

Three comparisons, all over the same coupled two-component job document
(``atm`` + ``ocn``, one rank each side plus a paired exchange):

* **resident worker world (process backend)** — jobs/s with the runtime
  allowed to keep a resident world (fork + bootstrap + handshake paid
  once) vs fully cold isolated jobs (a fresh world per job).  This is
  the service's headline number; the acceptance bar is warm >= 1.3x
  cold.
* **thread backend** — the same document on the in-process substrate,
  for scale.
* **layout resolution** — ``JobRuntime.resolve`` per-call latency with a
  cold vs warm :class:`~repro.service.runtime.LayoutCache` (the §6
  handshake-layout work amortized across same-layout jobs).

Usage::

    PYTHONPATH=src python benchmarks/compare.py --suite service [--quick]
"""

from __future__ import annotations

import statistics
import time

from repro import components_setup
from repro.service import JobDocument, JobRuntime

#: Jobs timed per batch (per rep) in the throughput kernels.
BATCH = 8


def _model(comm, env):
    mph = components_setup(comm, env.program, env=env)
    me = mph.local_proc_id()
    if mph.comp_name() == "atm":
        mph.send(float(me), "ocn", me, tag=21)
        return mph.recv("ocn", me, tag=22)
    value = mph.recv("atm", me, tag=21)
    mph.send(value + 1.0, "atm", me, tag=22)
    return value


PROGRAMS = {"model": _model}


def _document(backend: str) -> JobDocument:
    return JobDocument.from_spec(
        {
            "name": f"bench-{backend}",
            "components": [
                {"name": "atm", "nprocs": 1, "program": "model"},
                {"name": "ocn", "nprocs": 1, "program": "model"},
            ],
            "runtime": {"backend": backend, "timeout": 120.0},
        }
    )


def batch_seconds(runtime: JobRuntime, document: JobDocument, tag: str, jobs: int) -> float:
    """Wall-clock seconds to run *jobs* identical documents back to back."""
    t0 = time.perf_counter()
    for i in range(jobs):
        outcome = runtime.execute(document, f"{tag}-{i}")
        assert outcome.ok, (outcome.error, outcome.failures)
    return time.perf_counter() - t0


def jobs_per_second(backend: str, *, max_resident: int, jobs: int, tag: str) -> float:
    """One batch on a fresh runtime; resident runtimes get one warm-up
    job first so the batch measures the steady warm state."""
    document = _document(backend)
    with JobRuntime(PROGRAMS, max_resident=max_resident) as runtime:
        if max_resident:
            assert runtime.execute(document, f"{tag}-warmup").ok
        elapsed = batch_seconds(runtime, document, tag, jobs)
    return jobs / elapsed


def resolve_seconds(reps: int) -> dict:
    """Per-call ``resolve`` latency, cold cache vs warm cache."""
    document = _document("thread")
    cold, warm = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        runtime = JobRuntime(PROGRAMS, max_resident=0)
        runtime.resolve(document)
        cold.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(10):
            runtime.resolve(document)
        warm.append((time.perf_counter() - t0) / 10)
    return {
        "cold_us": statistics.median(cold) * 1e6,
        "cached_us": statistics.median(warm) * 1e6,
        "speedup": statistics.median(cold) / max(statistics.median(warm), 1e-9),
    }


def run_service_ablation(reps: int = 5, jobs: int = BATCH) -> dict:
    """Run every service kernel; return the report dict."""
    # Warm-up pass: imports, fork machinery, first sockets.
    jobs_per_second("process", max_resident=1, jobs=2, tag="wu-warm")
    jobs_per_second("process", max_resident=0, jobs=2, tag="wu-cold")

    samples: dict[str, list] = {"cold": [], "warm": [], "thread": []}
    for rep in range(reps):
        samples["cold"].append(
            jobs_per_second("process", max_resident=0, jobs=jobs, tag=f"c{rep}")
        )
        samples["warm"].append(
            jobs_per_second("process", max_resident=1, jobs=jobs, tag=f"w{rep}")
        )
        samples["thread"].append(
            jobs_per_second("thread", max_resident=0, jobs=jobs, tag=f"t{rep}")
        )

    cold = statistics.median(samples["cold"])
    warm = statistics.median(samples["warm"])
    speedup = warm / cold
    report = {
        "service_throughput": {
            "reps": reps,
            "jobs_per_batch": jobs,
            "world_size": 2,
            "process_cold_jobs_per_s": cold,
            "process_resident_jobs_per_s": warm,
            "warm_vs_cold_speedup": speedup,
            "thread_isolated_jobs_per_s": statistics.median(samples["thread"]),
        },
        "layout_resolution": resolve_seconds(max(reps, 3)),
        "acceptance": {
            "warm_vs_cold_speedup_min": 1.3,
            "pass": speedup >= 1.3,
        },
    }
    return report


def test_resident_world_beats_cold_isolated():
    """The acceptance bar as a test: resident warm jobs/s >= 1.3x cold
    on the process backend (quick reps; the full curve is compare.py's)."""
    report = run_service_ablation(reps=2, jobs=4)
    assert report["acceptance"]["pass"], report["service_throughput"]


if __name__ == "__main__":
    import json

    print(json.dumps(run_service_ablation(), indent=2))
