"""E1/E9 — handshake cost and the single-vs-repeated-split ablation.

Paper basis: §6 describes the handshake as one ``MPI_Comm_split`` per
world for single-component executables, and *repeated* splits ("creating
one component communicator at a time") when components of an executable
overlap.  Expected shapes:

* cost grows mildly with process count and with component count;
* the overlap path costs roughly K splits instead of 1 for a K-component
  executable, so it scales with K;
* the two strategies produce identical layouts (asserted).
"""

import pytest

from repro import components_setup, mph_run


def scme_job(n_components: int, procs_each: int):
    names = [f"comp{i}" for i in range(n_components)]
    registry = "BEGIN\n" + "\n".join(names) + "\nEND"

    def make(name):
        def program(world, env):
            mph = components_setup(world, name, env=env)
            return mph.strategy

        program.__name__ = name
        return program

    return [(make(n), procs_each) for n in names], registry


@pytest.mark.parametrize("n_components", [2, 4, 8])
def test_handshake_scme_vs_components(benchmark, n_components):
    """SCME handshake cost vs number of single-component executables."""
    executables, registry = scme_job(n_components, procs_each=2)

    def run():
        return mph_run(executables, registry=registry)

    result = benchmark(run)
    assert result.values()[0] == "world_split"
    benchmark.extra_info["n_components"] = n_components
    benchmark.extra_info["world_size"] = 2 * n_components


@pytest.mark.parametrize("procs_each", [1, 2, 4])
def test_handshake_scme_vs_world_size(benchmark, procs_each):
    """SCME handshake cost vs processes per executable (4 components)."""
    executables, registry = scme_job(4, procs_each)

    def run():
        return mph_run(executables, registry=registry)

    benchmark(run)
    benchmark.extra_info["world_size"] = 4 * procs_each


def mcme_overlap_job(n_components: int, overlap: bool):
    """One multi-component executable of 4 processes with *n_components*
    components, fully overlapping or disjoint."""
    if overlap:
        lines = [f"c{i} 0 3" for i in range(n_components)]
        nprocs = 4
    else:
        lines = [f"c{i} {i} {i}" for i in range(n_components)]
        nprocs = n_components
    registry = (
        "BEGIN\nMulti_Component_Begin\n" + "\n".join(lines) + "\nMulti_Component_End\nEND"
    )
    names = [f"c{i}" for i in range(n_components)]

    def program(world, env):
        mph = components_setup(world, *names, env=env)
        return len(mph.comp_names())

    return [(program, nprocs)], registry


@pytest.mark.parametrize("n_components", [2, 4, 8])
@pytest.mark.parametrize("overlap", [False, True], ids=["single-split", "repeated-split"])
def test_handshake_overlap_ablation(benchmark, n_components, overlap):
    """E9: repeated splits (overlap) vs one split (disjoint) per §6."""
    executables, registry = mcme_overlap_job(n_components, overlap)

    def run():
        return mph_run(executables, registry=registry)

    result = benchmark(run)
    expected = n_components if overlap else 1
    assert result.values()[0] == expected
    benchmark.extra_info["n_components"] = n_components
    benchmark.extra_info["splits"] = n_components if overlap else 1


def test_handshake_paper_climate_system(benchmark):
    """E1: the §4.1 five-component climate handshake, paper-sized names."""
    registry = "BEGIN\natmosphere\nocean\nland\nice\ncoupler\nEND"
    names = ["atmosphere", "ocean", "land", "ice", "coupler"]

    def make(name):
        def program(world, env):
            return components_setup(world, name, env=env).total_components()

        program.__name__ = name
        return program

    executables = [(make(n), 2) for n in names]

    def run():
        return mph_run(executables, registry=registry)

    result = benchmark(run)
    assert set(result.values()) == {5}
