"""E5 — MPH_comm_join cost and the data-redistribution path it enables.

Paper basis: §5.1 — "With this joint communicator, collective operations
such as data redistribution could easily be performed."  Measured:

* join creation cost vs the union size (leader allocates contexts and
  distributes them: O(union) messages, no world-wide collective);
* a gather-based field redistribution over the joint communicator vs the
  equivalent sequence of point-to-point messages.
"""

import numpy as np
import pytest

from repro import components_setup, mph_run

JOINS = 20


@pytest.mark.parametrize("size_each", [1, 2, 4])
def test_join_creation(benchmark, size_each):
    registry = "BEGIN\na\nb\nc\nEND"

    def make(name):
        def program(world, env):
            mph = components_setup(world, name, env=env)
            for _ in range(JOINS):
                joined = mph.comm_join("a", "b")
                if joined is not None:
                    joined.free()
            return True

        program.__name__ = name
        return program

    def run():
        return mph_run(
            [(make("a"), size_each), (make("b"), size_each), (make("c"), 1)],
            registry=registry,
        )

    benchmark(run)
    benchmark.extra_info.update(union_size=2 * size_each, joins=JOINS)


@pytest.mark.parametrize("transport", ["join-gather", "p2p"])
def test_field_redistribution(benchmark, transport):
    """Move a decomposed field from a 4-process producer to a 1-process
    consumer, via join-communicator gather vs explicit p2p messages."""
    registry = "BEGIN\nproducer\nconsumer\nEND"
    rows, cols = 64, 32
    rounds = 10

    def producer(world, env):
        mph = components_setup(world, "producer", env=env)
        comm = mph.component_comm()
        block = np.full((rows // comm.size, cols), float(comm.rank))
        join = mph.comm_join("producer", "consumer") if transport == "join-gather" else None
        for _ in range(rounds):
            if join is not None:
                join.gather(block, root=comm.size)
            else:
                mph.send(block, "consumer", 0, tag=comm.rank)
        return True

    def consumer(world, env):
        mph = components_setup(world, "consumer", env=env)
        n_prod = mph.component_size("producer")
        join = mph.comm_join("producer", "consumer") if transport == "join-gather" else None
        total = 0.0
        for _ in range(rounds):
            if join is not None:
                blocks = join.gather(None, root=n_prod)
                full = np.concatenate([b for b in blocks if b is not None])
            else:
                parts = [mph.recv("producer", r, tag=r) for r in range(n_prod)]
                full = np.concatenate(parts)
            total += float(full.sum())
        return total

    def run():
        return mph_run([(producer, 4), (consumer, 1)], registry=registry)

    result = benchmark(run)
    expected = rounds * sum(r * (rows // 4) * cols for r in range(4))
    assert result.by_executable(1)[0] == expected
    benchmark.extra_info.update(transport=transport, rows=rows, cols=cols, rounds=rounds)
