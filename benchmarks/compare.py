"""Ablation driver: fast-path on-vs-off and progress-engine polling-vs-event.

The default ``fastpath`` suite runs the three zero-copy fast-path
kernels with the relevant ``WorldConfig`` flags toggled and records
median wall-clock times plus the on/off speedup (``BENCH_fastpath.json``);
``--suite progress`` instead runs the progress-engine kernels from
:mod:`bench_progress` under both engines (``BENCH_progress.json``),
``--suite faults`` runs the fault-injection hook-overhead and
ULFM-recovery-latency kernels from :mod:`bench_faults`
(``BENCH_faults.json``), ``--suite sched`` runs the match-schedule
hook-overhead kernels from :mod:`bench_sched` (``BENCH_sched.json``),
``--suite backend`` runs the execution-backend substrate comparison from
:mod:`bench_backend` (``BENCH_backend.json``), ``--suite shm`` runs the
shared-memory transport curves and the hierarchical-collective
comparison from :mod:`bench_shm` (``BENCH_shm.json``), ``--suite init``
runs the flat-vs-tree bootstrap scaling sweep from :mod:`bench_init`
(``BENCH_init.json``), ``--suite coupling`` runs the coupled-solver
iteration-count and driver-overhead kernels from :mod:`bench_coupling`
(``BENCH_coupling.json``), ``--suite service`` runs the MPH-as-a-service
throughput kernels (cold isolated worlds vs resident worker worlds, plus
layout-cache resolution latency) from :mod:`bench_service`
(``BENCH_service.json``), and ``--suite all`` runs everything.  ``--quick`` drops to 2 reps and
skips report files — the CI smoke mode.  The fast-path kernels:

* ``bcast_1mib_p16_linear`` — a 1 MiB field broadcast linearly from
  rank 0 to 16 ranks (pickle-once fan-out vs per-destination pickling);
* ``rearranger_coupled_routing`` — 100 coupled routing steps of a
  misaligned 512×8 field between a 4-process and a 3-process component
  (buffer-mode persistent requests vs pickled tuples);
* ``p2p_field_roundtrip`` — 50 object-mode ping-pong roundtrips of a
  100k-element field (array snapshot vs pickle per hop).

Everything runs in-process on the simulated substrate — no network, no
external services.  Usage::

    PYTHONPATH=src python benchmarks/compare.py [--reps N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import numpy as np

from repro.mpi import WorldConfig, run_spmd


def _bcast_kernel(fastpath: bool) -> None:
    payload = np.arange(131_072, dtype=np.float64)  # 1 MiB

    def main(comm):
        for _ in range(5):
            comm.bcast(payload if comm.rank == 0 else None)
        return True

    config = WorldConfig(bcast_algorithm="linear", serialization_fastpath=fastpath)
    run_spmd(16, main, config=config)


def _rearranger_kernel(fastpath: bool) -> None:
    try:
        from benchmarks.bench_rearranger import run_transfer
    except ImportError:  # run as a script: benchmarks/ is sys.path[0]
        from bench_rearranger import run_transfer

    config = WorldConfig(
        rearranger_fastpath=fastpath, serialization_fastpath=fastpath
    )
    run_transfer(512, 8, 4, 3, "router", config=config, rounds=100)


def _p2p_kernel(fastpath: bool) -> None:
    try:
        from benchmarks.bench_p2p import run_pingpong
    except ImportError:
        from bench_p2p import run_pingpong

    run_pingpong(
        lambda: np.zeros(100_000),
        use_mph_addressing=True,
        config=WorldConfig(serialization_fastpath=fastpath),
    )


KERNELS = {
    "bcast_1mib_p16_linear": _bcast_kernel,
    "rearranger_coupled_routing": _rearranger_kernel,
    "p2p_field_roundtrip": _p2p_kernel,
}


def _median_seconds(kernel, fastpath: bool, reps: int) -> float:
    kernel(fastpath)  # warm-up (imports, thread-pool priming)
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        kernel(fastpath)
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def run_ablation(reps: int = 5) -> dict:
    """Time every kernel with the fast path on and off; return the report."""
    results = {}
    for name, kernel in KERNELS.items():
        on = _median_seconds(kernel, True, reps)
        off = _median_seconds(kernel, False, reps)
        results[name] = {
            "fastpath_on_median_s": on,
            "fastpath_off_median_s": off,
            "speedup": off / on,
            "reps": reps,
        }
        print(f"{name}: on={on * 1e3:.1f}ms off={off * 1e3:.1f}ms "
              f"speedup={off / on:.2f}x")
    return results


def _write_report(report: dict, out: str | None) -> None:
    if out is None:  # --quick smoke run: numbers are not for citing
        return
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=("fastpath", "progress", "faults", "sched", "backend", "shm", "init", "coupling", "service", "all"),
                        default="fastpath",
                        help="which ablation to run")
    parser.add_argument("--reps", type=int, default=5,
                        help="timed repetitions per configuration (median "
                             "taken; fastpath suite only)")
    parser.add_argument("--quick", action="store_true",
                        help="2 reps and no report rewrite unless --out is "
                             "given — CI smoke-test mode")
    parser.add_argument("--out", default=None,
                        help="where to write the JSON report (default: "
                             "BENCH_<suite>.json; ignored for --suite all)")
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error("--reps must be at least 1")
    if args.quick:
        args.reps = 2
    def _out(suite: str) -> str | None:
        if args.suite == suite and args.out:
            return args.out
        if args.quick:
            return None
        return f"BENCH_{suite}.json"

    if args.suite in ("fastpath", "all"):
        _write_report(run_ablation(args.reps), _out("fastpath"))
    if args.suite in ("progress", "all"):
        try:
            from benchmarks.bench_progress import run_progress_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_progress import run_progress_ablation
        _write_report(run_progress_ablation(), _out("progress"))
    if args.suite in ("faults", "all"):
        try:
            from benchmarks.bench_faults import run_faults_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_faults import run_faults_ablation
        _write_report(run_faults_ablation(args.reps), _out("faults"))
    if args.suite in ("sched", "all"):
        try:
            from benchmarks.bench_sched import run_sched_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_sched import run_sched_ablation
        _write_report(run_sched_ablation(args.reps), _out("sched"))
    if args.suite in ("backend", "all"):
        try:
            from benchmarks.bench_backend import run_backend_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_backend import run_backend_ablation
        _write_report(run_backend_ablation(args.reps), _out("backend"))
    if args.suite in ("shm", "all"):
        try:
            from benchmarks.bench_shm import run_shm_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_shm import run_shm_ablation
        _write_report(run_shm_ablation(args.reps), _out("shm"))
    if args.suite in ("init", "all"):
        try:
            from benchmarks.bench_init import run_init_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_init import run_init_ablation
        _write_report(run_init_ablation(args.reps), _out("init"))
    if args.suite in ("coupling", "all"):
        try:
            from benchmarks.bench_coupling import run_coupling_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_coupling import run_coupling_ablation
        _write_report(run_coupling_ablation(args.reps), _out("coupling"))
    if args.suite in ("service", "all"):
        try:
            from benchmarks.bench_service import run_service_ablation
        except ImportError:  # run as a script: benchmarks/ is sys.path[0]
            from bench_service import run_service_ablation
        _write_report(run_service_ablation(args.reps), _out("service"))


if __name__ == "__main__":
    main()
