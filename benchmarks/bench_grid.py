"""Future-work (c) — cross-site coupling cost vs wide-area latency.

Expected shape: exchange time is dominated by the configured one-way
latency (two hops per coupled step), so doubling the latency roughly
doubles step time — the alpha term of the alpha–beta model; the zero-
latency session measures the pure software overhead of the grid layer.
"""

import pytest

from repro import components_setup
from repro.grid import ClusterSpec, grid_setup, run_grid

ROUNDTRIPS = 5


def make_side(name, peer_cluster, peer_component, initiate):
    def program(world, env):
        mph = components_setup(world, name, env=env)
        gmph = grid_setup(mph, env.grid_cluster, env.grid_channel)
        for i in range(ROUNDTRIPS):
            if initiate:
                gmph.send(i, peer_cluster, peer_component, 0, tag=1)
                gmph.recv(tag=2)
            else:
                obj, src, _ = gmph.recv(tag=1)
                gmph.send(obj, src, peer_component, 0, tag=2)
        return True

    program.__name__ = name
    return program


@pytest.mark.parametrize("latency_ms", [0, 5, 10])
def test_cross_site_pingpong(benchmark, latency_ms):
    def run():
        return run_grid(
            [
                ClusterSpec(
                    "east",
                    [(make_side("ocn", "west", "atm", True), 1)],
                    registry="BEGIN\nocn\nEND",
                ),
                ClusterSpec(
                    "west",
                    [(make_side("atm", "east", "ocn", False), 1)],
                    registry="BEGIN\natm\nEND",
                ),
            ],
            latency=latency_ms / 1000.0,
        )

    benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info.update(latency_ms=latency_ms, roundtrips=ROUNDTRIPS)
