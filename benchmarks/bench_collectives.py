"""Substrate ablation — collective algorithm families.

The handshake's cost is dominated by the collectives it uses (bcast of the
registry, allgather of declarations, the splits' gather/scatter).  This
bench compares the textbook algorithm families the substrate implements:

* broadcast: linear (O(P) messages from the root) vs binomial tree
  (O(log P) rounds) — the tree should win as P grows;
* allreduce: reduce+bcast vs recursive doubling;
* barrier: linear vs dissemination.
"""

import numpy as np
import pytest

from repro.mpi import WorldConfig, run_spmd

LINEAR = WorldConfig(
    bcast_algorithm="linear",
    reduce_algorithm="linear",
    allreduce_algorithm="reduce_bcast",
    allgather_algorithm="gather_bcast",
    barrier_algorithm="linear",
)
TREE = WorldConfig(
    bcast_algorithm="binomial",
    reduce_algorithm="binomial",
    allreduce_algorithm="recursive_doubling",
    allgather_algorithm="ring",
    barrier_algorithm="dissemination",
)
CONFIGS = {"linear": LINEAR, "tree": TREE}

REPEATS = 30  # collective calls per measured job (amortises thread spawn)


@pytest.mark.parametrize("family", CONFIGS)
@pytest.mark.parametrize("nprocs", [4, 8, 16])
def test_bcast(benchmark, family, nprocs):
    payload = np.arange(512, dtype=np.float64)

    def main(comm):
        for _ in range(REPEATS):
            comm.bcast(payload if comm.rank == 0 else None)
        return True

    def run():
        return run_spmd(nprocs, main, config=CONFIGS[family])

    benchmark(run)
    benchmark.extra_info.update(nprocs=nprocs, repeats=REPEATS, family=family)


@pytest.mark.parametrize("family", CONFIGS)
@pytest.mark.parametrize("nprocs", [4, 8, 16])
def test_allreduce(benchmark, family, nprocs):
    def main(comm):
        acc = 0
        for i in range(REPEATS):
            acc = comm.allreduce(comm.rank + i)
        return acc

    def run():
        return run_spmd(nprocs, main, config=CONFIGS[family])

    result = benchmark(run)
    expected = sum(range(nprocs)) + nprocs * (REPEATS - 1)
    assert result == [expected] * nprocs
    benchmark.extra_info.update(nprocs=nprocs, repeats=REPEATS, family=family)


@pytest.mark.parametrize("family", CONFIGS)
@pytest.mark.parametrize("nprocs", [4, 8, 16])
def test_barrier(benchmark, family, nprocs):
    def main(comm):
        for _ in range(REPEATS):
            comm.barrier()
        return True

    def run():
        return run_spmd(nprocs, main, config=CONFIGS[family])

    benchmark(run)
    benchmark.extra_info.update(nprocs=nprocs, repeats=REPEATS, family=family)


@pytest.mark.parametrize("fastpath", [True, False], ids=["fastpath-on", "fastpath-off"])
def test_bcast_fastpath_ablation(benchmark, fastpath):
    """The headline fan-out: a 1 MiB field broadcast linearly from rank 0
    to 16 ranks.  With the fast path the root encodes once and every
    destination envelope shares the same immutable snapshot; with it off
    the root pickles the payload once per destination."""
    nprocs, repeats = 16, 5
    payload = np.arange(131_072, dtype=np.float64)  # 1 MiB

    def main(comm):
        for _ in range(repeats):
            comm.bcast(payload if comm.rank == 0 else None)
        return True

    config = WorldConfig(bcast_algorithm="linear", serialization_fastpath=fastpath)

    def run():
        return run_spmd(nprocs, main, config=config)

    benchmark(run)
    benchmark.extra_info.update(
        nprocs=nprocs, repeats=repeats, nbytes=payload.nbytes, fastpath=fastpath
    )


@pytest.mark.parametrize("mode", ["object", "buffer"])
@pytest.mark.parametrize("nelems", [1_000, 100_000])
def test_allreduce_payload_modes(benchmark, mode, nelems):
    """Object (pickle) vs buffer (numpy) collective fast path, 4 ranks."""

    def main(comm):
        data = np.linspace(0.0, 1.0, nelems)
        for _ in range(10):
            if mode == "buffer":
                comm.Allreduce(data)
            else:
                comm.allreduce(data)
        return True

    def run():
        return run_spmd(4, main)

    benchmark(run)
    benchmark.extra_info.update(mode=mode, nelems=nelems, repeats=10)


@pytest.mark.parametrize("nprocs", [4, 8])
def test_comm_split(benchmark, nprocs):
    """The handshake's workhorse: repeated world splits."""

    def main(comm):
        for i in range(REPEATS):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            sub.free()
        return True

    def run():
        return run_spmd(nprocs, main)

    benchmark(run)
    benchmark.extra_info.update(nprocs=nprocs, repeats=REPEATS)
