"""The API-reference generator and the documentation invariant it
enforces: every public symbol has a docstring."""

import importlib
import inspect

import pytest

from repro.tools.apidoc import PACKAGES, first_paragraph, render, render_module


class TestGenerator:
    def test_render_covers_all_packages(self):
        text = render()
        for name in PACKAGES:
            assert f"## `{name}`" in text

    def test_render_module_sections(self):
        text = render_module("repro.mpi")
        assert "### Classes" in text and "### Functions" in text
        assert "run_spmd" in text and "Comm" in text

    def test_first_paragraph_flattens(self):
        def fn():
            """Line one
            continues.

            Second paragraph ignored."""

        assert first_paragraph(fn) == "Line one continues."

    def test_committed_reference_is_current(self):
        """docs/api.md must match the code (regenerate with
        `python -m repro.tools.apidoc > docs/api.md`)."""
        from pathlib import Path

        committed = Path(__file__).resolve().parent.parent / "docs" / "api.md"
        assert committed.read_text() == render()


class TestDocstringCoverage:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_public_symbol_documented(self, package):
        module = importlib.import_module(package)
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.ismodule(obj):
                continue
            if inspect.isclass(obj) or inspect.isroutine(obj):
                if not inspect.getdoc(obj):
                    missing.append(name)
        assert not missing, f"{package}: undocumented public symbols: {missing}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_public_method_documented(self, package):
        module = importlib.import_module(package)
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for m_name, m in inspect.getmembers(obj, inspect.isfunction):
                if m_name.startswith("_") or not m.__qualname__.startswith(obj.__name__):
                    continue
                if not inspect.getdoc(m):
                    missing.append(f"{name}.{m_name}")
        assert not missing, f"{package}: undocumented public methods: {missing}"
