"""MPMD job execution (repro.launcher.job)."""

import pytest

from repro.errors import LaunchError
from repro.launcher.cmdfile import ExecutableSpec
from repro.launcher.job import JobEnv, MpmdJob, mph_run
from repro.launcher.smp import Machine


def identity_program(world, env):
    return (env.program, env.exe_index, env.local_index, world.rank, world.size)


class TestJobBasics:
    def test_shared_comm_world(self):
        """All executables share one COMM_WORLD — the §6 startup condition."""
        job = MpmdJob([(identity_program, 2), (identity_program, 3)])
        result = job.run()
        sizes = {v[4] for v in result.values()}
        assert sizes == {5}

    def test_block_rank_assignment(self):
        job = MpmdJob([(identity_program, 2), (identity_program, 2)])
        result = job.run()
        assert result.assignment == [[0, 1], [2, 3]]
        # exe_index / local_index visible to each process
        assert result.values()[2][1:3] == (1, 0)

    def test_round_robin_assignment(self):
        job = MpmdJob([(identity_program, 2), (identity_program, 2)], rank_policy="round_robin")
        result = job.run()
        assert result.assignment == [[0, 2], [1, 3]]
        # local index still counts in ascending world-rank order
        assert result.values()[2][1:3] == (0, 1)

    def test_by_executable_name_and_index(self):
        def alpha(world, env):
            return "A"

        def beta(world, env):
            return "B"

        result = MpmdJob([(alpha, 1), (beta, 2)]).run()
        assert result.by_executable("beta") == ["B", "B"]
        assert result.by_executable(0) == ["A"]

    def test_by_executable_unknown_name(self):
        result = MpmdJob([(identity_program, 1)]).run()
        with pytest.raises(LaunchError, match="no executable named"):
            result.by_executable("ghost")

    def test_argv_passed_through(self):
        def reads_argv(world, env):
            return env.argv

        result = MpmdJob([(reads_argv, 1, ("-v", "--fast"))]).run()
        assert result.values() == [("-v", "--fast")]

    def test_empty_job_rejected(self):
        with pytest.raises(LaunchError, match="at least one executable"):
            MpmdJob([])

    def test_bad_executable_item_rejected(self):
        with pytest.raises(LaunchError, match="cannot interpret"):
            MpmdJob(["not-an-exe"])


class TestSpecsAndPrograms:
    def test_specs_resolved_through_registry(self):
        programs = {"atm": identity_program, "ocn": identity_program}
        job = MpmdJob(
            [ExecutableSpec("atm", 2), ExecutableSpec("ocn", 1)], programs=programs
        )
        result = job.run()
        assert result.by_executable("ocn")[0][0] == "ocn"

    def test_specs_without_registry_rejected(self):
        with pytest.raises(LaunchError, match="programs"):
            MpmdJob([ExecutableSpec("atm", 2)])

    def test_mixed_specs_and_tuples(self):
        programs = {"atm": identity_program}
        job = MpmdJob(
            [ExecutableSpec("atm", 1), (identity_program, 1)], programs=programs
        )
        assert job.world_size == 2
        job.run()


class TestEnvironment:
    def test_env_vars_shared(self):
        def reads_env(world, env):
            return env.vars.get("MPH_LOG_OCEAN")

        result = MpmdJob([(reads_env, 2)], env_vars={"MPH_LOG_OCEAN": "/tmp/o.log"}).run()
        assert result.values() == ["/tmp/o.log"] * 2

    def test_registry_propagated(self):
        def reads_registry(world, env):
            return env.registry

        result = MpmdJob([(reads_registry, 1)], registry="BEGIN\nocean\nEND").run()
        assert result.values() == ["BEGIN\nocean\nEND"]

    def test_workdir_propagated(self, tmp_path):
        def reads_workdir(world, env):
            return str(env.workdir)

        result = MpmdJob([(reads_workdir, 1)], workdir=tmp_path).run()
        assert result.values() == [str(tmp_path)]

    def test_output_manager_shared(self):
        managers = []

        def grabs_output(world, env):
            managers.append(env.output)
            return None

        MpmdJob([(grabs_output, 2), (grabs_output, 1)]).run()
        assert len({id(m) for m in managers}) == 1


class TestMachinePlacement:
    def test_placement_validated_and_returned(self):
        machine = Machine.homogeneous(2, 2)
        job = MpmdJob([(identity_program, 2), (identity_program, 2)], machine=machine)
        result = job.run()
        assert result.placement is not None
        result.placement.validate_exclusive()

    def test_oversubscribed_job_refused_before_running(self):
        from repro.errors import AllocationError

        machine = Machine.homogeneous(1, 2)
        job = MpmdJob([(identity_program, 4)], machine=machine)
        with pytest.raises(AllocationError):
            job.run()


class TestFailurePropagation:
    def test_exception_in_one_executable_fails_job(self):
        def bad(world, env):
            raise RuntimeError("component crashed")

        def good(world, env):
            world.barrier()

        with pytest.raises(RuntimeError, match="component crashed"):
            mph_run([(bad, 1), (good, 2)])


class TestMphRunHelper:
    def test_returns_job_result(self):
        result = mph_run([(identity_program, 2)])
        assert result.values()[0][0] == "identity_program"

    def test_timeout_kwarg_accepted(self):
        result = mph_run([(identity_program, 1)], timeout=10.0)
        assert len(result.values()) == 1


class TestJobEnvDefaults:
    def test_dataclass_defaults(self):
        env = JobEnv(program="x", exe_index=0, local_index=0)
        assert env.argv == () and env.vars == {} and env.registry is None
