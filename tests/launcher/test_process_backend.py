"""The process execution backend through the launcher stack.

These tests run *real* OS processes: :class:`MpmdJob` forks its ranks,
and ``mphrun --backend process`` execs each component as its own
``python -m repro.tools.mphchild``.  They cover what the thread-backend
launcher tests cannot — per-process stdout files produced by genuine
``dup2`` redirection (paper §5.4), and hard child death (``os._exit``)
failing the whole job with the component named.
"""

import os
import sys
import textwrap

import pytest

from repro.errors import AbortError, LaunchError
from repro.launcher.job import JobResult, MpmdJob
from repro.mpi.procbackend import ChildExitError
from repro.mpi.world import WorldConfig
from repro.tools.mphrun import main


def identity_program(world, env):
    return (env.program, env.exe_index, env.local_index, world.rank, world.size)


PROCESS = WorldConfig(backend="process")


class TestMpmdJobProcessBackend:
    def test_shared_comm_world(self):
        """All executables still share one COMM_WORLD when each rank is a
        forked process — the §6 startup condition, now cross-process."""
        job = MpmdJob(
            [(identity_program, 2), (identity_program, 2)], config=PROCESS
        )
        result = job.run(timeout=60.0)
        assert {v[4] for v in result.values()} == {4}
        assert result.assignment == [[0, 1], [2, 3]]

    def test_cross_component_exchange(self):
        """Components really communicate across process boundaries."""

        def sender(world, env):
            world.send(f"from {env.program}", world.size - 1, tag=1)
            return "sent"

        def receiver(world, env):
            if world.rank == world.size - 1:
                return world.recv(source=0, tag=1)
            return "idle"

        result = MpmdJob([(sender, 1), (receiver, 2)], config=PROCESS).run(
            timeout=60.0
        )
        assert result.by_executable("receiver")[-1] == "from sender"

    def test_per_component_log_files(self, tmp_path):
        """§5.4 via dup2: local processor 0 of each component owns
        ``<component>.log``; other processors share the combined log."""

        def chatty(world, env):
            env.output.redirect(
                env.program,
                is_channel_owner=env.local_index == 0,
                env_vars=env.vars,
                workdir=env.workdir,
            )
            print(f"{env.program} local {env.local_index} says hi", flush=True)
            world.barrier()
            return "ok"

        chatty.__name__ = "atmos"
        result = MpmdJob([(chatty, 2)], config=PROCESS, workdir=tmp_path).run(
            timeout=60.0
        )
        assert result.values() == ["ok", "ok"]
        assert "atmos local 0 says hi" in (tmp_path / "atmos.log").read_text()
        assert "atmos local 1 says hi" in (tmp_path / "mph_combined.log").read_text()

    def test_rank_exception_propagates(self):
        def boom(world, env):
            if world.rank == 1:
                raise RuntimeError("component exploded")
            world.barrier()

        with pytest.raises((RuntimeError, AbortError)):
            MpmdJob([(boom, 3)], config=PROCESS).run(timeout=60.0)

    def test_hard_child_death_names_component(self):
        """A rank dying without reporting (``os._exit``) must fail the
        job with a ChildExitError naming the component, not hang or
        surface a bare transport error."""

        def dies(world, env):
            if world.rank == 0:
                os._exit(7)
            world.barrier()

        dies.__name__ = "crasher"
        with pytest.raises(ChildExitError) as excinfo:
            MpmdJob([(dies, 2)], config=PROCESS).run(timeout=60.0)
        exc = excinfo.value
        assert isinstance(exc, LaunchError)
        assert exc.label == "crasher.0"
        assert exc.exit_code == 7
        assert "crasher" in str(exc)

    def test_failures_accessor_shape(self):
        """failures() stays empty on a clean process-backend run."""
        result = MpmdJob([(identity_program, 2)], config=PROCESS).run(timeout=60.0)
        assert isinstance(result, JobResult)
        assert result.failures() == []

    @pytest.mark.parametrize("transport", ["unix", "shm"])
    def test_crash_mid_transfer_surfaces_failure(self, tmp_path, transport):
        """A peer dying between messages must turn the survivor's posted
        recv into a ProcessFailedError (shm: via the doorbell socket's
        EOF), never a hang — and the job must still name the dead rank.
        Shm segments of the crashed job must all be swept."""
        marker = tmp_path / "observed.txt"

        def fn(world, env, marker_path=str(marker)):
            import numpy as np

            from repro.errors import ProcessFailedError

            if world.rank == 1:
                # establish the transfer path with a real large payload
                # (page-pool path on shm), then die without warning
                world.send(np.arange(200_000, dtype=np.float64), 0, tag=1)
                os._exit(9)
            got = world.recv(source=1, tag=1)
            assert float(got.sum()) == float(
                np.arange(200_000, dtype=np.float64).sum()
            )
            try:
                world.recv(source=1, tag=2)  # never sent: peer is dead
            except ProcessFailedError as exc:
                with open(marker_path, "w") as fh:
                    fh.write(f"ProcessFailedError: {exc}")
                raise

        fn.__name__ = "mid_transfer_crasher"
        cfg = WorldConfig(backend="process", transport=transport)
        with pytest.raises((ChildExitError, AbortError)) as excinfo:
            MpmdJob([(fn, 2)], config=cfg).run(timeout=60.0)
        if isinstance(excinfo.value, ChildExitError):
            assert excinfo.value.exit_code == 9
        # the survivor saw a clean rank-failure, not a hang or garbage
        assert marker.exists(), "posted recv never observed the crash"
        assert "ProcessFailedError" in marker.read_text()
        from repro.mpi.shm import list_segments

        assert list_segments("repro-mpi-") == [], "crash leaked segments"


# ---------------------------------------------------------------------------
# mphrun --backend process (true MIME: each rank its own executable)
# ---------------------------------------------------------------------------


@pytest.fixture
def program_module(tmp_path, monkeypatch):
    """A throwaway registry module importable by exec'd children (the
    module directory is prepended to PYTHONPATH, which run_exec_job
    passes through to every child)."""
    mod = tmp_path / "proc_demo_models.py"
    mod.write_text(
        textwrap.dedent(
            """
            import os

            def atm(world, env):
                print(f"atm pid {os.getpid()} rank {world.rank}", flush=True)
                return world.allreduce(1)

            def ocn(world, env):
                print(f"ocn pid {os.getpid()} rank {world.rank}", flush=True)
                return world.allreduce(1)

            def hard_exit(world, env):
                os._exit(3)

            PROGRAMS = {"atm": atm, "ocn": ocn, "hard_exit": hard_exit}
            """
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setenv(
        "PYTHONPATH",
        str(tmp_path)
        + (os.pathsep + os.environ["PYTHONPATH"] if os.environ.get("PYTHONPATH") else ""),
    )
    sys.modules.pop("proc_demo_models", None)
    yield "proc_demo_models"
    sys.modules.pop("proc_demo_models", None)


class TestMphrunProcessBackend:
    def test_mime_job_with_per_process_logs(self, program_module, tmp_path, capsys):
        log_dir = tmp_path / "logs"
        code = main(
            [
                "--spec",
                "-np 2 atm : -np 1 ocn",
                "--programs",
                program_module,
                "--backend",
                "process",
                "--log-dir",
                str(log_dir),
                "--timeout",
                "60",
            ]
        )
        assert code == 0
        assert "3 processes" in capsys.readouterr().out
        # one stdout file per rank, each holding a distinct child pid
        pids = set()
        for label in ("atm.0", "atm.1", "ocn.0"):
            text = (log_dir / f"{label}.log").read_text()
            assert label.split(".")[0] in text
            pids.add(text.split("pid ")[1].split()[0])
        assert len(pids) == 3  # genuinely separate OS processes
        assert os.getpid() not in {int(p) for p in pids}

    def test_shm_transport_flag(self, program_module, capsys):
        """--transport shm runs the exec'd MIME job over the mmap rings
        (and must leave no segment files behind)."""
        from repro.mpi.shm import list_segments

        code = main(
            [
                "--spec",
                "-np 2 atm : -np 1 ocn",
                "--programs",
                program_module,
                "--backend",
                "process",
                "--transport",
                "shm",
                "--timeout",
                "60",
            ]
        )
        assert code == 0
        assert "3 processes" in capsys.readouterr().out
        assert list_segments("repro-mpi-") == []

    def test_child_exit_code_fails_job(self, program_module, capsys):
        """Satellite: a nonzero component exit fails the whole job with
        the failing component named on stderr and exit status 1."""
        code = main(
            [
                "--spec",
                "-np 1 atm : -np 1 hard_exit",
                "--programs",
                program_module,
                "--backend",
                "process",
                "--timeout",
                "60",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "hard_exit" in err
        assert "exited with code 3" in err

    def test_thread_backend_rejects_log_dir_silently_unused(self, program_module, capsys):
        """--backend thread remains the default path (no regression)."""
        code = main(
            ["--spec", "-np 1 atm", "--programs", program_module, "--quiet"]
        )
        assert code == 0
