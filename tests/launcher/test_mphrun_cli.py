"""The ``mphrun`` command-line front-end (repro.tools.mphrun)."""

import sys
import textwrap

import pytest

from repro.tools.mphrun import build_parser, main


@pytest.fixture
def program_module(tmp_path, monkeypatch):
    """A throwaway importable module exposing a PROGRAMS registry."""
    mod = tmp_path / "cli_demo_models.py"
    mod.write_text(
        textwrap.dedent(
            """
            from repro import components_setup

            def atm(world, env):
                mph = components_setup(world, "atm", env=env)
                return f"atm local {mph.local_proc_id()}"

            def ocn(world, env):
                mph = components_setup(world, "ocn", env=env)
                return f"ocn local {mph.local_proc_id()}"

            def crashes(world, env):
                raise RuntimeError("deliberate")

            PROGRAMS = {"atm": atm, "ocn": ocn, "crashes": crashes}
            ALT = {"atm": atm, "ocn": ocn}
            """
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop("cli_demo_models", None)
    yield "cli_demo_models"
    sys.modules.pop("cli_demo_models", None)


@pytest.fixture
def registry_file(tmp_path):
    path = tmp_path / "processors_map.in"
    path.write_text("BEGIN\natm\nocn\nEND\n")
    return path


class TestSpecLaunch:
    def test_mpirun_spec(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 2 atm : -np 1 ocn",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 processes" in out and "atm" in out and "ocn" in out

    def test_cmdfile(self, program_module, registry_file, tmp_path, capsys):
        cmd = tmp_path / "job.cmd"
        cmd.write_text("atm\natm\nocn\n")
        code = main(
            [
                "--cmdfile",
                str(cmd),
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 0
        assert "atm" in capsys.readouterr().out

    def test_alternate_registry_attribute(self, program_module, registry_file):
        code = main(
            [
                "--spec",
                "-np 1 atm : -np 1 ocn",
                "--programs",
                f"{program_module}:ALT",
                "--registry",
                str(registry_file),
                "--quiet",
            ]
        )
        assert code == 0

    def test_rank_policy_and_machine(self, program_module, registry_file):
        code = main(
            [
                "--spec",
                "-np 2 atm : -np 2 ocn",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
                "--rank-policy",
                "round_robin",
                "--nodes",
                "2",
                "--cpus-per-node",
                "2",
                "--quiet",
            ]
        )
        assert code == 0

    def test_env_vars_reach_job(self, program_module, registry_file, tmp_path):
        log = tmp_path / "atm_cli.log"
        # env var is parsed and forwarded (redirect tested elsewhere)
        code = main(
            [
                "--spec",
                "-np 1 atm : -np 1 ocn",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
                "--env",
                f"MPH_LOG_ATM={log}",
                "--quiet",
            ]
        )
        assert code == 0


class TestFailures:
    def test_unknown_program(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 1 ghost",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_crashing_program(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 1 crashes",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 1
        assert "deliberate" in capsys.readouterr().err

    def test_bad_env_pair(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 1 atm : -np 1 ocn",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
                "--env",
                "NOEQUALS",
            ]
        )
        assert code == 1
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_missing_programs_attribute(self, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 1 atm",
                "--programs",
                "json:NOPE",
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 1
        assert "no attribute" in capsys.readouterr().err

    def test_bad_spec(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "four atm",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 1

    def test_oversubscribed_machine(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 4 atm : -np 1 ocn",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
                "--nodes",
                "1",
                "--cpus-per-node",
                "2",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_spec_and_cmdfile_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["--spec", "-np 1 a", "--cmdfile", "x", "--programs", "m"]
            )

    def test_launch_method_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--programs", "m"])
