"""SMP topology and the paper's allocation policy (repro.launcher.smp)."""

import pytest

from repro.errors import AllocationError
from repro.launcher.rankmap import assign_ranks
from repro.launcher.smp import CpuSlot, Machine, Placement, SmpNode


class TestSmpNode:
    def test_default_one_task_per_cpu(self):
        node = SmpNode(0, 16)
        assert node.tasks == 16
        assert node.cpus_per_task == 1

    def test_carved_node(self):
        node = SmpNode(0, 16, tasks=4)
        slots = node.task_slots()
        assert len(slots) == 4
        assert all(len(s) == 4 for s in slots)

    def test_uneven_carving_gives_remainder_to_last(self):
        node = SmpNode(0, 10, tasks=3)
        widths = [len(s) for s in node.task_slots()]
        assert widths == [3, 3, 4]
        assert sum(widths) == 10

    def test_invalid_carving_rejected(self):
        with pytest.raises(AllocationError):
            SmpNode(0, 4, tasks=5)

    def test_zero_cpus_rejected(self):
        with pytest.raises(AllocationError):
            SmpNode(0, 0)


class TestMachine:
    def test_homogeneous_constructor(self):
        m = Machine.homogeneous(3, 8)
        assert m.total_tasks == 24

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(AllocationError, match="duplicate"):
            Machine([SmpNode(0, 4), SmpNode(0, 4)])

    def test_empty_machine_rejected(self):
        with pytest.raises(AllocationError):
            Machine([])

    def test_carve_changes_task_count(self):
        """Future-work (a): a 16-cpu node carved into 4 MPI tasks."""
        m = Machine.homogeneous(2, 16)
        assert m.total_tasks == 32
        m.carve(0, 4)
        assert m.total_tasks == 20
        assert m.nodes[0].cpus_per_task == 4

    def test_carve_unknown_node(self):
        m = Machine.homogeneous(1, 4)
        with pytest.raises(AllocationError, match="no node"):
            m.carve(7, 2)


class TestPlacement:
    def test_job_fits(self):
        m = Machine.homogeneous(2, 4)
        sizes = [4, 4]
        placement = m.place(sizes, assign_ranks(sizes, "block"))
        assert len(placement.task_cpus) == 8
        placement.validate_exclusive()

    def test_oversubscription_rejected(self):
        m = Machine.homogeneous(1, 4)
        sizes = [3, 3]
        with pytest.raises(AllocationError, match="offers"):
            m.place(sizes, assign_ranks(sizes, "block"))

    def test_executables_may_share_a_node(self):
        """The paper's policy: two executables on one SMP node, different
        CPUs — allowed."""
        m = Machine.homogeneous(1, 8)
        sizes = [3, 5]
        placement = m.place(sizes, assign_ranks(sizes, "block"))
        assert placement.executables_on_node(0) == {0, 1}
        placement.validate_exclusive()  # but never the same CPU

    def test_no_cpu_shared_between_executables(self):
        m = Machine.homogeneous(2, 4)
        sizes = [4, 4]
        placement = m.place(sizes, assign_ranks(sizes, "round_robin"))
        placement.validate_exclusive()

    def test_node_of_rank(self):
        m = Machine.homogeneous(2, 4)
        sizes = [6]
        placement = m.place(sizes, assign_ranks(sizes, "block"))
        assert placement.node_of_rank(0) == 0
        assert placement.node_of_rank(5) == 1

    def test_carved_tasks_own_multiple_cpus(self):
        m = Machine.homogeneous(1, 16, tasks_per_node=4)
        sizes = [4]
        placement = m.place(sizes, assign_ranks(sizes, "block"))
        assert all(len(cpus) == 4 for cpus in placement.task_cpus)

    def test_validate_detects_double_ownership(self):
        bad = Placement(
            task_cpus=[(CpuSlot(0, 0),), (CpuSlot(0, 0),)],
            exe_of_rank=[0, 1],
        )
        with pytest.raises(AllocationError, match="owned by both"):
            bad.validate_exclusive()

    def test_rank_in_two_executables_rejected(self):
        m = Machine.homogeneous(1, 4)
        with pytest.raises(AllocationError, match="assigned to executables"):
            m.place([2, 2], [[0, 1], [1, 2]])

    def test_unassigned_rank_rejected(self):
        m = Machine.homogeneous(1, 4)
        with pytest.raises(AllocationError, match="no executable"):
            m.place([2, 2], [[0, 1], [3]])
