"""The mph-registry lint tool (repro.tools.registry_lint)."""

import pytest

from repro.core.registry import Registry
from repro.errors import ReproError
from repro.tools.registry_lint import describe_registry, main, plan_layout

GOOD = """
BEGIN
Multi_Component_Begin
atm 0 3
lnd 0 3
chm 4 5
Multi_Component_End
coupler fancy=yes
END
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "processors_map.in"
    path.write_text(GOOD)
    return path


class TestCli:
    def test_valid_file_ok(self, good_file, capsys):
        assert main([str(good_file)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "multi-component on 6 procs (overlapping)" in out
        assert "coupler" in out and "fields: fancy=yes" in out

    def test_invalid_file_reports_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.in"
        bad.write_text("BEGIN\nMulti_Component_Begin\natm 5 2\nMulti_Component_End\nEND\n")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err and ":3" in err

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.in")]) == 1

    def test_launch_plan_printed(self, good_file, capsys):
        assert main([str(good_file), "--sizes", "6,2"]) == 0
        out = capsys.readouterr().out
        assert "simulated launch (block, 8 processes)" in out
        assert "id 0  atm" in out
        assert "world ranks 6-7" in out  # the coupler

    def test_launch_plan_size_mismatch(self, good_file, capsys):
        assert main([str(good_file), "--sizes", "4,2"]) == 1
        assert "plan gives it 4" in capsys.readouterr().err

    def test_round_robin_plan(self, good_file, capsys):
        assert main([str(good_file), "--sizes", "6,2", "--rank-policy", "round_robin"]) == 0
        assert "round_robin" in capsys.readouterr().out


class TestPlanLayout:
    def test_layout_matches_runtime_handshake(self):
        """The offline plan resolves the same layout the handshake builds
        at runtime."""
        from repro import components_setup, mph_run

        registry = Registry.from_text(GOOD)
        planned = plan_layout(registry, [6, 2])

        def multi(world, env):
            mph = components_setup(world, "atm", "lnd", "chm", env=env)
            return tuple(
                (c.name, c.comp_id, c.world_ranks) for c in mph.layout.components
            )

        def coupler(world, env):
            mph = components_setup(world, "coupler", env=env)
            return None

        result = mph_run([(multi, 6), (coupler, 2)], registry=registry)
        runtime = result.values()[0]
        offline = tuple((c.name, c.comp_id, c.world_ranks) for c in planned.components)
        assert runtime == offline

    def test_wrong_size_count(self):
        registry = Registry.from_text(GOOD)
        with pytest.raises(ReproError, match="got 1 sizes"):
            plan_layout(registry, [6])

    def test_single_entry_any_size(self):
        registry = Registry.from_text("BEGIN\nsolo\nEND")
        layout = plan_layout(registry, [7])
        assert layout.component("solo").size == 7

    def test_zero_size_rejected(self):
        registry = Registry.from_text("BEGIN\nsolo\nEND")
        with pytest.raises(ReproError, match=">= 1"):
            plan_layout(registry, [0])


class TestDescribe:
    def test_instance_block_description(self):
        reg = Registry.from_text(
            "BEGIN\nMulti_Instance_Begin\nR1 0 0 in1\nR2 1 1 in2\nMulti_Instance_End\nEND"
        )
        text = describe_registry(reg)
        assert "multi-instance on 2 procs" in text
        assert "R1 locals 0..0  in1" in text

    def test_idle_processors_warned(self):
        reg = Registry.from_text(
            "BEGIN\nMulti_Component_Begin\na 0 0\nb 3 3\nMulti_Component_End\nEND"
        )
        assert "warning: local processors [1, 2]" in describe_registry(reg)


class TestReservedPsetNames:
    """Component names must not shadow the sessions layer's built-in
    ``mph://`` process sets."""

    def test_reserved_name_rejected(self, tmp_path, capsys):
        from repro.tools.registry_lint import lint_reserved_names

        bad = tmp_path / "bad.in"
        bad.write_text("BEGIN\nworld\nocean\nEND\n")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "reserved" in err and "mph://world" in err
        problems = lint_reserved_names(Registry.load("BEGIN\nworld\nocean\nEND"))
        assert len(problems) == 1 and "world" in problems[0]

    def test_reserved_name_inside_multi_component_entry(self, tmp_path, capsys):
        bad = tmp_path / "bad.in"
        bad.write_text(
            "BEGIN\nMulti_Component_Begin\natm 0 1\npool 2 3\n"
            "Multi_Component_End\nEND\n"
        )
        assert main([str(bad)]) == 1
        assert "mph://pool" in capsys.readouterr().err

    def test_ordinary_names_pass(self, good_file):
        from repro.tools.registry_lint import lint_reserved_names

        assert main([str(good_file)]) == 0
        reg = Registry.load(GOOD)
        assert lint_reserved_names(reg) == []
