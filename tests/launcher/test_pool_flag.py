"""``mphrun --pool N`` — reserve-pool processes from the command line.

PR 7 added elastic membership (``pool_session`` / ``grow`` /
``release_pool``) as a library API; the ``--pool`` flag exposes it to the
launcher: N extra world ranks run the built-in ``__pool__`` program,
which parks in ``await_assignment`` until an active component admits or
dismisses it.  The exec-backend case execs the pool ranks as their own
``mphchild`` processes — the reserve program must resolve *without* a
``--programs`` registry lookup.
"""

import os
import sys
import textwrap

import pytest

from repro.launcher.job import POOL_PROGRAM, reserve_pool_program
from repro.tools.mphrun import build_parser, main


@pytest.fixture
def program_module(tmp_path, monkeypatch):
    """Importable module whose actives drive the pool API (PYTHONPATH is
    extended so exec'd children can import it too)."""
    mod = tmp_path / "pool_demo_models.py"
    mod.write_text(
        textwrap.dedent(
            """
            from repro.core.session import components_session

            def atm(world, env):
                s = components_session(world, "atm", env=env)
                s.release_pool()
                return "atm done"

            def grower(world, env):
                s = components_session(world, "atm", env=env)
                s.grow("atm", 1)
                s.release_pool()
                return s.pset("atm").size

            PROGRAMS = {"atm": atm, "grower": grower}
            """
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setenv(
        "PYTHONPATH",
        str(tmp_path)
        + (os.pathsep + os.environ["PYTHONPATH"] if os.environ.get("PYTHONPATH") else ""),
    )
    sys.modules.pop("pool_demo_models", None)
    yield "pool_demo_models"
    sys.modules.pop("pool_demo_models", None)


@pytest.fixture
def registry_file(tmp_path):
    path = tmp_path / "processors_map.in"
    path.write_text("BEGIN\natm\nEND\n")
    return path


class TestPoolFlagThreadBackend:
    def test_pool_ranks_released(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 2 atm",
                "--pool",
                "2",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 processes" in out
        assert POOL_PROGRAM in out
        assert "'released'" in out

    def test_pool_rank_admitted_by_grow(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 2 grower",
                "--pool",
                "1",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The admitted reserve rank reports its assignment summary.
        assert "'assigned'" in out
        assert "'atm'" in out

    def test_show_assignment_includes_pool(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 1 atm",
                "--pool",
                "1",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
                "--show-assignment",
            ]
        )
        assert code == 0
        assert POOL_PROGRAM in capsys.readouterr().out


class TestPoolFlagExecBackend:
    def test_pool_rank_as_own_process(self, program_module, registry_file, tmp_path, capsys):
        """Satellite: exec backend — the reserve rank is its own exec'd
        mphchild and resolves the built-in program from its meta, not the
        --programs module."""
        log_dir = tmp_path / "logs"
        code = main(
            [
                "--spec",
                "-np 2 atm",
                "--pool",
                "1",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
                "--backend",
                "process",
                "--log-dir",
                str(log_dir),
                "--timeout",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 processes" in out
        assert "'released'" in out
        # the pool rank got its own per-process stdout log
        assert (log_dir / f"{POOL_PROGRAM}.0.log").exists()


class TestPoolFlagValidation:
    def test_pool_requires_registry(self, program_module, capsys):
        code = main(
            ["--spec", "-np 1 atm", "--pool", "1", "--programs", program_module]
        )
        assert code == 1
        assert "--registry" in capsys.readouterr().err

    def test_negative_pool_rejected(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                "-np 1 atm",
                "--pool",
                "-2",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 1
        assert "non-negative" in capsys.readouterr().err

    def test_reserved_program_name_rejected(self, program_module, registry_file, capsys):
        code = main(
            [
                "--spec",
                f"-np 1 {POOL_PROGRAM}",
                "--pool",
                "1",
                "--programs",
                program_module,
                "--registry",
                str(registry_file),
            ]
        )
        assert code == 1
        assert "reserved" in capsys.readouterr().err

    def test_parser_default_is_zero(self):
        args = build_parser().parse_args(["--spec", "-np 1 a", "--programs", "m"])
        assert args.pool == 0

    def test_pool_program_is_exported(self):
        assert callable(reserve_pool_program)
