"""The file-driven launch demo (examples/launch_files) end to end via the
CLI — the original MPH distribution's 'testing codes and run scripts'."""

import sys
from pathlib import Path

import pytest

from repro.tools.mphrun import main as mphrun_main
from repro.tools.registry_lint import main as lint_main

DEMO = Path(__file__).resolve().parent.parent.parent / "examples" / "launch_files"


@pytest.fixture
def demo_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(DEMO))
    sys.modules.pop("models", None)
    yield
    sys.modules.pop("models", None)


class TestLaunchFilesDemo:
    def test_files_present(self):
        for name in ("models.py", "processors_map.in", "job.cmd", "README.md"):
            assert (DEMO / name).exists()

    def test_cmdfile_run(self, demo_on_path, capsys):
        code = mphrun_main(
            [
                "--cmdfile",
                str(DEMO / "job.cmd"),
                "--programs",
                "models",
                "--registry",
                str(DEMO / "processors_map.in"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "8 processes, 4 executables" in out
        assert "coupler saw ['atmosphere', 'land', 'ocean']" in out

    def test_round_robin_gives_same_component_results(self, demo_on_path, capsys):
        code = mphrun_main(
            [
                "--cmdfile",
                str(DEMO / "job.cmd"),
                "--programs",
                "models",
                "--registry",
                str(DEMO / "processors_map.in"),
                "--rank-policy",
                "round_robin",
            ]
        )
        assert code == 0
        assert "'ack ocean'" in capsys.readouterr().out

    def test_registry_lint_preview(self, capsys):
        code = lint_main([str(DEMO / "processors_map.in"), "--sizes", "4,2,1,1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out and "id 3  coupler" in out
