"""Rank-assignment policies (repro.launcher.rankmap)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LaunchError
from repro.launcher.rankmap import POLICIES, assign_ranks, executable_of_rank


class TestBlockPolicy:
    def test_contiguous_blocks(self):
        assert assign_ranks([4, 2, 3], "block") == [[0, 1, 2, 3], [4, 5], [6, 7, 8]]

    def test_single_executable(self):
        assert assign_ranks([5], "block") == [[0, 1, 2, 3, 4]]

    def test_size_one_executables(self):
        assert assign_ranks([1, 1, 1], "block") == [[0], [1], [2]]


class TestRoundRobinPolicy:
    def test_cyclic_dealing(self):
        # ranks dealt 0->exe0, 1->exe1, 2->exe0, 3->exe1, ...
        assert assign_ranks([2, 2], "round_robin") == [[0, 2], [1, 3]]

    def test_uneven_sizes_skip_full(self):
        out = assign_ranks([3, 1], "round_robin")
        assert out == [[0, 2, 3], [1]]

    def test_each_rank_exactly_once(self):
        out = assign_ranks([3, 5, 2], "round_robin")
        all_ranks = sorted(r for ranks in out for r in ranks)
        assert all_ranks == list(range(10))

    def test_local_indices_ascend_with_world_rank(self):
        for ranks in assign_ranks([4, 3, 5], "round_robin"):
            assert ranks == sorted(ranks)


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(LaunchError, match="unknown rank-assignment policy"):
            assign_ranks([2], "fancy")

    def test_zero_size_rejected(self):
        with pytest.raises(LaunchError, match=">= 1"):
            assign_ranks([2, 0], "block")

    def test_policies_constant(self):
        assert set(POLICIES) == {"block", "round_robin"}


class TestInversion:
    def test_executable_of_rank(self):
        assignment = assign_ranks([2, 3], "block")
        assert executable_of_rank(assignment, 0) == (0, 0)
        assert executable_of_rank(assignment, 3) == (1, 1)

    def test_unassigned_rank_rejected(self):
        with pytest.raises(LaunchError):
            executable_of_rank([[0, 1]], 5)


sizes_strategy = st.lists(st.integers(1, 6), min_size=1, max_size=5)


class TestPolicyProperties:
    @given(sizes=sizes_strategy, policy=st.sampled_from(POLICIES))
    def test_partition_property(self, sizes, policy):
        """Every assignment is a partition of 0..N-1 with correct sizes."""
        out = assign_ranks(sizes, policy)
        assert [len(ranks) for ranks in out] == sizes
        flat = sorted(r for ranks in out for r in ranks)
        assert flat == list(range(sum(sizes)))

    @given(sizes=sizes_strategy, policy=st.sampled_from(POLICIES))
    def test_local_order_is_world_order(self, sizes, policy):
        for ranks in assign_ranks(sizes, policy):
            assert list(ranks) == sorted(ranks)

    @given(sizes=sizes_strategy, policy=st.sampled_from(POLICIES))
    def test_inversion_consistent(self, sizes, policy):
        assignment = assign_ranks(sizes, policy)
        for exe, ranks in enumerate(assignment):
            for local, world in enumerate(ranks):
                assert executable_of_rank(assignment, world) == (exe, local)
