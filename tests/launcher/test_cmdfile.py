"""MPMD launch-spec parsing (repro.launcher.cmdfile)."""

import pytest

from repro.errors import LaunchError
from repro.launcher.cmdfile import (
    ExecutableSpec,
    parse_mpirun_spec,
    parse_poe_cmdfile,
    resolve_programs,
)


class TestPoeCmdfile:
    def test_one_line_per_task_grouped(self):
        specs = parse_poe_cmdfile("atm\natm\natm\nocn\n")
        assert [(s.program, s.nprocs) for s in specs] == [("atm", 3), ("ocn", 1)]

    def test_interleaved_programs_not_merged(self):
        specs = parse_poe_cmdfile("atm\nocn\natm\n")
        assert [(s.program, s.nprocs) for s in specs] == [("atm", 1), ("ocn", 1), ("atm", 1)]

    def test_arguments_preserved(self):
        specs = parse_poe_cmdfile("ocn -fast -v\nocn -fast -v\n")
        assert specs == [ExecutableSpec("ocn", 2, ("-fast", "-v"))]

    def test_different_args_split_groups(self):
        specs = parse_poe_cmdfile("ocn -a\nocn -b\n")
        assert [(s.program, s.nprocs, s.argv) for s in specs] == [
            ("ocn", 1, ("-a",)),
            ("ocn", 1, ("-b",)),
        ]

    def test_comments_and_blank_lines_ignored(self):
        specs = parse_poe_cmdfile("! the job\natm\n\n# trailing comment\natm  ! inline\n")
        assert specs == [ExecutableSpec("atm", 2)]

    def test_empty_cmdfile_rejected(self):
        with pytest.raises(LaunchError, match="no tasks"):
            parse_poe_cmdfile("! nothing here\n")


class TestMpirunSpec:
    def test_colon_segments(self):
        specs = parse_mpirun_spec("-np 16 atm : -np 8 ocn")
        assert [(s.program, s.nprocs) for s in specs] == [("atm", 16), ("ocn", 8)]

    def test_args_after_program(self):
        specs = parse_mpirun_spec("-np 2 cpl --log debug")
        assert specs[0].argv == ("--log", "debug")

    def test_dash_n_alias(self):
        assert parse_mpirun_spec("-n 4 atm")[0].nprocs == 4

    def test_missing_np_rejected(self):
        with pytest.raises(LaunchError, match="-np"):
            parse_mpirun_spec("atm : -np 2 ocn")

    def test_bad_count_rejected(self):
        with pytest.raises(LaunchError, match="bad process count"):
            parse_mpirun_spec("-np four atm")

    def test_incomplete_segment_rejected(self):
        with pytest.raises(LaunchError, match="needs"):
            parse_mpirun_spec("-np 4")

    def test_empty_segment_rejected(self):
        with pytest.raises(LaunchError, match="empty segment"):
            parse_mpirun_spec("-np 2 atm : ")


class TestExecutableSpec:
    def test_zero_procs_rejected(self):
        with pytest.raises(LaunchError, match=">= 1"):
            ExecutableSpec("atm", 0)

    def test_empty_program_rejected(self):
        with pytest.raises(LaunchError, match="program name"):
            ExecutableSpec("", 2)


class TestResolvePrograms:
    def test_binding(self):
        def atm(world, env):
            return None

        fns = resolve_programs([ExecutableSpec("atm", 2)], {"atm": atm})
        assert fns == [atm]

    def test_missing_program_names_alternatives(self):
        with pytest.raises(LaunchError, match="'ocn' not found.*atm"):
            resolve_programs([ExecutableSpec("ocn", 1)], {"atm": lambda w, e: None})
