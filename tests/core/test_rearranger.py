"""The MCT-style parallel rearranger (repro.core.rearranger)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import components_setup, mph_run
from repro.core.rearranger import Rearranger, overlap_schedule
from repro.errors import MPHError

REG = "BEGIN\nalpha\nbeta\nEND"


class TestOverlapSchedule:
    def test_identity_decomposition(self):
        assert overlap_schedule(8, 2, 2) == [(0, 0, 0, 4), (1, 1, 4, 8)]

    def test_refinement(self):
        sched = overlap_schedule(8, 2, 4)
        assert sched == [(0, 0, 0, 2), (0, 1, 2, 4), (1, 2, 4, 6), (1, 3, 6, 8)]

    def test_misaligned_blocks(self):
        sched = overlap_schedule(10, 3, 2)
        # src blocks: 0-3, 4-6, 7-9; dst blocks: 0-4, 5-9
        assert sched == [(0, 0, 0, 4), (1, 0, 4, 5), (1, 1, 5, 7), (2, 1, 7, 10)]

    @given(
        nrows=st.integers(1, 60),
        src=st.integers(1, 6),
        dst=st.integers(1, 6),
    )
    @settings(max_examples=60)
    def test_partition_property(self, nrows, src, dst):
        """Every schedule covers each row exactly once."""
        if nrows < max(src, dst):
            return
        sched = overlap_schedule(nrows, src, dst)
        covered = np.zeros(nrows, dtype=int)
        for s, d, lo, hi in sched:
            covered[lo:hi] += 1
        assert np.all(covered == 1)


def rearrange_job(n_alpha, n_beta, nrows, ncols=3, **kw):
    """alpha holds a row-identified field; route it to beta and report."""

    def alpha(world, env):
        mph = components_setup(world, "alpha", env=env)
        r = Rearranger(mph, "alpha", "beta", nrows, ncols)
        start, stop = r.src_rows
        block = np.arange(start, stop, dtype=float)[:, None] * np.ones(ncols)
        out = r(block)
        assert out is None  # alpha is not a destination member
        return (start, stop)

    def beta(world, env):
        mph = components_setup(world, "beta", env=env)
        r = Rearranger(mph, "alpha", "beta", nrows, ncols)
        out = r(None)
        start, stop = r.dst_rows
        return (start, stop, out[:, 0].tolist())

    return mph_run([(alpha, n_alpha), (beta, n_beta)], registry=REG, **kw)


class TestRearrangement:
    @pytest.mark.parametrize("n_alpha,n_beta", [(1, 1), (2, 3), (4, 2), (3, 3)])
    def test_rows_arrive_at_new_owners(self, n_alpha, n_beta):
        nrows = 12
        result = rearrange_job(n_alpha, n_beta, nrows)
        for start, stop, values in result.by_executable(1):
            assert values == [float(r) for r in range(start, stop)]

    def test_roundtrip_identity(self):
        """A -> B -> A returns the original field exactly."""
        nrows, ncols = 10, 2

        def alpha(world, env):
            mph = components_setup(world, "alpha", env=env)
            fwd = Rearranger(mph, "alpha", "beta", nrows, ncols, tag=951_000)
            back = Rearranger(mph, "beta", "alpha", nrows, ncols, tag=952_000)
            start, stop = fwd.src_rows
            block = np.random.default_rng(start).normal(size=(stop - start, ncols))
            fwd(block)
            returned = back(None)
            return np.array_equal(returned, block)

        def beta(world, env):
            mph = components_setup(world, "beta", env=env)
            fwd = Rearranger(mph, "alpha", "beta", nrows, ncols, tag=951_000)
            back = Rearranger(mph, "beta", "alpha", nrows, ncols, tag=952_000)
            got = fwd(None)
            back(got)
            return True

        result = mph_run([(alpha, 3), (beta, 2)], registry=REG)
        assert all(result.by_executable(0))

    def test_self_repartition(self):
        """src == dst component: a repartition onto itself is identity."""

        def alpha(world, env):
            mph = components_setup(world, "alpha", env=env)
            r = Rearranger(mph, "alpha", "alpha", 8, 2)
            start, stop = r.src_rows
            block = np.full((stop - start, 2), float(world.rank))
            out = r(block)
            return np.array_equal(out, block)

        def beta(world, env):
            components_setup(world, "beta", env=env)
            return True

        result = mph_run([(alpha, 2), (beta, 1)], registry=REG)
        assert all(result.by_executable(0))

    def test_overlapping_components(self):
        """Components sharing processors route through self-sends."""
        reg = """
BEGIN
Multi_Component_Begin
src 0 1
dst 0 2
Multi_Component_End
END
"""

        def program(world, env):
            mph = components_setup(world, "src", "dst", env=env)
            r = Rearranger(mph, "src", "dst", 6, 1)
            block = None
            if mph.in_component("src"):
                start, stop = r.src_rows
                block = np.arange(start, stop, dtype=float)[:, None]
            out = r(block)
            if out is None:
                return None
            start, stop = r.dst_rows
            return out[:, 0].tolist() == [float(x) for x in range(start, stop)]

        result = mph_run([(program, 3)], registry=reg)
        assert result.values() == [True, True, True]

    def test_wrong_block_shape(self):
        def alpha(world, env):
            mph = components_setup(world, "alpha", env=env)
            r = Rearranger(mph, "alpha", "beta", 8, 2)
            r(np.zeros((1, 1)))

        def beta(world, env):
            mph = components_setup(world, "beta", env=env)
            Rearranger(mph, "alpha", "beta", 8, 2)(None)

        with pytest.raises(MPHError, match="source block shape"):
            mph_run([(alpha, 2), (beta, 1)], registry=REG)

    def test_source_must_pass_block(self):
        def alpha(world, env):
            mph = components_setup(world, "alpha", env=env)
            Rearranger(mph, "alpha", "beta", 8, 2)(None)

        def beta(world, env):
            mph = components_setup(world, "beta", env=env)
            Rearranger(mph, "alpha", "beta", 8, 2)(None)

        with pytest.raises(MPHError, match="must pass its block"):
            mph_run([(alpha, 2), (beta, 1)], registry=REG)

    def test_too_few_rows(self):
        def alpha(world, env):
            mph = components_setup(world, "alpha", env=env)
            Rearranger(mph, "alpha", "beta", 1, 2)

        def beta(world, env):
            mph = components_setup(world, "beta", env=env)
            Rearranger(mph, "alpha", "beta", 1, 2)

        with pytest.raises(MPHError, match="block-decompose"):
            mph_run([(alpha, 2), (beta, 1)], registry=REG)


class TestMessageEconomy:
    def test_direct_routing_beats_root_funnel(self):
        """The router moves Θ(overlaps) messages; the rank-0 funnel moves
        gather(P_src-1) + point-to-point + scatter(P_dst-1) *plus* the
        whole field twice through one process.  Verified with the
        substrate's traffic accounting."""
        from repro.launcher.job import MpmdJob

        nrows, ncols = 16, 4

        def route(world, env):
            mph = components_setup(world, "alpha", env=env)
            r = Rearranger(mph, "alpha", "beta", nrows, ncols)
            start, stop = r.src_rows
            r(np.zeros((stop - start, ncols)))
            return None

        def accept(world, env):
            mph = components_setup(world, "beta", env=env)
            Rearranger(mph, "alpha", "beta", nrows, ncols)(None)
            return None

        job = MpmdJob([(route, 4), (accept, 4)], registry=REG)
        result = job.run()
        # 4x4 aligned blocks -> exactly 4 routed messages beyond handshake
        # traffic; we assert the schedule size directly:
        assert len(overlap_schedule(nrows, 4, 4)) == 4
        assert len(overlap_schedule(nrows, 4, 3)) == 6  # misaligned worst case


class TestCachedSchedule:
    def test_message_count_reuses_init_schedule(self):
        """message_count() must read the schedule stored at construction,
        not recompute it."""
        import repro.core.rearranger as rearranger_mod

        def alpha(world, env):
            mph = components_setup(world, "alpha", env=env)
            r = Rearranger(mph, "alpha", "alpha", 8, 2)
            expected = len(overlap_schedule(8, 1, 1))
            original = rearranger_mod.overlap_schedule

            def boom(*a, **k):
                raise AssertionError("schedule recomputed after __init__")

            rearranger_mod.overlap_schedule = boom
            try:
                count = r.message_count()
            finally:
                rearranger_mod.overlap_schedule = original
            return count == expected

        result = mph_run([(alpha, 1)], registry="BEGIN\nalpha\nEND")
        assert result.values() == [True]


class TestFastpathAblation:
    """The buffer fast path and the legacy pickled path route identically."""

    @pytest.mark.parametrize("n_alpha,n_beta", [(2, 3), (4, 2)])
    def test_flag_off_matches_flag_on(self, n_alpha, n_beta):
        from repro.mpi.world import WorldConfig

        nrows = 12
        outs = {}
        for on in (True, False):
            result = rearrange_job(
                n_alpha, n_beta, nrows, config=WorldConfig(rearranger_fastpath=on)
            )
            outs[on] = sorted(result.by_executable(1))
        assert outs[True] == outs[False]

    def test_fastpath_uses_buffer_transport(self):
        """With the flag on, routed traffic travels buffer-mode (no
        pickles); with it off, object-mode."""
        from repro.mpi.world import WorldConfig

        def job(on):
            def alpha(world, env):
                mph = components_setup(world, "alpha", env=env)
                r = Rearranger(mph, "alpha", "beta", 8, 2)
                before = world.world.traffic_snapshot()
                start, stop = r.src_rows
                r(np.zeros((stop - start, 2)))
                # Sends are recorded at delivery time, inside r(); only
                # routed traffic moves in this window.
                return world.world.traffic_snapshot().since(before).by_kind

            def beta(world, env):
                mph = components_setup(world, "beta", env=env)
                Rearranger(mph, "alpha", "beta", 8, 2)(None)
                return None

            result = mph_run(
                [(alpha, 2), (beta, 2)],
                registry=REG,
                config=WorldConfig(rearranger_fastpath=on),
            )
            return result.by_executable(0)[0]

        assert job(True).get("buffer", 0) > 0 and job(True).get("object", 0) == 0
        assert job(False).get("object", 0) > 0 and job(False).get("buffer", 0) == 0

    def test_profile_counts_bytes_on_both_paths(self):
        from repro.mpi.world import WorldConfig

        def run(on):
            def alpha(world, env):
                mph = components_setup(world, "alpha", env=env)
                r = Rearranger(mph, "alpha", "beta", 8, 2)
                start, stop = r.src_rows
                r(np.zeros((stop - start, 2)))
                return (
                    dict(mph.profile.sent),
                    mph.profile.total_bytes_sent,
                )

            def beta(world, env):
                mph = components_setup(world, "beta", env=env)
                Rearranger(mph, "alpha", "beta", 8, 2)(None)
                mph_local = mph
                return (
                    dict(mph_local.profile.received),
                    mph_local.profile.total_bytes_received,
                )

            return mph_run(
                [(alpha, 1), (beta, 1)],
                registry=REG,
                config=WorldConfig(rearranger_fastpath=on),
            )

        for on in (True, False):
            result = run(on)
            sent, sent_bytes = result.by_executable(0)[0]
            received, recv_bytes = result.by_executable(1)[0]
            assert sent == {"beta": 1} and received == {"alpha": 1}
            assert sent_bytes > 0 and recv_bytes > 0
