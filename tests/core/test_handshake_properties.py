"""Property-based handshake tests: random registries, derived launches,
layout invariants.

Strategy: generate a random valid registration file (a mix of single-
component, multi-component — possibly overlapping — and multi-instance
entries), derive the matching launch command from it, run the job, and
assert the invariants the handshake must always deliver.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import components_setup, mph_run, multi_instance
from repro.core.registry import (
    ComponentSpec,
    MultiComponentEntry,
    MultiInstanceEntry,
    Registry,
    SingleComponentEntry,
)

# -- registry generation -------------------------------------------------------

@st.composite
def _entry(draw, names, kind):
    if kind == "single":
        return SingleComponentEntry(ComponentSpec(names[0])), draw(st.integers(1, 3))
    if kind == "multi":
        specs = []
        cursor = 0
        for name in names:
            overlap = cursor > 0 and draw(st.booleans())
            low = 0 if overlap else cursor
            width = draw(st.integers(1, 2))
            specs.append(ComponentSpec(name, low, low + width - 1))
            cursor = max(cursor, low + width)
        return MultiComponentEntry(tuple(specs)), cursor
    # instance block: names share a prefix by construction
    specs = []
    cursor = 0
    for name in names:
        width = draw(st.integers(1, 2))
        specs.append(ComponentSpec(name, cursor, cursor + width - 1))
        cursor += width
    return MultiInstanceEntry(tuple(specs)), cursor


@st.composite
def _scenario(draw):
    """A (registry, executables) pair derived together."""
    n_entries = draw(st.integers(1, 3))
    entries = []
    launch = []  # (kind, decl, nprocs)
    used = 0
    for i in range(n_entries):
        kind = draw(st.sampled_from(["single", "multi", "instance"]))
        count = 1 if kind == "single" else draw(st.integers(1, 3))
        names = [f"e{i}n{j}" for j in range(count)]
        if kind == "instance":
            prefix = f"e{i}n"
            names = [f"{prefix}{j}" for j in range(count)]
        entry, nprocs = draw(_entry(names, kind))
        entries.append(entry)
        if kind == "instance":
            launch.append(("instance", f"e{i}n", nprocs))
        else:
            launch.append(("components", tuple(names), nprocs))
        used += nprocs
    return Registry(entries), launch


def _reporter_for(kind, decl):
    if kind == "instance":

        def program(world, env):
            mph = multi_instance(world, decl, env=env)
            return _snapshot(mph)

        program.__name__ = f"inst_{decl}"
        return program

    def program(world, env):
        mph = components_setup(world, *decl, env=env)
        return _snapshot(mph)

    program.__name__ = "c_" + "_".join(decl)
    return program


def _snapshot(mph):
    return {
        "names": mph.comp_names(),
        "world_rank": mph.global_proc_id(),
        "exe_id": mph.exe_id(),
        "exe_limits": (mph.exe_low_proc_limit(), mph.exe_up_proc_limit()),
        "total": mph.total_components(),
        "locals": {n: mph.local_proc_id(n) for n in mph.comp_names()},
        "layout": tuple(
            (c.name, c.comp_id, c.exe_id, c.world_ranks) for c in mph.layout.components
        ),
        "comm_sizes": {n: mph.component_comm(n).size for n in mph.comp_names()},
    }


class TestHandshakeInvariants:
    @given(_scenario())
    @settings(max_examples=20, deadline=None)
    def test_invariants(self, scenario):
        registry, launch = scenario
        executables = [
            (_reporter_for(kind, decl), nprocs) for kind, decl, nprocs in launch
        ]
        result = mph_run(executables, registry=registry)
        views = result.values()

        # 1. Every process computed the identical layout and total count.
        layouts = {v["layout"] for v in views}
        assert len(layouts) == 1
        assert {v["total"] for v in views} == {registry.total_components}

        layout = views[0]["layout"]
        by_name = {name: (comp_id, exe_id, ranks) for name, comp_id, exe_id, ranks in layout}

        # 2. Component ids are dense and follow registry order.
        assert [cid for _, cid, _, _ in layout] == list(range(len(layout)))
        assert [n for n, _, _, _ in layout] == list(registry.component_names)

        # 3. Communicator size equals the layout size for every membership,
        #    and local ranks are consistent with the world-rank order.
        for v in views:
            for name in v["names"]:
                _, _, ranks = by_name[name]
                assert v["comm_sizes"][name] == len(ranks)
                assert ranks[v["locals"][name]] == v["world_rank"]

        # 4. Executable limits bound each member's world rank.
        for v in views:
            low, up = v["exe_limits"]
            assert low <= v["world_rank"] <= up

        # 5. Every world rank of every component actually reported being in
        #    that component.
        member_of = {}
        for v in views:
            for name in v["names"]:
                member_of.setdefault(name, set()).add(v["world_rank"])
        for name, comp_id, exe_id, ranks in layout:
            assert member_of.get(name, set()) == set(ranks)

    @given(_scenario())
    @settings(max_examples=10, deadline=None)
    def test_rank_policy_invariance(self, scenario):
        """The resolved layout (names, sizes, local ids) is invariant to
        the launcher's rank-assignment policy — world ranks differ, the
        component structure does not."""
        registry, launch = scenario
        executables = [
            (_reporter_for(kind, decl), nprocs) for kind, decl, nprocs in launch
        ]
        block = mph_run(executables, registry=registry, rank_policy="block")
        cyclic = mph_run(executables, registry=registry, rank_policy="round_robin")
        for exe in range(len(launch)):
            b = [(v["names"], v["locals"]) for v in block.by_executable(exe)]
            c = [(v["names"], v["locals"]) for v in cyclic.by_executable(exe)]
            assert b == c
