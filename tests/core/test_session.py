"""Sessions layer: pset lookup, lazy communicator derivation, and elastic
membership (grow / retire / pool release / shrink-then-resurrect).

The lifecycle cases run on both execution backends via the
``backend_config`` fixture — on the process backend a ``retire`` is a
real OS process leaving a live job, which is what exercises the
transport-side peer invalidation (cached sockets, shm rings, page
holds).  The fault-driven and schedule-sweep cases are thread-backend
only: the process backend rejects fault/match schedules by design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mph_run
from repro.core.ensemble import EnsembleCollector, EnsembleMember
from repro.core.session import (
    Session,
    components_session,
    instance_session,
    pool_session,
)
from repro.errors import ProcessFailedError, SessionError
from repro.mpi.faults import SimulatedCrash

REG = "BEGIN\natm\nocn\nEND"


class TestPsetCatalog:
    """Pset lookup and lazy derivation — collective only over members."""

    def test_catalog_lookup_and_lazy_comms(self, backend_config):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            names = s.psets()
            assert "mph://world" in names
            assert "mph://component/atm" in names
            assert "mph://component/ocn" in names
            assert "mph://self" in names

            # Shorthand resolution: bare component name, component/ path,
            # and the full URI all land on the same pset.
            ps = s.pset("atm")
            assert ps.name == "mph://component/atm"
            assert s.pset("component/atm").members == ps.members
            assert s.pset("mph://component/atm").members == ps.members
            assert ps.size == 2 and ps.epoch == 0

            with pytest.raises(SessionError, match="unknown process set"):
                s.pset("mph://component/nope")
            # Members only: this process is not in ocn's pset.
            with pytest.raises(SessionError, match="not a member"):
                s.comm("ocn")

            # Lazy derivation + caching: same epoch, same object.
            comm = s.comm("atm")
            assert comm is s.comm("atm")
            assert comm.size == 2
            assert comm.name == "MPH:atm"
            me = s.comm("mph://self")
            assert me.size == 1
            return ("atm", comm.allreduce(1), tuple(sorted(names)))

        def ocn(world, env):
            s = components_session(world, "ocn", env=env)
            comm = s.comm("ocn")
            return ("ocn", comm.size, s.pset("world").size)

        result = mph_run(
            [(atm, 2), (ocn, 2)], registry=REG, config=backend_config, timeout=120.0
        )
        atm_views = result.by_executable(0)
        assert atm_views[0][1] == 2
        assert atm_views[0][2] == atm_views[1][2]
        assert result.by_executable(1)[0] == ("ocn", 2, 4)

    def test_world_pset_is_active_world(self, backend_config):
        def solo(world, env):
            s = components_session(world, "atm", env=env)
            assert s.pset("world").members == tuple(range(world.size))
            assert s.epoch == 0 and s.is_active and not s.is_retired
            return s.comm("world").allreduce(world.rank)

        def ocn(world, env):
            s = components_session(world, "ocn", env=env)
            return s.comm("world").allreduce(world.rank)

        result = mph_run(
            [(solo, 2), (ocn, 1)], registry=REG, config=backend_config, timeout=120.0
        )
        assert set(result.values()) == {0 + 1 + 2}


class TestElasticGrow:
    """grow(): reserve processes join a component; comms stay lazy."""

    def test_grow_then_comm_join(self, backend_config):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            mph = s.mph(env=env)
            gid = mph.global_proc_id()
            assert s.pset("ocn").size == 1

            grown = s.grow("ocn", 1)
            assert grown == ("ocn",)
            assert s.epoch == 1
            assert s.pset("ocn").size == 2

            mph2 = s.mph(env=env)
            assert mph2.component_size("ocn") == 2
            assert mph2.global_proc_id() == gid  # ids stable across epochs
            if mph2.local_proc_id() == 0:
                mph2.send({"welcome": True}, "ocn", 1, tag=5)
            joined = mph2.comm_join("atm", "ocn")
            total = joined.allreduce(1)
            s.release_pool()
            return ("atm", total)

        def ocn(world, env):
            s = components_session(world, "ocn", env=env)
            s.mph(env=env)
            s.grow("ocn", 1)
            mph2 = s.mph(env=env)
            joined = mph2.comm_join("atm", "ocn")
            total = joined.allreduce(1)
            s.release_pool()
            return ("ocn", total, mph2.local_proc_id())

        def spare(world, env):
            s = pool_session(world, env=env)
            assignment = s.await_assignment()
            if assignment is None:
                return ("released", s.epoch)
            assert assignment.components == ("ocn",)
            mph = s.mph(env=env)
            got = mph.recv("atm", 0, tag=5)
            joined = mph.comm_join("atm", "ocn")
            total = joined.allreduce(1)
            return ("joined", mph.comp_name(), mph.local_proc_id(), got, total)

        result = mph_run(
            [(atm, 2), (ocn, 1), (spare, 2)],
            registry=REG,
            config=backend_config,
            timeout=120.0,
        )
        assert result.by_executable(0)[0] == ("atm", 4)
        assert result.by_executable(1)[0] == ("ocn", 4, 0)
        spares = result.by_executable(2)
        # First pool process (lowest world id) is admitted; the other is
        # dismissed by release_pool after two transitions (grow, release).
        assert spares[0] == ("joined", "ocn", 1, {"welcome": True}, 4)
        assert spares[1] == ("released", 2)

    def test_grow_needs_pool(self, backend_config):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            with pytest.raises(SessionError, match="reserve"):
                s.grow("atm", 1)
            with pytest.raises(SessionError, match="positive"):
                s.grow("atm", 0)
            return "ok"

        def ocn(world, env):
            components_session(world, "ocn", env=env)
            return "ok"

        result = mph_run(
            [(atm, 1), (ocn, 1)], registry=REG, config=backend_config, timeout=120.0
        )
        assert result.values() == ["ok", "ok"]


class TestElasticRetire:
    """retire(): processes leave cleanly; survivors' transports forget them."""

    def test_retire_then_collective(self, backend_config):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            mph = s.mph(env=env)
            leaving = s.pset("ocn").members[-1]
            retired = s.retire([leaving])
            assert retired == ()  # ocn keeps one process
            assert s.epoch == 1
            assert s.pset("world").size == 3
            mph2 = s.mph(env=env)
            assert mph2.component_size("ocn") == 1
            total = mph2.global_world.allreduce(1)
            # messaging to the survivor still resolves by name
            if mph2.local_proc_id() == 0:
                mph2.send("post-retire", "ocn", 0, tag=11)
            return ("atm", total, mph.global_proc_id() == mph2.global_proc_id())

        def ocn(world, env):
            s = components_session(world, "ocn", env=env)
            s.mph(env=env)
            leaving = s.pset("ocn").members[-1]
            s.retire([leaving])
            if s.is_retired:
                assert not s.is_active
                with pytest.raises(SessionError, match="retired"):
                    s.retire([0])
                return ("retired",)
            mph2 = s.mph(env=env)
            total = mph2.global_world.allreduce(1)
            got = mph2.recv("atm", 0, tag=11)
            return ("ocn", total, got)

        result = mph_run(
            [(atm, 2), (ocn, 2)], registry=REG, config=backend_config, timeout=120.0
        )
        assert result.by_executable(0)[0] == ("atm", 3, True)
        ocn_views = result.by_executable(1)
        assert ocn_views[0] == ("ocn", 3, "post-retire")
        assert ocn_views[1] == ("retired",)

    def test_retire_validations(self, backend_config):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            with pytest.raises(SessionError, match="every active"):
                s.retire(range(world.size))
            with pytest.raises(SessionError, match="non-active"):
                s.retire([world.size + 7])
            return "ok"

        def ocn(world, env):
            components_session(world, "ocn", env=env)
            return "ok"

        result = mph_run(
            [(atm, 1), (ocn, 1)], registry=REG, config=backend_config, timeout=120.0
        )
        assert result.values() == ["ok", "ok"]


class TestPoolRelease:
    def test_release_dismisses_all_spares(self, backend_config):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            assert s.pset("pool").size == 2
            s.release_pool()
            assert s.pset("pool").size == 0
            s.release_pool()  # idempotent no-op on an empty pool
            return "ok"

        def ocn(world, env):
            s = components_session(world, "ocn", env=env)
            s.release_pool()
            s.release_pool()
            return "ok"

        def spare(world, env):
            s = pool_session(world, env=env)
            assert s.await_assignment() is None
            assert not s.is_active
            return ("released", s.epoch)

        result = mph_run(
            [(atm, 1), (ocn, 1), (spare, 2)],
            registry=REG,
            config=backend_config,
            timeout=120.0,
        )
        assert result.by_executable(2) == [("released", 1), ("released", 1)]


class TestShrinkThenGrow:
    """Satellite: epoch-aware rehandshake — an unplanned shrink followed by
    a grow() resurrects the dead component with stable original ids."""

    def test_resurrect_dead_component(self):
        reg = "BEGIN\natmosphere\nocean\nEND"

        def atm(world, env):
            s = components_session(world, "atmosphere", env=env)
            mph = s.mph(env=env)
            original = mph.global_proc_id()
            try:
                while True:
                    mph.recv("ocean", 0, tag=7)
            except ProcessFailedError:
                mph.global_world.revoke()
            newly_dead = s.shrink()
            assert newly_dead == ("ocean",)
            assert s.dead_components == ("ocean",)
            mph2 = s.mph(env=env)
            assert mph2.dead_components == ("ocean",)
            assert mph2.global_proc_id() == original

            grown = s.grow("ocean", 1)
            assert grown == ("ocean",)
            assert s.dead_components == ()
            assert s.retired_components == ()
            mph3 = s.mph(env=env)
            assert mph3.dead_components == ()
            assert mph3.global_proc_id() == original
            assert mph3.component_size("ocean") == 1
            if mph3.local_proc_id() == 0:
                mph3.send({"hello": 1}, "ocean", 0, tag=9)
            total = mph3.global_world.allreduce(1)
            return ("ok", total)

        def ocn(world, env):
            components_session(world, "ocean", env=env)
            raise SimulatedCrash("ocean dies")

        def spare(world, env):
            s = pool_session(world, env=env)
            assignment = s.await_assignment()
            assert assignment is not None
            assert assignment.components == ("ocean",)
            mph = s.mph(env=env)
            assert mph.comp_name() == "ocean"
            got = mph.recv("atmosphere", 0, tag=9)
            total = mph.global_world.allreduce(1)
            return ("resurrected", got, total)

        result = mph_run([(atm, 3), (ocn, 1), (spare, 1)], registry=reg, timeout=90.0)
        for r in result.procs[:3]:
            assert r.exception is None, r.exception
            assert r.value == ("ok", 4)
        assert isinstance(result.procs[3].exception, SimulatedCrash)
        assert result.procs[4].value == ("resurrected", {"hello": 1}, 4)


class TestScheduleSweep:
    """grow/retire transitions are deterministic under an armed
    MatchSchedule: every seed produces the identical membership history."""

    def test_grow_retire_schedule_independent(self, sweep_config):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            s.mph(env=env)
            s.grow("ocn", 1)
            mph2 = s.mph(env=env)
            if mph2.local_proc_id() == 0:
                mph2.send(("gift", s.epoch), "ocn", 1, tag=13)
            leaving = s.pset("ocn").members[0]
            s.retire([leaving])
            mph3 = s.mph(env=env)
            history = (
                s.epoch,
                s.pset("world").members,
                s.pset("ocn").members,
            )
            return ("atm", mph3.global_world.allreduce(1), history)

        def ocn(world, env):
            s = components_session(world, "ocn", env=env)
            s.mph(env=env)
            s.grow("ocn", 1)
            s.mph(env=env)
            leaving = s.pset("ocn").members[0]
            s.retire([leaving])
            if s.is_retired:
                return ("retired",)
            mph3 = s.mph(env=env)
            return ("ocn", mph3.global_world.allreduce(1))

        def spare(world, env):
            s = pool_session(world, env=env)
            assignment = s.await_assignment()
            assert assignment is not None
            mph = s.mph(env=env)
            got = mph.recv("atm", 0, tag=13)
            leaving = s.pset("ocn").members[0]
            s.retire([leaving])
            mph3 = s.mph(env=env)
            return ("grown", got, mph3.local_proc_id(), mph3.global_world.allreduce(1))

        result = mph_run(
            [(atm, 2), (ocn, 1), (spare, 1)],
            registry=REG,
            config=sweep_config(),
            timeout=90.0,
        )
        # Identical expected values for every swept seed = determinism.
        atm_views = result.by_executable(0)
        assert atm_views[0] == ("atm", 3, (2, (0, 1, 3), (3,)))
        assert atm_views[1][2] == atm_views[0][2]
        assert result.by_executable(1)[0] == ("retired",)
        assert result.by_executable(2)[0] == ("grown", ("gift", 1), 0, 3)


EREG = """
BEGIN
Multi_Instance_Begin
Run1 0 1
Run2 2 3
Multi_Instance_End
stats
END
"""


class TestElasticEnsemble:
    """MIME: add an instance mid-run, then retire one, with the collector's
    statistics staying correct throughout."""

    def test_add_and_retire_instance_mid_run(self):
        def member(world, env):
            s = instance_session(world, "Run", env=env)
            mph = s.mph(env=env)
            em = EnsembleMember(mph, "stats")
            name = mph.comp_name()
            scale = float(name[-1])
            for step in (0, 1):
                em.report(step, np.full(3, scale))

            s.grow("Run", 1)
            mph2 = s.mph(env=env)
            EnsembleMember(mph2, "stats").report(2, np.full(3, scale))

            doomed = s.pset("Run1").members
            retired = s.retire(doomed)
            if s.is_retired:
                return ("retired", name)
            assert retired == ("Run1",)
            assert s.retired_components == ("Run1",)
            assert s.dead_components == ()
            mph3 = s.mph(env=env)
            EnsembleMember(mph3, "stats").report(3, np.full(3, scale))
            return ("done", name)

        def spare(world, env):
            s = pool_session(world, env=env)
            assignment = s.await_assignment()
            assert assignment is not None
            mph = s.mph(env=env)
            name = mph.comp_name()
            assert name == "Run3"
            scale = float(name[-1])
            EnsembleMember(mph, "stats").report(2, np.full(3, scale))
            s.retire(s.pset("Run1").members)
            mph3 = s.mph(env=env)
            EnsembleMember(mph3, "stats").report(3, np.full(3, scale))
            return ("done", name)

        def stats(world, env):
            s = components_session(world, "stats", env=env)
            mph = s.mph(env=env)
            collector = EnsembleCollector.for_prefix(mph, "Run")
            assert collector.instance_names == ["Run1", "Run2"]
            means = [float(collector.collect(step).mean[0]) for step in (0, 1)]

            grown = s.grow("Run", 1)
            assert grown == ("Run3",)
            mph2 = s.mph(env=env)
            collector.add_instance("Run3", mph=mph2)
            assert collector.live_instance_names == ["Run1", "Run2", "Run3"]
            means.append(float(collector.collect(2).mean[0]))

            collector.retire_instance("Run1")
            s.retire(s.pset("Run1").members)
            collector.mph = s.mph(env=env)
            means.append(float(collector.collect(3).mean[0]))
            return (
                means,
                list(collector.degraded_instances),
                list(collector.retired_instances),
                collector.live_k,
                collector.k,
            )

        result = mph_run(
            [(member, 4), (stats, 1), (spare, 1)], registry=EREG, timeout=90.0
        )
        means, degraded, retired, live_k, k = result.by_executable(1)[0]
        # steps: {1,2} -> 1.5; {1,2} -> 1.5; {1,2,3} -> 2.0; {2,3} -> 2.5
        assert means == [1.5, 1.5, 2.0, 2.5]
        assert degraded == []  # a planned retire is NOT a degradation
        assert retired == ["Run1"]
        assert (live_k, k) == (2, 3)
        member_views = result.by_executable(0)
        assert member_views[0] == ("retired", "Run1")
        assert member_views[2] == ("done", "Run2")
        assert result.by_executable(2)[0] == ("done", "Run3")

    def test_add_instance_resurrects_retired_name(self):
        collector = EnsembleCollector.__new__(EnsembleCollector)
        collector.mph = None
        collector.instance_names = ["Run1", "Run2"]
        collector.degraded_instances = []
        collector.retired_instances = ["Run1"]
        assert collector.live_instance_names == ["Run2"]
        collector.add_instance("Run1")
        assert collector.retired_instances == []
        assert collector.live_instance_names == ["Run1", "Run2"]

    def test_retire_unknown_instance_rejected(self):
        collector = EnsembleCollector.__new__(EnsembleCollector)
        collector.mph = None
        collector.instance_names = ["Run1"]
        collector.degraded_instances = []
        collector.retired_instances = []
        from repro.errors import MPHError

        with pytest.raises(MPHError, match="unknown ensemble instance"):
            collector.retire_instance("Run9")


class TestSessionErrors:
    def test_pool_process_cannot_transition(self):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            s.release_pool()
            return "ok"

        def ocn(world, env):
            s = components_session(world, "ocn", env=env)
            s.release_pool()
            return "ok"

        def spare(world, env):
            s = pool_session(world, env=env)
            with pytest.raises(SessionError, match="collective over active"):
                s.grow("atm", 1)
            with pytest.raises(SessionError, match="no component view"):
                s.handshake_result()
            assert s.await_assignment() is None
            return "ok"

        result = mph_run([(atm, 1), (ocn, 1), (spare, 1)], registry=REG, timeout=60.0)
        assert result.values() == ["ok", "ok", "ok"]

    def test_await_assignment_needs_pool_process(self):
        def atm(world, env):
            s = components_session(world, "atm", env=env)
            with pytest.raises(SessionError, match="reserve pool"):
                s.await_assignment()
            return "ok"

        def ocn(world, env):
            components_session(world, "ocn", env=env)
            return "ok"

        result = mph_run([(atm, 1), (ocn, 1)], registry=REG, timeout=60.0)
        assert result.values() == ["ok", "ok"]
