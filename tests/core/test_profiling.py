"""Coupling-communication profiling (repro.core.profiling)."""

import numpy as np
import pytest

from repro import components_setup, mph_run
from repro.core.profiling import CommProfile, gather_profiles

REG = "BEGIN\natm\nocn\ncpl\nEND"


class TestCommProfile:
    def test_counters(self):
        p = CommProfile()
        p.record_send("ocn")
        p.record_send("ocn")
        p.record_recv("atm")
        assert p.sent == {"ocn": 2}
        assert p.received == {"atm": 1}
        assert (p.total_sent, p.total_received) == (2, 1)

    def test_merge(self):
        a = CommProfile({"x": 1}, {"y": 2})
        b = CommProfile({"x": 3, "z": 1}, {})
        m = a.merge(b)
        assert m.sent == {"x": 4, "z": 1}
        assert m.received == {"y": 2}
        # inputs untouched
        assert a.sent == {"x": 1}

    def test_describe(self):
        p = CommProfile({"ocn": 5}, {"ocn": 3, "atm": 1})
        text = p.describe()
        assert "sent 5 / received 4" in text
        assert "ocn" in text and "atm" in text


class TestProfiledMessaging:
    def job(self):
        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            if mph.local_proc_id() == 0:
                mph.send("a", "cpl", 0, tag=1)
                mph.Send(np.zeros(4), "cpl", 0, tag=2)
                mph.isend("b", "ocn", 0, tag=3).wait()
            return (dict(mph.profile.sent), dict(mph.profile.received))

        def ocn(world, env):
            mph = components_setup(world, "ocn", env=env)
            if mph.local_proc_id() == 0:
                mph.recv("atm", 0, tag=3)
            return (dict(mph.profile.sent), dict(mph.profile.received))

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            mph.recv("atm", 0, tag=1)
            buf = np.zeros(4)
            mph.Recv(buf, "atm", 0, tag=2)
            return (dict(mph.profile.sent), dict(mph.profile.received))

        return mph_run([(atm, 2), (ocn, 1), (cpl, 1)], registry=REG)

    def test_sends_counted_by_destination(self):
        result = self.job()
        sent, received = result.by_executable(0)[0]
        assert sent == {"cpl": 2, "ocn": 1}
        assert received == {}

    def test_receives_counted_by_source(self):
        result = self.job()
        sent, received = result.by_executable(2)[0]
        assert received == {"atm": 2}

    def test_idle_rank_empty_profile(self):
        result = self.job()
        sent, received = result.by_executable(0)[1]
        assert sent == {} and received == {}

    def test_recv_any_resolves_component(self):
        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            if mph.local_proc_id() == 0:
                mph.send("x", "cpl", 0, tag=9)
            return None

        def ocn(world, env):
            components_setup(world, "ocn", env=env)
            return None

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            mph.recv_any(tag=9)
            return dict(mph.profile.received)

        result = mph_run([(atm, 2), (ocn, 1), (cpl, 1)], registry=REG)
        assert result.by_executable(2)[0] == {"atm": 1}


class TestGatherProfiles:
    def test_application_wide_matrix(self):
        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            mph.send(mph.local_proc_id(), "cpl", 0, tag=1)
            matrix = gather_profiles(mph, "cpl")
            assert matrix is None  # only the root processor holds it
            return None

        def ocn(world, env):
            mph = components_setup(world, "ocn", env=env)
            gather_profiles(mph, "cpl")
            return None

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            for _ in range(2):
                mph.recv_any(tag=1)
            matrix = gather_profiles(mph, "cpl")
            return {name: (p.total_sent, p.total_received) for name, p in matrix.items()}

        result = mph_run([(atm, 2), (ocn, 1), (cpl, 1)], registry=REG)
        matrix = result.by_executable(2)[0]
        assert matrix["atm"] == (2, 0)
        assert matrix["cpl"] == (0, 2)
        assert matrix["ocn"] == (0, 0)


class TestByteCounters:
    def test_record_with_bytes(self):
        p = CommProfile()
        p.record_send("ocn", 100)
        p.record_send("ocn", 50)
        p.record_recv("atm", 8)
        assert p.bytes_sent == {"ocn": 150}
        assert p.bytes_received == {"atm": 8}
        assert (p.total_bytes_sent, p.total_bytes_received) == (150, 8)

    def test_legacy_calls_default_to_zero_bytes(self):
        p = CommProfile()
        p.record_send("ocn")
        assert p.sent == {"ocn": 1}
        assert p.bytes_sent == {"ocn": 0}

    def test_merge_includes_bytes(self):
        a = CommProfile({"x": 1}, {}, {"x": 10}, {})
        b = CommProfile({"x": 2}, {"y": 1}, {"x": 5}, {"y": 7})
        m = a.merge(b)
        assert m.bytes_sent == {"x": 15}
        assert m.bytes_received == {"y": 7}
        assert a.bytes_sent == {"x": 10}  # inputs untouched

    def test_describe_renders_bytes(self):
        p = CommProfile({"ocn": 2}, {}, {"ocn": 123}, {})
        text = p.describe()
        assert "123 B out" in text

    def test_messaging_records_payload_bytes(self):
        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            if mph.local_proc_id() == 0:
                mph.send({"k": 1}, "cpl", 0, tag=1)
                mph.Send(np.zeros(16), "cpl", 0, tag=2)
            return dict(mph.profile.bytes_sent)

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            mph.recv("atm", 0, tag=1)
            mph.Recv(np.zeros(16), "atm", 0, tag=2)
            return dict(mph.profile.bytes_received)

        result = mph_run([(atm, 1), (cpl, 1)], registry="BEGIN\natm\ncpl\nEND")
        sent = result.by_executable(0)[0]
        received = result.by_executable(1)[0]
        # one pickled dict + one 128-byte float64 array each way
        assert sent["cpl"] >= 128
        assert received["atm"] == sent["cpl"]

    def test_recv_any_records_bytes(self):
        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            mph.send("payload", "cpl", 0, tag=4)
            return None

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            mph.recv_any(tag=4)
            return dict(mph.profile.bytes_received)

        result = mph_run([(atm, 1), (cpl, 1)], registry="BEGIN\natm\ncpl\nEND")
        assert result.by_executable(1)[0]["atm"] > 0

    def test_gather_profiles_merges_bytes(self):
        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            mph.send(np.zeros(8), "cpl", 0, tag=1)
            gather_profiles(mph, "cpl")
            return None

        def ocn(world, env):
            mph = components_setup(world, "ocn", env=env)
            gather_profiles(mph, "cpl")
            return None

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            for _ in range(2):
                mph.recv_any(tag=1)
            matrix = gather_profiles(mph, "cpl")
            return {n: (p.total_bytes_sent, p.total_bytes_received) for n, p in matrix.items()}

        result = mph_run([(atm, 2), (ocn, 1), (cpl, 1)], registry=REG)
        matrix = result.by_executable(2)[0]
        assert matrix["atm"][0] >= 128  # two 64-byte arrays
        assert matrix["cpl"][1] == matrix["atm"][0]
        assert matrix["ocn"] == (0, 0)
