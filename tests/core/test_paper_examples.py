"""E1–E4: the paper's four worked examples (§4.1–§4.4), reproduced verbatim.

Each test runs the exact registration file printed in the paper (processor
counts scaled only where noted) with executables making exactly the calls
the paper's code listings make, and asserts the behaviour the prose
promises.
"""

import numpy as np
import pytest

from repro import components_setup, mph_run, multi_instance


class TestE1ScmeClimate:
    """§4.1: the five-component climate system, names only."""

    REGISTRY = """
BEGIN
atmosphere
ocean
land
ice
coupler
END
"""

    def test_components_setup_returns_component_world(self):
        def atmosphere(world, env):
            # atmosphere_World = MPH_components_setup(name1="atmosphere")
            mph = components_setup(world, "atmosphere", env=env)
            atmosphere_world = mph.exe_world
            return (atmosphere_world.size, mph.comp_name())

        def other(name):
            def program(world, env):
                components_setup(world, name, env=env)
                return name

            program.__name__ = name
            return program

        result = mph_run(
            [
                (atmosphere, 4),
                (other("ocean"), 2),
                (other("land"), 2),
                (other("ice"), 1),
                (other("coupler"), 1),
            ],
            registry=self.REGISTRY,
        )
        assert result.by_executable(0)[0] == (4, "atmosphere")

    def test_insertable_visualization_component(self):
        """'one can simply add the name-tag of the graphics into the
        registration file' — inserting a component requires no code change
        anywhere else."""
        registry = self.REGISTRY.replace("coupler\n", "coupler\ngraphics\n")

        def make(name):
            def program(world, env):
                mph = components_setup(world, name, env=env)
                return mph.total_components()

            program.__name__ = name
            return program

        result = mph_run(
            [
                (make("atmosphere"), 2),
                (make("ocean"), 1),
                (make("land"), 1),
                (make("ice"), 1),
                (make("coupler"), 1),
                (make("graphics"), 1),
            ],
            registry=registry,
        )
        assert set(result.values()) == {6}


class TestE2McseMaster:
    """§4.2: 3 components on 36 processors, master-program dispatch."""

    REGISTRY = """
BEGIN
Multi_Component_Begin
atmosphere 0 15
ocean 16 31
coupler 32 35
Multi_Component_End
END
"""

    def test_dispatch_on_36_processors(self):
        def master(world, env):
            mph = components_setup(world, "atmosphere", "ocean", "coupler", env=env)
            comm = mph.proc_in_component("ocean")
            if comm is not None:
                return ("ocean_xyz", comm.rank, comm.size)
            comm = mph.proc_in_component("atmosphere")
            if comm is not None:
                return ("atmosphere", comm.rank, comm.size)
            comm = mph.proc_in_component("coupler")
            if comm is not None:
                return ("coupler_abc", comm.rank, comm.size)
            return None

        values = mph_run([(master, 36)], registry=self.REGISTRY).values()
        assert values[0] == ("atmosphere", 0, 16)
        assert values[16] == ("ocean_xyz", 0, 16)
        assert values[31] == ("ocean_xyz", 15, 16)
        assert values[32] == ("coupler_abc", 0, 4)
        assert values[35] == ("coupler_abc", 3, 4)


class TestE3McmeThreeExecutables:
    """§4.3: atm/land/chemistry + ocean/ice + coupler, with full overlap."""

    REGISTRY = """
BEGIN
Multi_Component_Begin ! 1st multi-comp exec
atmosphere 0 15
land       0 15      ! overlap with atm
chemistry  16 19
Multi_Component_End
Multi_Component_Begin ! 2nd multi-comp exec
ocean 0 15
ice   16 31
Multi_Component_End
coupler              ! a single-comp exec
END
"""

    def exes(self):
        def atm_land_chem(world, env):
            mph = components_setup(
                world, "atmosphere", "land", "chemistry", env=env
            )  # name1..name3
            return {n: mph.local_proc_id(n) for n in mph.comp_names()}

        def ocean_ice(world, env):
            mph = components_setup(world, "ocean", "ice", env=env)  # name1, name2
            return {n: mph.local_proc_id(n) for n in mph.comp_names()}

        def coupler(world, env):
            mph = components_setup(world, "coupler", env=env)  # name1
            return {n: mph.local_proc_id(n) for n in mph.comp_names()}

        return [(atm_land_chem, 20), (ocean_ice, 32), (coupler, 2)]

    def test_overlap_gives_two_communicators(self):
        result = mph_run(self.exes(), registry=self.REGISTRY)
        # First executable, local processor 5: in both atmosphere and land.
        assert result.by_executable(0)[5] == {"atmosphere": 5, "land": 5}
        # Local processor 17: chemistry only.
        assert result.by_executable(0)[17] == {"chemistry": 1}

    def test_second_executable_partition(self):
        result = mph_run(self.exes(), registry=self.REGISTRY)
        assert result.by_executable(1)[0] == {"ocean": 0}
        assert result.by_executable(1)[16] == {"ice": 0}
        assert result.by_executable(1)[31] == {"ice": 15}

    def test_coupler_size_from_launcher(self):
        """The single-component coupler takes whatever the launch command
        gave it (here 2, not fixed by the file)."""
        result = mph_run(self.exes(), registry=self.REGISTRY)
        assert result.by_executable(2) == [{"coupler": 0}, {"coupler": 1}]


class TestE4MimeEnsemble:
    """§4.4: the 3-instance Ocean ensemble with argument fields."""

    REGISTRY = """
BEGIN
Multi_Instance_Begin ! a multi-instance exec
Ocean1 0 15  infl outfl logf alpha=3 debug=on
Ocean2 16 31 inf2 outf2 beta=4.5 debug=off
Ocean3 32 47 inf3 dynamics=finite_volume
Multi_Instance_End
statistics           ! a single-component exec
END
"""

    def exes(self):
        def ocean(world, env):
            # Ocean_world = MPH_multi_instance("Ocean")
            mph = multi_instance(world, "Ocean", env=env)
            out = {"name": mph.comp_name(), "local": mph.local_proc_id()}
            # call MPH_get_argument("alpha", alpha2) -> integer 3
            out["alpha"] = mph.get_argument("alpha", int, default=None)
            # call MPH_get_argument("beta", beta) -> real 4.5
            out["beta"] = mph.get_argument("beta", float, default=None)
            # call MPH_get_argument(field_num=1, field_val=fname)
            out["field1"] = mph.get_argument(field_num=1)
            return out

        def statistics(world, env):
            mph = components_setup(world, "statistics", env=env)
            return mph.total_components()

        return [(ocean, 48), (statistics, 1)]

    def test_three_instances_on_48_processors(self):
        result = mph_run(self.exes(), registry=self.REGISTRY)
        values = result.by_executable(0)
        assert values[0]["name"] == "Ocean1"
        assert values[16]["name"] == "Ocean2"
        assert values[47] == {
            "name": "Ocean3",
            "local": 15,
            "alpha": None,
            "beta": None,
            "field1": "inf3",
        }

    def test_paper_argument_values(self):
        result = mph_run(self.exes(), registry=self.REGISTRY)
        values = result.by_executable(0)
        assert values[0]["alpha"] == 3 and isinstance(values[0]["alpha"], int)
        assert values[16]["beta"] == 4.5 and isinstance(values[16]["beta"], float)
        assert values[0]["field1"] == "infl"

    def test_statistics_sees_four_components(self):
        """Instances expand: Ocean1..3 + statistics = 4 components."""
        result = mph_run(self.exes(), registry=self.REGISTRY)
        assert result.by_executable(1) == [4]


class TestE5CommJoinContract:
    """§5.1: the comm_join rank-ordering contract, with the paper's sizes
    (atmosphere 16, ocean 8)."""

    REGISTRY = "BEGIN\natmosphere\nocean\nEND"

    def run_join(self, first, second):
        def make(name, n_expected):
            def program(world, env):
                mph = components_setup(world, name, env=env)
                joined = mph.comm_join(first, second)
                return (joined.rank, joined.size)

            program.__name__ = name
            return program

        return mph_run(
            [(make("atmosphere", 16), 16), (make("ocean", 8), 8)], registry=self.REGISTRY
        )

    def test_atmosphere_first(self):
        result = self.run_join("atmosphere", "ocean")
        atm = result.by_executable(0)
        ocn = result.by_executable(1)
        # "processors in atmosphere ranked first (rank 0-15) and ocean
        # second (rank 16-23)"
        assert [r for r, _ in atm] == list(range(16))
        assert [r for r, _ in ocn] == list(range(16, 24))
        assert all(s == 24 for _, s in atm + ocn)

    def test_reversed_order(self):
        result = self.run_join("ocean", "atmosphere")
        atm = result.by_executable(0)
        ocn = result.by_executable(1)
        # "then ocean processors will rank 0-7 and atmosphere 8-23"
        assert [r for r, _ in ocn] == list(range(8))
        assert [r for r, _ in atm] == list(range(8, 24))

    def test_collective_data_redistribution_over_join(self):
        """'With this joint communicator, collective operations such as
        data redistribution could easily be performed.'"""

        def atm(world, env):
            mph = components_setup(world, "atmosphere", env=env)
            joined = mph.comm_join("atmosphere", "ocean")
            return joined.allgather(("atm", mph.local_proc_id()))

        def ocn(world, env):
            mph = components_setup(world, "ocean", env=env)
            joined = mph.comm_join("atmosphere", "ocean")
            return joined.allgather(("ocn", mph.local_proc_id()))

        result = mph_run([(atm, 3), (ocn, 2)], registry=self.REGISTRY)
        expected = [("atm", 0), ("atm", 1), ("atm", 2), ("ocn", 0), ("ocn", 1)]
        assert all(v == expected for v in result.values())
