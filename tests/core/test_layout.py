"""Layout resolution: components/executables -> world ranks
(repro.core.layout), tested without communicators."""

import pytest

from repro.core.layout import ComponentInfo, ExecutableInfo, Layout
from repro.core.registry import Registry
from repro.errors import HandshakeError
from repro.mpi.constants import UNDEFINED

REG = Registry.from_text(
    """
BEGIN
Multi_Component_Begin
atm 0 3
lnd 0 3
chm 4 5
Multi_Component_End
cpl
END
"""
)


def make_layout(chm_world=(14, 15), cpl_world=(20,)):
    exe0 = ExecutableInfo(
        exe_id=0,
        entry_index=0,
        kind="multi_component",
        world_ranks=(10, 11, 12, 13) + tuple(chm_world),
        component_names=("atm", "lnd", "chm"),
        has_overlap=True,
    )
    exe1 = ExecutableInfo(
        exe_id=1,
        entry_index=1,
        kind="single",
        world_ranks=tuple(cpl_world),
        component_names=("cpl",),
    )
    return Layout(REG, [exe0, exe1])


class TestLayoutResolution:
    def test_component_world_ranks(self):
        layout = make_layout()
        assert layout.component("atm").world_ranks == (10, 11, 12, 13)
        assert layout.component("chm").world_ranks == (14, 15)
        assert layout.component("cpl").world_ranks == (20,)

    def test_comp_ids_follow_registry_order(self):
        layout = make_layout()
        assert [c.name for c in layout.components] == ["atm", "lnd", "chm", "cpl"]
        assert [c.comp_id for c in layout.components] == [0, 1, 2, 3]

    def test_global_rank_translation(self):
        layout = make_layout()
        assert layout.global_rank("chm", 1) == 15
        assert layout.global_rank("cpl", 0) == 20

    def test_global_rank_out_of_range(self):
        with pytest.raises(HandshakeError, match="out of range"):
            make_layout().global_rank("chm", 2)

    def test_components_on_overlapping_rank(self):
        layout = make_layout()
        assert [c.name for c in layout.components_on(12)] == ["atm", "lnd"]
        assert [c.name for c in layout.components_on(14)] == ["chm"]

    def test_executable_of(self):
        layout = make_layout()
        assert layout.executable_of(14).exe_id == 0
        assert layout.executable_of(20).exe_id == 1
        with pytest.raises(HandshakeError):
            layout.executable_of(99)

    def test_overlap_query(self):
        layout = make_layout()
        assert layout.overlap("atm", "lnd")
        assert not layout.overlap("atm", "chm")

    def test_exe_limits(self):
        layout = make_layout()
        exe = layout.executables[0]
        assert (exe.low_proc_limit, exe.up_proc_limit) == (10, 15)

    def test_local_rank_of(self):
        info = make_layout().component("atm")
        assert info.local_rank_of(12) == 2
        assert info.local_rank_of(99) == UNDEFINED

    def test_unknown_component(self):
        with pytest.raises(HandshakeError, match="active components"):
            make_layout().component("nope")

    def test_has_component(self):
        layout = make_layout()
        assert layout.has_component("lnd") and not layout.has_component("xyz")

    def test_counts(self):
        layout = make_layout()
        assert layout.total_components == 4
        assert layout.num_executables == 2
        assert layout.world_size() == 7

    def test_range_exceeding_executable_size_rejected(self):
        exe = ExecutableInfo(
            exe_id=0,
            entry_index=0,
            kind="multi_component",
            world_ranks=(0, 1, 2),  # but chm registers locals 4..5
            component_names=("atm", "lnd", "chm"),
        )
        cpl = ExecutableInfo(
            exe_id=1, entry_index=1, kind="single", world_ranks=(3,), component_names=("cpl",)
        )
        with pytest.raises(HandshakeError, match="only 3 processes"):
            Layout(REG, [exe, cpl])
