"""Ensemble verification metrics: rank histogram and CRPS."""

import numpy as np
import pytest

from repro.core.ensemble import EnsembleStats
from repro.errors import MPHError


def make_stats(members: dict[str, np.ndarray]) -> EnsembleStats:
    return EnsembleStats(step=0, fields=members)


class TestRankHistogram:
    def test_observation_below_all_members(self):
        stats = make_stats({"a": np.array([2.0]), "b": np.array([3.0])})
        hist = stats.rank_histogram(np.array([1.0]))
        np.testing.assert_array_equal(hist, [1, 0, 0])

    def test_observation_above_all_members(self):
        stats = make_stats({"a": np.array([2.0]), "b": np.array([3.0])})
        hist = stats.rank_histogram(np.array([9.0]))
        np.testing.assert_array_equal(hist, [0, 0, 1])

    def test_observation_between(self):
        stats = make_stats({"a": np.array([2.0]), "b": np.array([4.0])})
        hist = stats.rank_histogram(np.array([3.0]))
        np.testing.assert_array_equal(hist, [0, 1, 0])

    def test_counts_sum_to_field_size(self):
        rng = np.random.default_rng(0)
        stats = make_stats({f"m{i}": rng.normal(size=(4, 5)) for i in range(3)})
        hist = stats.rank_histogram(rng.normal(size=(4, 5)))
        assert hist.sum() == 20
        assert len(hist) == 4  # K+1 slots

    def test_calibrated_ensemble_is_flat_on_average(self):
        """Observation drawn from the same distribution as the members →
        near-uniform histogram over many points (the Talagrand check)."""
        rng = np.random.default_rng(42)
        k, n = 4, 20_000
        stats = make_stats({f"m{i}": rng.normal(size=n) for i in range(k)})
        hist = stats.rank_histogram(rng.normal(size=n))
        expected = n / (k + 1)
        assert np.all(np.abs(hist - expected) < 0.1 * expected)

    def test_shape_mismatch(self):
        stats = make_stats({"a": np.zeros(3)})
        with pytest.raises(MPHError, match="observation shape"):
            stats.rank_histogram(np.zeros(4))


class TestCrps:
    def test_single_member_equals_mae(self):
        stats = make_stats({"only": np.array([1.0, 3.0])})
        obs = np.array([2.0, 2.0])
        assert stats.crps(obs) == pytest.approx(1.0)

    def test_perfect_collapsed_ensemble(self):
        obs = np.array([5.0, 5.0])
        stats = make_stats({"a": obs.copy(), "b": obs.copy()})
        assert stats.crps(obs) == pytest.approx(0.0)

    def test_sharper_calibrated_ensemble_scores_better(self):
        rng = np.random.default_rng(7)
        obs = np.zeros(5000)
        tight = make_stats({f"m{i}": rng.normal(0, 0.5, 5000) for i in range(6)})
        wide = make_stats({f"m{i}": rng.normal(0, 3.0, 5000) for i in range(6)})
        assert tight.crps(obs) < wide.crps(obs)

    def test_biased_ensemble_scores_worse(self):
        rng = np.random.default_rng(8)
        obs = np.zeros(5000)
        unbiased = make_stats({f"m{i}": rng.normal(0, 1, 5000) for i in range(6)})
        biased = make_stats({f"m{i}": rng.normal(4, 1, 5000) for i in range(6)})
        assert unbiased.crps(obs) < biased.crps(obs)

    def test_nonnegative(self):
        rng = np.random.default_rng(9)
        stats = make_stats({f"m{i}": rng.normal(size=100) for i in range(4)})
        assert stats.crps(rng.normal(size=100)) >= 0.0

    def test_shape_mismatch(self):
        stats = make_stats({"a": np.zeros(3)})
        with pytest.raises(MPHError, match="observation shape"):
            stats.crps(np.zeros(2))


class TestWaitanyWaitsome:
    def test_waitany_returns_first_ready(self, spmd):
        from repro.mpi import Request

        def main(comm):
            if comm.rank == 0:
                comm.send("fast", 1, tag=2)
                comm.barrier()
                comm.send("slow", 1, tag=1)
                return None
            reqs = [comm.irecv(source=0, tag=1), comm.irecv(source=0, tag=2)]
            idx, value = Request.waitany(reqs)
            comm.barrier()
            rest = reqs[1 - idx].wait()
            return (idx, value, rest)

        assert spmd(2, main)[1] == (1, "fast", "slow")

    def test_waitsome_returns_all_ready(self, spmd):
        from repro.mpi import Request

        def main(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                comm.barrier()
                return None
            comm.barrier()  # both messages now pending
            reqs = [comm.irecv(source=0, tag=t) for t in (1, 2, 3)]
            done = Request.waitsome(reqs)
            reqs[2].cancel()
            return sorted(done)

        assert spmd(2, main)[1] == [(0, "a"), (1, "b")]

    def test_empty_sequences_rejected(self):
        from repro.mpi import Request

        with pytest.raises(ValueError):
            Request.waitany([])
        with pytest.raises(ValueError):
            Request.waitsome([])
