"""E8: multi-channel output redirection (§5.4)."""

import sys

import pytest

from repro import components_setup, mph_run
from repro.core.redirect import MultiChannelOutput

REG = "BEGIN\natm\nocn\nEND"


def logging_job(tmp_path, env_vars=None, n_atm=2, n_ocn=2):
    def make(name):
        def program(world, env):
            mph = components_setup(world, name, env=env)
            path = mph.redirect_output()
            print(f"{name} rank {mph.local_proc_id()} line one")
            print(f"{name} rank {mph.local_proc_id()} line two")
            return None if path is None else path.name

        program.__name__ = name
        return program

    return mph_run(
        [(make("atm"), n_atm), (make("ocn"), n_ocn)],
        registry=REG,
        workdir=tmp_path,
        env_vars=env_vars or {},
    )


class TestRedirection:
    def test_rank0_writes_to_component_log(self, tmp_path):
        logging_job(tmp_path)
        atm_log = (tmp_path / "atm.log").read_text()
        assert "atm rank 0 line one" in atm_log
        assert "ocn" not in atm_log
        assert "rank 1" not in atm_log

    def test_other_ranks_share_combined_log(self, tmp_path):
        logging_job(tmp_path)
        combined = (tmp_path / "mph_combined.log").read_text()
        assert "atm rank 1 line one" in combined
        assert "ocn rank 1 line two" in combined
        assert "rank 0" not in combined

    def test_env_var_overrides_log_name(self, tmp_path):
        custom = tmp_path / "my_ocean_run.txt"
        logging_job(tmp_path, env_vars={"MPH_LOG_OCN": str(custom)})
        assert "ocn rank 0 line one" in custom.read_text()
        assert not (tmp_path / "ocn.log").exists()

    def test_combined_log_env_override(self, tmp_path):
        custom = tmp_path / "rest.txt"
        logging_job(tmp_path, env_vars={"MPH_COMBINED_LOG": str(custom)})
        assert "atm rank 1 line one" in custom.read_text()

    def test_returned_paths(self, tmp_path):
        result = logging_job(tmp_path)
        assert result.by_executable(0) == ["atm.log", "mph_combined.log"]

    def test_stdout_restored_after_job(self, tmp_path):
        before = sys.stdout
        logging_job(tmp_path)
        assert sys.stdout is before

    def test_ordinary_prints_unaffected_outside_components(self, tmp_path, capsys):
        logging_job(tmp_path)
        print("back to normal")
        assert "back to normal" in capsys.readouterr().out


class TestManagerMechanics:
    def test_noop_when_not_installed(self):
        manager = MultiChannelOutput()
        assert manager.redirect("x", is_channel_owner=True) is None
        manager.restore()  # must not raise

    def test_reentrant_install(self, capsys):
        manager = MultiChannelOutput()
        with manager:
            with manager:
                assert manager.installed
            assert manager.installed  # inner exit must not tear down
        assert not manager.installed

    def test_unregistered_thread_passes_through(self, capsys, tmp_path):
        manager = MultiChannelOutput()
        with manager:
            print("passthrough")
        assert "passthrough" in capsys.readouterr().out

    def test_channels_closed_on_uninstall(self, tmp_path):
        manager = MultiChannelOutput()
        manager.install()
        manager.redirect("comp", is_channel_owner=True, workdir=tmp_path)
        print("to file")
        manager.uninstall()
        assert "to file" in (tmp_path / "comp.log").read_text()

    def test_append_mode_across_installs(self, tmp_path):
        for word in ("first", "second"):
            manager = MultiChannelOutput()
            with manager:
                manager.redirect("c", is_channel_owner=True, workdir=tmp_path)
                print(word)
                manager.restore()
        text = (tmp_path / "c.log").read_text()
        assert "first" in text and "second" in text
