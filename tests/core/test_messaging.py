"""E6: inter-component communication addressed by component name (§5.2)."""

import numpy as np
import pytest

from repro import components_setup, mph_run

REG = "BEGIN\natmosphere\nocean\nEND"


def two_component_job(atm_fn, ocn_fn, n_atm=4, n_ocn=4, registry=REG, **kw):
    def atmosphere(world, env):
        return atm_fn(components_setup(world, "atmosphere", env=env))

    def ocean(world, env):
        return ocn_fn(components_setup(world, "ocean", env=env))

    return mph_run([(atmosphere, n_atm), (ocean, n_ocn)], registry=registry, **kw)


class TestNameAddressedSend:
    def test_paper_example_send_to_ocean_local_3(self):
        """'if a processor on atmosphere wants to send Process 3 on
        ocean' — address (ocean, 3), whatever ocean's global ranks are."""

        def atm(mph):
            if mph.local_proc_id() == 0:
                mph.send("payload", "ocean", 3, tag=100)
            return None

        def ocn(mph):
            if mph.local_proc_id() == 3:
                return mph.recv("atmosphere", 0, tag=100)
            return None

        result = two_component_job(atm, ocn)
        assert result.by_executable(1)[3] == "payload"

    def test_addressing_invariant_under_rank_policy(self):
        """Name addressing hides the launcher's global-rank layout (E13)."""

        def atm(mph):
            if mph.local_proc_id() == 1:
                mph.send(("x", 42), "ocean", 2, tag=7)
            return None

        def ocn(mph):
            if mph.local_proc_id() == 2:
                return mph.recv("atmosphere", 1, tag=7)
            return None

        for policy in ("block", "round_robin"):
            result = two_component_job(atm, ocn, rank_policy=policy)
            assert result.by_executable(1)[2] == ("x", 42)

    def test_bidirectional_conversation(self):
        def atm(mph):
            if mph.local_proc_id() == 0:
                mph.send("ping", "ocean", 0, tag=1)
                return mph.recv("ocean", 0, tag=2)
            return None

        def ocn(mph):
            if mph.local_proc_id() == 0:
                got = mph.recv("atmosphere", 0, tag=1)
                mph.send(got + "-pong", "atmosphere", 0, tag=2)
            return None

        result = two_component_job(atm, ocn)
        assert result.by_executable(0)[0] == "ping-pong"

    def test_isend_irecv(self):
        def atm(mph):
            if mph.local_proc_id() == 0:
                req = mph.isend([1, 2], "ocean", 1, tag=3)
                req.wait()
            return None

        def ocn(mph):
            if mph.local_proc_id() == 1:
                return mph.irecv("atmosphere", 0, tag=3).wait()
            return None

        result = two_component_job(atm, ocn)
        assert result.by_executable(1)[1] == [1, 2]

    def test_recv_any_identifies_sender_component(self, sweep_config):
        def atm(mph):
            if mph.local_proc_id() == 2:
                mph.send("hi", "ocean", 0, tag=9)
            return None

        def ocn(mph):
            if mph.local_proc_id() == 0:
                return mph.recv_any(tag=9)
            return None

        result = two_component_job(atm, ocn, config=sweep_config())
        assert result.by_executable(1)[0] == ("hi", "atmosphere", 2)


class TestBufferMessaging:
    def test_numpy_send_recv(self):
        def atm(mph):
            if mph.local_proc_id() == 0:
                mph.Send(np.linspace(0, 1, 8), "ocean", 0, tag=5)
            return None

        def ocn(mph):
            if mph.local_proc_id() == 0:
                buf = np.zeros(8)
                mph.Recv(buf, "atmosphere", 0, tag=5)
                return float(buf.sum())
            return None

        result = two_component_job(atm, ocn)
        assert result.by_executable(1)[0] == pytest.approx(4.0)


class TestOverlapDisambiguation:
    """Overlap cases are schedule-swept (``sweep_config``): tag-based
    disambiguation and the tie-break rule must hold under every legal
    match order, not just the arrival order the OS happened to give."""

    REG = """
BEGIN
Multi_Component_Begin
hot  0 1
cold 0 1
Multi_Component_End
reader
END
"""

    def test_tags_distinguish_overlapping_senders(self, sweep_config):
        """Paper §4.2: 'When sending data to components on the overlapped
        processors, we recommend to use message tags to distinguish
        different components.'"""

        def dual(world, env):
            mph = components_setup(world, "hot", "cold", env=env)
            if mph.local_proc_id("hot") == 0:
                mph.send("from-hot", "reader", 0, tag=1)
                mph.send("from-cold", "reader", 0, tag=2)
            return None

        def reader(world, env):
            mph = components_setup(world, "reader", env=env)
            cold = mph.recv("cold", 0, tag=2)
            hot = mph.recv("hot", 0, tag=1)
            return (hot, cold)

        result = mph_run([(dual, 2), (reader, 1)], registry=self.REG, config=sweep_config())
        assert result.by_executable(1)[0] == ("from-hot", "from-cold")

    def test_recv_any_reports_lowest_comp_id_on_overlap(self, sweep_config):
        def dual(world, env):
            mph = components_setup(world, "hot", "cold", env=env)
            if mph.local_proc_id("hot") == 1:
                mph.send("ambiguous", "reader", 0, tag=3)
            return None

        def reader(world, env):
            mph = components_setup(world, "reader", env=env)
            return mph.recv_any(tag=3)

        result = mph_run([(dual, 2), (reader, 1)], registry=self.REG, config=sweep_config())
        # "hot" is registered before "cold" -> reported on ties.
        assert result.by_executable(1)[0] == ("ambiguous", "hot", 1)
