"""Component-name rules (repro.core.names)."""

import pytest

from repro.core.names import KEYWORDS, check_unique, matches_prefix, validate_name
from repro.errors import RegistryError


class TestValidateName:
    @pytest.mark.parametrize(
        "name",
        ["atmosphere", "NCAR_atm", "UCLA_atm", "Ocean1", "ccsm-3.0", "a", "land_surface"],
    )
    def test_valid_names(self, name):
        assert validate_name(name) == name

    @pytest.mark.parametrize("name", sorted(KEYWORDS))
    def test_keywords_rejected(self, name):
        with pytest.raises(RegistryError, match="keyword"):
            validate_name(name)

    @pytest.mark.parametrize(
        "name", ["", "1ocean", "has space", "semi;colon", "a=b", "_lead", "bang!"]
    )
    def test_malformed_rejected(self, name):
        with pytest.raises(RegistryError, match="invalid component name|keyword"):
            validate_name(name)


class TestPrefix:
    def test_strict_prefix_matches(self):
        assert matches_prefix("Ocean1", "Ocean")
        assert matches_prefix("Ocean_b", "Ocean")

    def test_exact_name_is_not_an_instance(self):
        assert not matches_prefix("Ocean", "Ocean")

    def test_different_prefix(self):
        assert not matches_prefix("Atm1", "Ocean")


class TestUnique:
    def test_unique_passes(self):
        check_unique(["a", "b", "c"])

    def test_duplicates_named_in_error(self):
        with pytest.raises(RegistryError, match="ocean"):
            check_unique(["ocean", "atm", "ocean"])
