"""MPH_get_argument and the argument-field machinery (§4.4)."""

import pytest

from repro import components_setup, mph_run
from repro.core.arguments import ArgumentFields, convert
from repro.errors import ArgumentError


class TestArgumentFields:
    FIELDS = ArgumentFields(("infl", "outfl", "alpha=3", "beta=4.5", "debug=on"), "Ocean1")

    def test_key_lookup_int(self):
        assert self.FIELDS.get("alpha", int) == 3

    def test_key_lookup_float(self):
        assert self.FIELDS.get("beta", float) == 4.5

    def test_key_lookup_bool(self):
        assert self.FIELDS.get("debug", bool) is True

    def test_field_num_positional(self):
        assert self.FIELDS.get(field_num=1) == "infl"
        assert self.FIELDS.get(field_num=2) == "outfl"

    def test_natural_type_inference(self):
        assert self.FIELDS.get("alpha") == 3
        assert self.FIELDS.get("beta") == 4.5

    def test_typed_convenience_accessors(self):
        assert self.FIELDS.get_int("alpha") == 3
        assert self.FIELDS.get_real("beta") == 4.5
        assert self.FIELDS.get_string("alpha") == "3"
        assert self.FIELDS.get_bool("debug") is True

    def test_missing_key_raises_with_component_name(self):
        with pytest.raises(ArgumentError, match="Ocean1"):
            self.FIELDS.get("gamma", int)

    def test_missing_key_with_default(self):
        assert self.FIELDS.get("gamma", int, default=-1) == -1
        assert self.FIELDS.get("gamma", default=None) is None

    def test_field_num_out_of_range(self):
        with pytest.raises(ArgumentError, match="out of range"):
            self.FIELDS.get(field_num=9)

    def test_field_num_with_default(self):
        assert self.FIELDS.get(field_num=9, default="none") == "none"

    def test_both_key_and_field_num_rejected(self):
        with pytest.raises(ArgumentError, match="exactly one"):
            self.FIELDS.get("alpha", field_num=1)

    def test_neither_key_nor_field_num_rejected(self):
        with pytest.raises(ArgumentError, match="exactly one"):
            self.FIELDS.get()

    def test_has(self):
        assert self.FIELDS.has("alpha") and not self.FIELDS.has("alph")

    def test_first_match_wins(self):
        dup = ArgumentFields(("x=1", "x=2"))
        assert dup.get("x", int) == 1

    def test_value_containing_equals(self):
        f = ArgumentFields(("path=/a=b/c",))
        assert f.get("path", str) == "/a=b/c"


class TestConvert:
    def test_int_conversion_failure(self):
        with pytest.raises(ArgumentError, match="integer"):
            convert("4.5", int)

    def test_float_conversion_failure(self):
        with pytest.raises(ArgumentError, match="real"):
            convert("abc", float)

    @pytest.mark.parametrize("raw,expected", [
        ("on", True), ("off", False), ("true", True), ("False", False),
        ("YES", True), ("no", False), ("1", True), ("0", False),
        (".true.", True), (".false.", False),
    ])
    def test_bool_spellings(self, raw, expected):
        assert convert(raw, bool) is expected

    def test_bool_failure(self):
        with pytest.raises(ArgumentError, match="flag"):
            convert("maybe", bool)

    def test_unsupported_type(self):
        with pytest.raises(ArgumentError, match="unsupported"):
            convert("x", list)

    def test_natural_inference(self):
        assert convert("7", None) == 7
        assert convert("7.5", None) == 7.5
        assert convert("finite_volume", None) == "finite_volume"


class TestArgumentsThroughMph:
    """'this parameter passing feature also works for the components of
    multi-component executables' (§4.4)."""

    REG = """
BEGIN
Multi_Component_Begin
atm 0 0 res=T42 dt=1800
ocn 1 1 res=1deg
Multi_Component_End
END
"""

    def test_component_line_arguments(self):
        def program(world, env):
            mph = components_setup(world, "atm", "ocn", env=env)
            name = mph.comp_name()
            return (name, mph.get_argument("res"), mph.get_argument("dt", int, default=0))

        result = mph_run([(program, 2)], registry=self.REG)
        assert result.values() == [("atm", "T42", 1800), ("ocn", "1deg", 0)]

    def test_single_component_line_arguments(self):
        reg = "BEGIN\nviewer movie.mp4 fps=24\nEND"

        def program(world, env):
            mph = components_setup(world, "viewer", env=env)
            return (mph.get_argument(field_num=1), mph.get_argument("fps", int))

        result = mph_run([(program, 1)], registry=reg)
        assert result.values() == [("movie.mp4", 24)]

    def test_cross_component_argument_access(self):
        """The fields live in the shared layout: any process can read any
        component's registration arguments."""

        def program(world, env):
            mph = components_setup(world, "atm", "ocn", env=env)
            return mph.get_argument("res", component="ocn")

        result = mph_run([(program, 2)], registry=self.REG)
        assert set(result.values()) == {"1deg"}
