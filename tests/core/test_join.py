"""E5: MPH_comm_join semantics beyond the paper-example contract tests."""

import pytest

from repro import components_setup, mph_run
from repro.errors import JoinError

REG3 = "BEGIN\na\nb\nc\nEND"


def join_job(join_args_by_name, sizes=(2, 2, 2), registry=REG3, **kw):
    """Run a/b/c executables; each calls the joins listed for its name."""

    def make(name):
        def program(world, env):
            mph = components_setup(world, name, env=env)
            out = []
            for first, second in join_args_by_name.get(name, []):
                joined = mph.comm_join(first, second)
                out.append(None if joined is None else (joined.rank, joined.size))
            return out

        program.__name__ = name
        return program

    return mph_run(
        [(make("a"), sizes[0]), (make("b"), sizes[1]), (make("c"), sizes[2])],
        registry=registry,
        **kw,
    )


class TestJoinBasics:
    def test_member_ranks_and_size(self):
        result = join_job({"a": [("a", "b")], "b": [("a", "b")]})
        assert result.by_executable(0) == [[(0, 4)], [(1, 4)]]
        assert result.by_executable(1) == [[(2, 4)], [(3, 4)]]

    def test_nonmember_gets_none_without_participating(self):
        result = join_job({"a": [("a", "b")], "b": [("a", "b")], "c": [("a", "b")]})
        assert result.by_executable(2) == [[None], [None]]

    def test_multiple_joins_in_sequence(self):
        joins = [("a", "b"), ("a", "c")]
        result = join_job({"a": joins, "b": [("a", "b")], "c": [("a", "c")]})
        assert result.by_executable(0)[0] == [(0, 4), (0, 4)]

    def test_repeated_join_of_same_pair(self):
        joins = [("a", "b"), ("a", "b"), ("a", "b")]
        result = join_job({"a": joins, "b": joins})
        assert result.by_executable(1)[1] == [(3, 4)] * 3

    def test_join_comm_supports_p2p(self):
        def a(world, env):
            mph = components_setup(world, "a", env=env)
            joined = mph.comm_join("a", "b")
            if joined.rank == 0:
                joined.send("across", joined.size - 1, tag=4)
            return None

        def b(world, env):
            mph = components_setup(world, "b", env=env)
            joined = mph.comm_join("a", "b")
            if joined.rank == joined.size - 1:
                return joined.recv(source=0, tag=4)
            return None

        def c(world, env):
            components_setup(world, "c", env=env)
            return None

        result = mph_run([(a, 2), (b, 2), (c, 1)], registry=REG3)
        assert result.by_executable(1)[-1] == "across"


class TestJoinErrors:
    def test_self_join_rejected(self):
        with pytest.raises(JoinError, match="itself"):
            join_job({"a": [("a", "a")]})

    def test_unknown_component(self):
        from repro.errors import HandshakeError

        with pytest.raises(HandshakeError, match="unknown component"):
            join_job({"a": [("a", "zz")]})

    def test_overlapping_components_rejected(self):
        reg = """
BEGIN
Multi_Component_Begin
x 0 1
y 0 1
Multi_Component_End
END
"""

        def program(world, env):
            mph = components_setup(world, "x", "y", env=env)
            mph.comm_join("x", "y")

        with pytest.raises(JoinError, match="overlap"):
            mph_run([(program, 2)], registry=reg)


class TestJoinAcrossModes:
    def test_join_between_components_of_one_executable(self):
        """Joining two components of one multi-component executable."""
        reg = """
BEGIN
Multi_Component_Begin
x 0 1
y 2 3
Multi_Component_End
END
"""

        def program(world, env):
            mph = components_setup(world, "x", "y", env=env)
            joined = mph.comm_join("x", "y")
            return (joined.rank, joined.size)

        result = mph_run([(program, 4)], registry=reg)
        assert result.values() == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_join_with_instance(self):
        """Joining a multi-instance component with a plain one."""
        from repro import multi_instance

        reg = """
BEGIN
Multi_Instance_Begin
Run1 0 0
Run2 1 1
Multi_Instance_End
stats
END
"""

        def runs(world, env):
            mph = multi_instance(world, "Run", env=env)
            joined = mph.comm_join(mph.comp_name(), "stats")
            return (mph.comp_name(), joined.rank, joined.size)

        def stats(world, env):
            mph = components_setup(world, "stats", env=env)
            out = []
            for name in ("Run1", "Run2"):
                joined = mph.comm_join(name, "stats")
                out.append((name, joined.rank, joined.size))
            return out

        result = mph_run([(runs, 2), (stats, 1)], registry=reg)
        assert result.by_executable(0) == [("Run1", 0, 2), ("Run2", 0, 2)]
        assert result.by_executable(1)[0] == [("Run1", 1, 2), ("Run2", 1, 2)]
