"""E7: the inquiry functions of paper §5.3."""

import pytest

from repro import components_setup, mph_run
from repro.errors import HandshakeError, MPHError

REG = """
BEGIN
Multi_Component_Begin
alpha 0 1
beta  2 3
Multi_Component_End
gamma
END
"""


def run_job(fn_multi, fn_single, n_multi=4, n_single=2, **kw):
    def multi(world, env):
        mph = components_setup(world, "alpha", "beta", env=env)
        return fn_multi(mph)

    def single(world, env):
        mph = components_setup(world, "gamma", env=env)
        return fn_single(mph)

    return mph_run([(multi, n_multi), (single, n_single)], registry=REG, **kw)


class TestIdentity:
    def test_comp_name(self):
        result = run_job(lambda m: m.comp_name(), lambda m: m.comp_name())
        assert result.values() == ["alpha", "alpha", "beta", "beta", "gamma", "gamma"]

    def test_local_proc_id(self):
        result = run_job(lambda m: m.local_proc_id(), lambda m: m.local_proc_id())
        assert result.values() == [0, 1, 0, 1, 0, 1]

    def test_global_proc_id(self):
        result = run_job(lambda m: m.global_proc_id(), lambda m: m.global_proc_id())
        assert result.values() == list(range(6))

    def test_total_components(self):
        result = run_job(lambda m: m.total_components(), lambda m: m.total_components())
        assert set(result.values()) == {3}

    def test_num_executables(self):
        result = run_job(lambda m: m.num_executables(), lambda m: m.num_executables())
        assert set(result.values()) == {2}


class TestExecutableLimits:
    def test_exe_proc_limits(self):
        result = run_job(
            lambda m: (m.exe_low_proc_limit(), m.exe_up_proc_limit()),
            lambda m: (m.exe_low_proc_limit(), m.exe_up_proc_limit()),
        )
        assert result.by_executable(0) == [(0, 3)] * 4
        assert result.by_executable(1) == [(4, 5)] * 2

    def test_exe_id(self):
        result = run_job(lambda m: m.exe_id(), lambda m: m.exe_id())
        assert result.values() == [0, 0, 0, 0, 1, 1]


class TestComponentQueries:
    def test_component_size_anywhere(self):
        """Any process may ask about any component's size."""
        result = run_job(
            lambda m: m.component_size("gamma"), lambda m: m.component_size("alpha")
        )
        assert result.by_executable(0) == [2] * 4
        assert result.by_executable(1) == [2] * 2

    def test_global_id_translation(self):
        result = run_job(
            lambda m: m.global_id("beta", 1), lambda m: m.global_id("alpha", 0)
        )
        assert result.by_executable(0) == [3] * 4
        assert result.by_executable(1) == [0] * 2

    def test_global_id_out_of_range(self):
        with pytest.raises(HandshakeError, match="out of range"):
            run_job(lambda m: m.global_id("beta", 9), lambda m: None)

    def test_unknown_component_in_inquiry(self):
        with pytest.raises(HandshakeError, match="unknown component"):
            run_job(lambda m: m.component_size("delta"), lambda m: None)

    def test_layout_components_on(self):
        result = run_job(
            lambda m: [c.name for c in m.layout.components_on(2)],
            lambda m: [c.name for c in m.layout.components_on(4)],
        )
        assert result.values()[0] == ["beta"]
        assert result.values()[4] == ["gamma"]

    def test_layout_overlap_query(self):
        result = run_job(
            lambda m: m.layout.overlap("alpha", "beta"), lambda m: None
        )
        assert result.values()[0] is False


class TestAmbiguity:
    OVERLAP_REG = """
BEGIN
Multi_Component_Begin
alpha 0 1
beta  0 1
Multi_Component_End
END
"""

    def test_comp_name_ambiguous_on_overlap(self):
        def program(world, env):
            mph = components_setup(world, "alpha", "beta", env=env)
            try:
                mph.comp_name()
                return "no error"
            except MPHError as exc:
                return "ambiguous" if "several components" in str(exc) else "wrong msg"

        result = mph_run([(program, 2)], registry=self.OVERLAP_REG)
        assert set(result.values()) == {"ambiguous"}

    def test_local_proc_id_with_explicit_name(self):
        def program(world, env):
            mph = components_setup(world, "alpha", "beta", env=env)
            return (mph.local_proc_id("alpha"), mph.local_proc_id("beta"))

        result = mph_run([(program, 2)], registry=self.OVERLAP_REG)
        assert result.values() == [(0, 0), (1, 1)]

    def test_not_in_component_error(self):
        def program(world, env):
            mph = components_setup(world, "alpha", "beta", env=env)
            mph.component_comm("alpha")  # every rank is in alpha here — ok
            return True

        reg = """
BEGIN
Multi_Component_Begin
alpha 0 0
beta  1 1
Multi_Component_End
END
"""

        def program2(world, env):
            mph = components_setup(world, "alpha", "beta", env=env)
            if world.rank == 1:
                mph.component_comm("alpha")  # rank 1 is only in beta
            return True

        with pytest.raises(HandshakeError, match="not in component"):
            mph_run([(program2, 2)], registry=reg)
