"""The handshake across all five execution modes and its failure paths."""

import pytest

from repro import components_setup, mph_run, multi_instance
from repro.errors import HandshakeError
from repro.mpi.world import WorldConfig


def reporter(*names):
    """An executable that handshakes and reports its view."""

    def program(world, env):
        mph = components_setup(world, *names, env=env)
        return {
            "names": mph.comp_names(),
            "strategy": mph.strategy,
            "exe_id": mph.exe_id(),
            "total": mph.total_components(),
            "locals": {n: mph.local_proc_id(n) for n in mph.comp_names()},
            "comp_sizes": {n: mph.component_size(n) for n in mph.comp_names()},
        }

    program.__name__ = "_".join(n[:4] for n in names)
    return program


class TestScseMode:
    def test_single_component_single_executable(self):
        result = mph_run([(reporter("solo"), 3)], registry="BEGIN\nsolo\nEND")
        view = result.values()[0]
        assert view["names"] == ("solo",)
        assert view["total"] == 1
        assert view["strategy"] == "world_split"


class TestScmeMode:
    REG = "BEGIN\natm\nocn\ncpl\nEND"

    def test_three_executables(self, sweep_config):
        """Swept: the handshake's allgather/exchange must produce the
        same component map under every legal match order."""
        result = mph_run(
            [(reporter("atm"), 2), (reporter("ocn"), 3), (reporter("cpl"), 1)],
            registry=self.REG,
            config=sweep_config(),
        )
        assert result.by_executable(0)[0]["comp_sizes"] == {"atm": 2}
        assert result.by_executable(1)[2]["locals"] == {"ocn": 2}
        assert result.by_executable(2)[0]["total"] == 3

    def test_registry_order_irrelevant(self):
        """Paper §4.1: 'The order of file names are irrelevant.'"""
        reordered = "BEGIN\ncpl\natm\nocn\nEND"
        result = mph_run(
            [(reporter("atm"), 2), (reporter("ocn"), 1), (reporter("cpl"), 1)],
            registry=reordered,
        )
        assert result.by_executable(0)[0]["comp_sizes"] == {"atm": 2}

    def test_world_split_strategy_selected(self):
        result = mph_run(
            [(reporter("atm"), 2), (reporter("ocn"), 2)], registry="BEGIN\natm\nocn\nEND"
        )
        assert all(v["strategy"] == "world_split" for v in result.values())

    def test_arbitrary_names(self):
        """Paper §4.1: 'One may use NCAR_atm, or UCLA_atm, or any other
        names.'"""
        result = mph_run(
            [(reporter("NCAR_atm"), 1), (reporter("UCLA_ocn"), 1)],
            registry="BEGIN\nNCAR_atm\nUCLA_ocn\nEND",
        )
        assert result.values()[0]["names"] == ("NCAR_atm",)


class TestMcseMode:
    REG = (
        "BEGIN\nMulti_Component_Begin\natm 0 1\nocn 2 4\ncpl 5 5\nMulti_Component_End\nEND"
    )

    def test_master_program_dispatch(self):
        master = reporter("atm", "ocn", "cpl")
        result = mph_run([(master, 6)], registry=self.REG)
        values = result.values()
        assert values[0]["names"] == ("atm",)
        assert values[2]["names"] == ("ocn",)
        assert values[5]["names"] == ("cpl",)
        assert all(v["strategy"] == "exe_then_comp" for v in values)

    def test_local_ids_follow_ranges(self):
        master = reporter("atm", "ocn", "cpl")
        values = mph_run([(master, 6)], registry=self.REG).values()
        assert values[3]["locals"] == {"ocn": 1}

    def test_size_mismatch_detected(self):
        master = reporter("atm", "ocn", "cpl")
        with pytest.raises(HandshakeError, match="disagree"):
            mph_run([(master, 8)], registry=self.REG)


class TestMcmeMode:
    REG = """
BEGIN
Multi_Component_Begin
atm 0 3
lnd 0 3
chm 4 5
Multi_Component_End
Multi_Component_Begin
ocn 0 1
ice 2 3
Multi_Component_End
cpl
END
"""

    def exes(self):
        return [
            (reporter("atm", "lnd", "chm"), 6),
            (reporter("ocn", "ice"), 4),
            (reporter("cpl"), 1),
        ]

    def test_overlapping_components_on_one_rank(self, sweep_config):
        result = mph_run(self.exes(), registry=self.REG, config=sweep_config())
        rank0 = result.values()[0]
        assert rank0["names"] == ("atm", "lnd")
        assert rank0["locals"] == {"atm": 0, "lnd": 0}

    def test_chemistry_exclusive(self):
        result = mph_run(self.exes(), registry=self.REG)
        assert result.values()[4]["names"] == ("chm",)

    def test_six_components_total(self):
        result = mph_run(self.exes(), registry=self.REG)
        assert result.values()[0]["total"] == 6

    def test_setup_name_order_irrelevant(self):
        """The keyword names in the setup call may come in any order."""
        result = mph_run(
            [
                (reporter("chm", "atm", "lnd"), 6),
                (reporter("ice", "ocn"), 4),
                (reporter("cpl"), 1),
            ],
            registry=self.REG,
        )
        assert result.values()[0]["names"] == ("atm", "lnd")

    def test_rank_policy_invariance(self):
        """E13: the handshake result must not depend on how the launcher
        dealt global ranks to executables."""
        block = mph_run(self.exes(), registry=self.REG, rank_policy="block")
        cyclic = mph_run(self.exes(), registry=self.REG, rank_policy="round_robin")
        for exe in range(3):
            assert [v["names"] for v in block.by_executable(exe)] == [
                v["names"] for v in cyclic.by_executable(exe)
            ]
            assert [v["locals"] for v in block.by_executable(exe)] == [
                v["locals"] for v in cyclic.by_executable(exe)
            ]


class TestMimeMode:
    REG = """
BEGIN
Multi_Instance_Begin
Ocean1 0 1
Ocean2 2 3
Multi_Instance_End
stats
END
"""

    def test_instances_get_expanded_names(self, sweep_config):
        def ocean(world, env):
            mph = multi_instance(world, "Ocean", env=env)
            return (mph.comp_name(), mph.local_proc_id())

        result = mph_run(
            [(ocean, 4), (reporter("stats"), 1)],
            registry=self.REG,
            config=sweep_config(),
        )
        assert result.by_executable(0) == [
            ("Ocean1", 0),
            ("Ocean1", 1),
            ("Ocean2", 0),
            ("Ocean2", 1),
        ]

    def test_prefix_must_match_block(self):
        def ocean(world, env):
            multi_instance(world, "Atlantic", env=env)

        with pytest.raises(HandshakeError, match="prefix"):
            mph_run([(ocean, 4), (reporter("stats"), 1)], registry=self.REG)

    def test_instance_size_mismatch(self):
        def ocean(world, env):
            multi_instance(world, "Ocean", env=env)

        with pytest.raises(HandshakeError, match="disagree"):
            mph_run([(ocean, 6), (reporter("stats"), 1)], registry=self.REG)


class TestHandshakeFailures:
    def test_unregistered_name(self):
        with pytest.raises(HandshakeError, match="do not appear"):
            mph_run([(reporter("ghost"), 1)], registry="BEGIN\nocean\nEND")

    def test_wrong_grouping(self):
        """Names registered, but in different executables than declared."""
        reg = "BEGIN\natm\nocn\nEND"
        with pytest.raises(HandshakeError, match="not together"):
            mph_run([(reporter("atm", "ocn"), 2)], registry=reg)

    def test_missing_executable(self):
        reg = "BEGIN\natm\nocn\nEND"
        with pytest.raises(HandshakeError, match="no executable declared"):
            mph_run([(reporter("atm"), 2)], registry=reg)

    def test_component_limit_enforced(self):
        names = tuple(f"c{i}" for i in range(11))
        reg = "BEGIN\n" + "\n".join(
            ["Multi_Component_Begin"] + [f"c{i} {i} {i}" for i in range(11)] + ["Multi_Component_End"]
        ) + "\nEND"
        with pytest.raises(Exception, match="limit"):
            mph_run([(reporter(*names), 11)], registry=reg)

    def test_no_registry_at_all(self):
        from repro.errors import MPHError

        with pytest.raises(MPHError, match="no registration file"):
            mph_run([(reporter("atm"), 1)])

    def test_malformed_registry_fails_whole_job(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            mph_run(
                [(reporter("atm"), 2), (reporter("ocn"), 2)],
                registry="BEGIN\natm\nocn\n",  # missing END
            )

    def test_duplicate_setup_names_rejected(self):
        def program(world, env):
            components_setup(world, "a", "a", env=env)

        with pytest.raises(HandshakeError, match="duplicate"):
            mph_run([(program, 1)], registry="BEGIN\na\nEND")

    def test_executable_that_never_calls_mph_detected_as_deadlock(self):
        """An executable missing its MPH call hangs the allgather; the
        substrate's deadlock detector reports it instead of hanging."""
        from repro.errors import DeadlockError

        def silent(world, env):
            world.recv(source=world.rank)  # never handshakes

        with pytest.raises(DeadlockError):
            mph_run(
                [(reporter("atm"), 1), (silent, 1)],
                registry="BEGIN\natm\nsilent\nEND",
                config=WorldConfig(deadlock_grace=0.3),
                timeout=20,
            )
