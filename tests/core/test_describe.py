"""Layout.describe(): the human-readable layout report."""

from repro import components_setup, mph_run

REG = """
BEGIN
Multi_Component_Begin
atmosphere 0 3
land       0 3
chemistry  4 5
Multi_Component_End
coupler
END
"""


def describe_job():
    def multi(world, env):
        mph = components_setup(world, "atmosphere", "land", "chemistry", env=env)
        return mph.layout.describe()

    def coupler(world, env):
        mph = components_setup(world, "coupler", env=env)
        return mph.layout.describe()

    return mph_run([(multi, 6), (coupler, 2)], registry=REG)


class TestDescribe:
    def test_identical_on_every_process(self):
        result = describe_job()
        assert len(set(result.values())) == 1

    def test_lists_every_component_with_size(self):
        text = describe_job().values()[0]
        assert "atmosphere" in text and "4 procs" in text
        assert "chemistry" in text and "2 procs" in text
        assert "coupler" in text

    def test_marks_overlap(self):
        text = describe_job().values()[0]
        assert "(overlapping)" in text

    def test_contiguous_rank_spans_compacted(self):
        text = describe_job().values()[0]
        assert "world ranks 0-3" in text

    def test_executable_section(self):
        text = describe_job().values()[0]
        assert "exe 0  multi_component" in text
        assert "exe 1  single" in text

    def test_fields_shown(self):
        reg = "BEGIN\nviewer movie.mp4 fps=24\nEND"

        def viewer(world, env):
            mph = components_setup(world, "viewer", env=env)
            return mph.layout.describe()

        result = mph_run([(viewer, 1)], registry=reg)
        assert "fields: movie.mp4 fps=24" in result.values()[0]

    def test_noncontiguous_ranks_listed(self):
        def a(world, env):
            return components_setup(world, "a", env=env).layout.describe()

        def b(world, env):
            return components_setup(world, "b", env=env).layout.describe()

        result = mph_run(
            [(a, 2), (b, 2)], registry="BEGIN\na\nb\nEND", rank_policy="round_robin"
        )
        text = result.values()[0]
        assert "0,2" in text and "1,3" in text
