"""Ensemble support: online moments, collection protocol, dynamic control
(paper §2.5 / §4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import components_setup, mph_run, multi_instance
from repro.core.ensemble import (
    EnsembleCollector,
    EnsembleMember,
    EnsembleStats,
    OnlineMoments,
)
from repro.errors import MPHError


class TestOnlineMoments:
    def test_mean_of_two_samples(self):
        om = OnlineMoments()
        om.push(np.array([1.0, 2.0]))
        om.push(np.array([3.0, 4.0]))
        np.testing.assert_array_equal(om.mean, [2.0, 3.0])

    def test_variance_matches_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.normal(size=(40, 6))
        om = OnlineMoments()
        for s in samples:
            om.push(s)
        np.testing.assert_allclose(om.mean, samples.mean(axis=0), atol=1e-12)
        np.testing.assert_allclose(om.variance, samples.var(axis=0), atol=1e-12)
        np.testing.assert_allclose(om.std, samples.std(axis=0), atol=1e-12)

    def test_single_sample_zero_variance(self):
        om = OnlineMoments()
        om.push(np.array([5.0]))
        np.testing.assert_array_equal(om.variance, [0.0])

    def test_empty_rejected(self):
        with pytest.raises(MPHError, match="no samples"):
            OnlineMoments().mean

    def test_shape_mismatch_rejected(self):
        om = OnlineMoments()
        om.push(np.zeros(3))
        with pytest.raises(MPHError, match="shape"):
            om.push(np.zeros(4))

    @given(st.lists(st.lists(st.floats(-100, 100), min_size=3, max_size=3), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_batch(self, rows):
        samples = np.array(rows)
        om = OnlineMoments()
        for s in samples:
            om.push(s)
        np.testing.assert_allclose(om.mean, samples.mean(axis=0), atol=1e-9)
        np.testing.assert_allclose(om.variance, samples.var(axis=0), atol=1e-9)


class TestEnsembleStats:
    STATS = EnsembleStats(
        step=0,
        fields={
            "A": np.array([1.0, 5.0]),
            "B": np.array([3.0, 1.0]),
            "C": np.array([2.0, 9.0]),
        },
    )

    def test_mean(self):
        np.testing.assert_array_equal(self.STATS.mean, [2.0, 5.0])

    def test_median_is_pointwise(self):
        np.testing.assert_array_equal(self.STATS.median, [2.0, 5.0])

    def test_min_max(self):
        np.testing.assert_array_equal(self.STATS.minimum, [1.0, 1.0])
        np.testing.assert_array_equal(self.STATS.maximum, [3.0, 9.0])

    def test_percentile(self):
        np.testing.assert_array_equal(self.STATS.percentile(0), self.STATS.minimum)
        np.testing.assert_array_equal(self.STATS.percentile(100), self.STATS.maximum)

    def test_spread(self):
        assert self.STATS.spread() == pytest.approx((2.0 + 8.0) / 2)

    def test_std(self):
        np.testing.assert_allclose(
            self.STATS.std, np.stack(list(self.STATS.fields.values())).std(axis=0)
        )


REG = """
BEGIN
Multi_Instance_Begin
Run1 0 1
Run2 2 3
Run3 4 5
Multi_Instance_End
stats
END
"""


def ensemble_job(member_steps=3, **kw):
    def run(world, env):
        mph = multi_instance(world, "Run", env=env)
        member = EnsembleMember(mph, "stats")
        scale = float(mph.comp_name()[-1])
        controls = []
        for step in range(member_steps):
            member.report(step, np.full(4, scale * (step + 1)))
            controls.append(member.receive_control())
        return controls

    def stats(world, env):
        mph = components_setup(world, "stats", env=env)
        collector = EnsembleCollector.for_prefix(mph, "Run")
        out = []
        for step in range(member_steps):
            s = collector.collect(step)
            out.append(s)
            collector.send_control(
                {name: {"gain": i} for i, name in enumerate(collector.instance_names)}
            )
        return (out, collector.time_moments.mean if mph.component_comm().rank == 0 else None)

    return mph_run([(run, 6), (stats, 1)], registry=REG, **kw)


class TestEnsembleProtocol:
    def test_collect_gathers_all_instances(self):
        result = ensemble_job()
        stats_out, _ = result.by_executable(1)[0]
        first = stats_out[0]
        assert sorted(first.fields) == ["Run1", "Run2", "Run3"]
        np.testing.assert_array_equal(first.fields["Run2"], np.full(4, 2.0))

    def test_nonlinear_statistics_per_step(self):
        result = ensemble_job()
        stats_out, _ = result.by_executable(1)[0]
        step2 = stats_out[2]  # fields are 3, 6, 9
        assert float(step2.median[0]) == 6.0
        assert step2.spread() == pytest.approx(6.0)

    def test_per_instance_control_delivered_to_all_ranks(self):
        result = ensemble_job()
        run_values = result.by_executable(0)
        # Run1 procs (local 0 and 1) both see gain=0; Run3 procs gain=2.
        assert run_values[0] == [{"gain": 0}] * 3
        assert run_values[1] == [{"gain": 0}] * 3
        assert run_values[4] == [{"gain": 2}] * 3

    def test_time_moments_accumulate(self):
        result = ensemble_job()
        _, time_mean = result.by_executable(1)[0]
        # ensemble means per step: 2, 4, 6 -> time mean 4
        np.testing.assert_allclose(time_mean, np.full(4, 4.0))

    def test_out_of_step_detected(self):
        def run(world, env):
            mph = multi_instance(world, "Run", env=env)
            member = EnsembleMember(mph, "stats")
            member.report(99, np.zeros(2))  # wrong step on purpose
            return None

        def stats(world, env):
            mph = components_setup(world, "stats", env=env)
            collector = EnsembleCollector.for_prefix(mph, "Run")
            collector.collect(0)

        with pytest.raises(MPHError, match="out of step"):
            mph_run([(run, 6), (stats, 1)], registry=REG)

    def test_for_prefix_discovers_instances(self):
        def run(world, env):
            mph = multi_instance(world, "Run", env=env)
            member = EnsembleMember(mph, "stats")
            member.report(0, np.zeros(1))
            member.receive_control()
            return None

        def stats(world, env):
            mph = components_setup(world, "stats", env=env)
            collector = EnsembleCollector.for_prefix(mph, "Run")
            names = list(collector.instance_names)
            collector.collect(0)
            collector.broadcast_same_control({})
            return names

        result = mph_run([(run, 6), (stats, 1)], registry=REG)
        assert result.by_executable(1)[0] == ["Run1", "Run2", "Run3"]

    def test_empty_collector_rejected(self):
        with pytest.raises(MPHError, match="at least one"):
            EnsembleCollector(None, [])
