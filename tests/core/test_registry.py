"""The registration file: parsing, validation, round-trips
(repro.core.registry)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.registry import (
    MAX_COMPONENTS_PER_EXECUTABLE,
    MAX_FIELDS,
    ComponentSpec,
    MultiComponentEntry,
    MultiInstanceEntry,
    Registry,
    SingleComponentEntry,
)
from repro.errors import RegistryError

SCME_TEXT = """
BEGIN
atmosphere
ocean
land
ice
coupler
END
"""

MCSE_TEXT = """
BEGIN
Multi_Component_Begin
atmosphere 0 15
ocean 16 31
coupler 32 35
Multi_Component_End
END
"""

MCME_TEXT = """
BEGIN
Multi_Component_Begin ! 1st multi-comp exec
atmosphere 0 15
land       0 15      ! overlap with atm
chemistry  16 19
Multi_Component_End
Multi_Component_Begin ! 2nd multi-comp exec
ocean 0 15
ice   16 31
Multi_Component_End
coupler              ! a single-comp exec
END
"""

MIME_TEXT = """
BEGIN
Multi_Instance_Begin ! a multi-instance exec
Ocean1 0 15  infl outfl logf alpha=3 debug=on
Ocean2 16 31 inf2 outf2 beta=4.5 debug=off
Ocean3 32 47 inf3 dynamics=finite_volume
Multi_Instance_End
statistics           ! a single-component exec
END
"""


class TestPaperRegistries:
    """The four registration files printed in the paper parse exactly."""

    def test_scme_example(self):
        reg = Registry.from_text(SCME_TEXT)
        assert reg.component_names == ("atmosphere", "ocean", "land", "ice", "coupler")
        assert all(isinstance(e, SingleComponentEntry) for e in reg.entries)

    def test_mcse_example(self):
        reg = Registry.from_text(MCSE_TEXT)
        (entry,) = reg.entries
        assert isinstance(entry, MultiComponentEntry)
        assert entry.nprocs == 36
        assert not entry.has_overlap
        assert reg.spec("ocean").local_indices() == range(16, 32)

    def test_mcme_example(self):
        reg = Registry.from_text(MCME_TEXT)
        assert len(reg.entries) == 3
        first = reg.entries[0]
        assert isinstance(first, MultiComponentEntry)
        assert first.has_overlap
        assert ("atmosphere", "land") in first.overlapping_pairs()
        assert reg.component_names == (
            "atmosphere",
            "land",
            "chemistry",
            "ocean",
            "ice",
            "coupler",
        )

    def test_mime_example(self):
        reg = Registry.from_text(MIME_TEXT)
        inst = reg.entries[0]
        assert isinstance(inst, MultiInstanceEntry)
        assert inst.component_names == ("Ocean1", "Ocean2", "Ocean3")
        assert inst.nprocs == 48
        assert reg.spec("Ocean1").fields == ("infl", "outfl", "logf", "alpha=3", "debug=on")
        assert reg.spec("Ocean3").fields == ("inf3", "dynamics=finite_volume")


class TestQueries:
    def test_component_id_is_file_order(self):
        reg = Registry.from_text(SCME_TEXT)
        assert reg.component_id("atmosphere") == 0
        assert reg.component_id("coupler") == 4

    def test_unknown_name_helpful_error(self):
        reg = Registry.from_text(SCME_TEXT)
        with pytest.raises(RegistryError, match="registered names"):
            reg.component_id("visualization")

    def test_total_components_expands_instances(self):
        assert Registry.from_text(MIME_TEXT).total_components == 4

    def test_entry_of(self):
        reg = Registry.from_text(MCME_TEXT)
        idx, entry = reg.entry_of("ice")
        assert idx == 1 and "ocean" in entry.component_names

    def test_load_passthrough_and_text(self):
        reg = Registry.from_text(SCME_TEXT)
        assert Registry.load(reg) is reg
        assert Registry.load(SCME_TEXT) == reg

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "processors_map.in"
        path.write_text(SCME_TEXT)
        assert Registry.load(path) == Registry.from_text(SCME_TEXT)
        assert Registry.load(str(path)) == Registry.from_text(SCME_TEXT)


class TestGrammarErrors:
    def test_missing_begin(self):
        with pytest.raises(RegistryError, match="expected 'BEGIN'"):
            Registry.from_text("atmosphere\nEND\n")

    def test_missing_end(self):
        with pytest.raises(RegistryError, match="no 'END'"):
            Registry.from_text("BEGIN\natmosphere\n")

    def test_content_after_end(self):
        with pytest.raises(RegistryError, match="after 'END'"):
            Registry.from_text("BEGIN\nocean\nEND\nstray\n")

    def test_end_inside_block_rejected(self):
        with pytest.raises(RegistryError, match="END inside"):
            Registry.from_text("BEGIN\nMulti_Component_Begin\nocean 0 3\nEND\n")

    def test_unterminated_block(self):
        with pytest.raises(RegistryError, match="unterminated"):
            Registry.from_text("BEGIN\nMulti_Component_Begin\nocean 0 3\n")

    def test_mismatched_block_end(self):
        with pytest.raises(RegistryError, match="closes a"):
            Registry.from_text(
                "BEGIN\nMulti_Component_Begin\nocean 0 3\nMulti_Instance_End\nEND\n"
            )

    def test_nested_blocks_rejected(self):
        with pytest.raises(RegistryError, match="nested"):
            Registry.from_text(
                "BEGIN\nMulti_Component_Begin\nMulti_Component_Begin\nEND\n"
            )

    def test_end_without_begin_block(self):
        with pytest.raises(RegistryError, match="without a matching Begin"):
            Registry.from_text("BEGIN\nMulti_Component_End\nEND\n")

    def test_empty_block_rejected(self):
        with pytest.raises(RegistryError, match="empty"):
            Registry.from_text("BEGIN\nMulti_Component_Begin\nMulti_Component_End\nEND\n")

    def test_empty_registry_rejected(self):
        with pytest.raises(RegistryError, match="no components"):
            Registry.from_text("BEGIN\nEND\n")

    def test_missing_range_in_block(self):
        with pytest.raises(RegistryError, match="processor range"):
            Registry.from_text("BEGIN\nMulti_Component_Begin\nocean\nMulti_Component_End\nEND\n")

    def test_inverted_range(self):
        with pytest.raises(RegistryError, match="invalid processor range"):
            Registry.from_text(
                "BEGIN\nMulti_Component_Begin\nocean 5 2\nMulti_Component_End\nEND\n"
            )

    def test_error_messages_carry_line_numbers(self):
        with pytest.raises(RegistryError, match=":3"):
            Registry.from_text("BEGIN\nocean\nocean 5 2 extra stuff beyond limit x y\nEND\n")


class TestSemanticValidation:
    def test_duplicate_names_across_entries(self):
        with pytest.raises(RegistryError, match="duplicate"):
            Registry.from_text("BEGIN\nocean\nocean\nEND\n")

    def test_too_many_fields(self):
        with pytest.raises(RegistryError, match="exceed"):
            Registry.from_text("BEGIN\nocean a b c d e f\nEND\n")

    def test_max_fields_allowed(self):
        reg = Registry.from_text("BEGIN\nocean a b c d e\nEND\n")
        assert len(reg.spec("ocean").fields) == MAX_FIELDS

    def test_component_limit_per_executable(self):
        lines = "\n".join(f"c{i} {i} {i}" for i in range(MAX_COMPONENTS_PER_EXECUTABLE + 1))
        with pytest.raises(RegistryError, match="limit is 10"):
            Registry.from_text(f"BEGIN\nMulti_Component_Begin\n{lines}\nMulti_Component_End\nEND\n")

    def test_overlapping_instances_rejected(self):
        text = (
            "BEGIN\nMulti_Instance_Begin\nOcean1 0 3\nOcean2 2 5\nMulti_Instance_End\nEND\n"
        )
        with pytest.raises(RegistryError, match="overlaps"):
            Registry.from_text(text)

    def test_overlapping_components_allowed(self):
        reg = Registry.from_text(
            "BEGIN\nMulti_Component_Begin\na 0 3\nb 0 3\nMulti_Component_End\nEND\n"
        )
        assert reg.entries[0].has_overlap

    def test_uncovered_indices_reported(self):
        reg = Registry.from_text(
            "BEGIN\nMulti_Component_Begin\na 0 1\nb 4 5\nMulti_Component_End\nEND\n"
        )
        assert reg.entries[0].uncovered_indices() == [2, 3]


class TestComponentSpec:
    def test_range_requires_both_bounds(self):
        with pytest.raises(RegistryError, match="together"):
            ComponentSpec("ocean", low=0)

    def test_nprocs(self):
        assert ComponentSpec("ocean", 4, 7).nprocs == 4
        assert ComponentSpec("ocean").nprocs is None

    def test_local_indices_without_range(self):
        with pytest.raises(RegistryError, match="no registered range"):
            ComponentSpec("ocean").local_indices()

    def test_single_entry_refuses_range(self):
        with pytest.raises(RegistryError, match="launcher"):
            SingleComponentEntry(ComponentSpec("ocean", 0, 3))


class TestRoundTrip:
    @pytest.mark.parametrize("text", [SCME_TEXT, MCSE_TEXT, MCME_TEXT, MIME_TEXT])
    def test_paper_examples_roundtrip(self, text):
        reg = Registry.from_text(text)
        assert Registry.from_text(reg.to_text()) == reg

    def test_to_file_from_file(self, tmp_path):
        reg = Registry.from_text(MCME_TEXT)
        path = tmp_path / "map.in"
        reg.to_file(path)
        assert Registry.from_file(path) == reg


# -- property-based round-trip over generated registries ----------------------

_names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in ("BEGIN", "END")
)
_fields = st.lists(
    st.from_regex(r"[A-Za-z0-9_.=\-]{1,8}", fullmatch=True).filter(
        lambda s: not s.startswith(("!", "#"))
    ),
    max_size=5,
)


@st.composite
def _single_entry(draw):
    return SingleComponentEntry(ComponentSpec(draw(_names), fields=tuple(draw(_fields))))


@st.composite
def _multi_component_entry(draw):
    k = draw(st.integers(1, 4))
    specs = []
    cursor = 0
    for _ in range(k):
        overlap = draw(st.booleans()) and cursor > 0
        low = draw(st.integers(0, max(cursor - 1, 0))) if overlap else cursor
        width = draw(st.integers(1, 4))
        high = low + width - 1
        specs.append(ComponentSpec(draw(_names), low, high, tuple(draw(_fields))))
        cursor = max(cursor, high + 1)
    return MultiComponentEntry(tuple(specs))


@st.composite
def _multi_instance_entry(draw):
    k = draw(st.integers(1, 4))
    specs = []
    cursor = 0
    for _ in range(k):
        width = draw(st.integers(1, 4))
        specs.append(ComponentSpec(draw(_names), cursor, cursor + width - 1, tuple(draw(_fields))))
        cursor += width
    return MultiInstanceEntry(tuple(specs))


_registries = st.lists(
    st.one_of(_single_entry(), _multi_component_entry(), _multi_instance_entry()),
    min_size=1,
    max_size=4,
)


class TestRegistryProperties:
    @given(entries=_registries)
    def test_render_parse_roundtrip(self, entries):
        names = [n for e in entries for n in e.component_names]
        if len(set(names)) != len(names):
            return  # duplicate names are invalid by construction; skip
        reg = Registry(entries)
        assert Registry.from_text(reg.to_text()) == reg

    @given(entries=_registries)
    def test_component_ids_dense_and_ordered(self, entries):
        names = [n for e in entries for n in e.component_names]
        if len(set(names)) != len(names):
            return
        reg = Registry(entries)
        assert [reg.component_id(n) for n in reg.component_names] == list(
            range(reg.total_components)
        )
