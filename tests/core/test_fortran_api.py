"""The Fortran-flavoured API (repro.core.fortran_api): the paper's call
signatures, line for line."""

import pytest

from repro import mph_run
from repro.core import fortran_api as F
from repro.errors import MPHError

MCME_REG = """
BEGIN
Multi_Component_Begin
atmosphere 0 1
land       0 1
Multi_Component_End
coupler
END
"""


class TestSetupBinding:
    def test_setup_returns_exe_world(self):
        def atm_land(world, env):
            mpi_exec_world = F.MPH_components_setup(
                world, name1="atmosphere", name2="land", env=env
            )
            return mpi_exec_world.size

        def coupler(world, env):
            coupler_world = F.MPH_components_setup(world, name1="coupler", env=env)
            return coupler_world.size

        result = mph_run([(atm_land, 2), (coupler, 1)], registry=MCME_REG)
        assert result.by_executable(0) == [2, 2]
        assert result.by_executable(1) == [1]

    def test_handle_is_per_process(self):
        """Two executables use the module concurrently without clashing."""

        def atm_land(world, env):
            F.MPH_components_setup(world, name1="atmosphere", name2="land", env=env)
            return sorted(n for n in ("atmosphere", "land") if F.PROC_in_component(n))

        def coupler(world, env):
            F.MPH_components_setup(world, name1="coupler", env=env)
            return F.MPH_comp_name()

        result = mph_run([(atm_land, 2), (coupler, 1)], registry=MCME_REG)
        assert result.by_executable(0)[0] == ["atmosphere", "land"]
        assert result.by_executable(1)[0] == "coupler"

    def test_unbound_handle_raises(self):
        with pytest.raises(MPHError, match="no MPH handle"):
            F.MPH_comp_name()

    def test_sparse_name_arguments(self):
        """Names may use any keyword slots, as in Fortran optional args."""
        reg = """
BEGIN
Multi_Component_Begin
a 0 0
b 1 1
c 2 2
Multi_Component_End
END
"""

        def program(world, env):
            F.MPH_components_setup(world, name1="a", name3="c", name2="b", env=env)
            return F.MPH_total_components()

        result = mph_run([(program, 3)], registry=reg)
        assert set(result.values()) == {3}


class TestPaperListings:
    REG = "BEGIN\natmosphere\nocean\nEND"

    def test_section_4_1_listing(self):
        def atmosphere(world, env):
            atmosphere_world = F.MPH_components_setup(world, name1="atmosphere", env=env)
            return (atmosphere_world.rank, F.MPH_comp_name(), F.MPH_global_proc_id())

        def ocean(world, env):
            F.MPH_components_setup(world, name1="ocean", env=env)
            return F.MPH_local_proc_id()

        result = mph_run([(atmosphere, 2), (ocean, 2)], registry=self.REG)
        assert result.by_executable(0)[1] == (1, "atmosphere", 1)
        assert result.by_executable(1) == [0, 1]

    def test_section_5_listings(self):
        def atmosphere(world, env):
            F.MPH_components_setup(world, name1="atmosphere", env=env)
            joined = F.MPH_comm_join("atmosphere", "ocean")
            if F.MPH_local_proc_id() == 0:
                F.MPH_send("field", "ocean", 1, tag=9)
            return (
                joined.rank,
                F.MPH_exe_low_proc_limit(),
                F.MPH_exe_up_proc_limit(),
                F.MPH_Global_World().size,
                F.MPH_global_id("ocean", 1),
            )

        def ocean(world, env):
            F.MPH_components_setup(world, name1="ocean", env=env)
            F.MPH_comm_join("atmosphere", "ocean")
            if F.MPH_local_proc_id() == 1:
                return F.MPH_recv("atmosphere", 0, tag=9)
            return None

        result = mph_run([(atmosphere, 2), (ocean, 2)], registry=self.REG)
        assert result.by_executable(0)[0] == (0, 0, 1, 4, 3)
        assert result.by_executable(1)[1] == "field"

    def test_multi_instance_and_arguments(self):
        reg = """
BEGIN
Multi_Instance_Begin
Ocean1 0 0 infile1 alpha=3
Ocean2 1 1 infile2 beta=4.5
Multi_Instance_End
statistics
END
"""

        def ocean(world, env):
            ocean_world = F.MPH_multi_instance(world, "Ocean", env=env)
            return (
                F.MPH_comp_name(),
                F.MPH_get_argument("alpha", int, default=-1),
                F.MPH_get_argument(field_num=1),
                ocean_world.size,
            )

        def statistics(world, env):
            F.MPH_components_setup(world, name1="statistics", env=env)
            return F.MPH_total_components()

        result = mph_run([(ocean, 2), (statistics, 1)], registry=reg)
        assert result.by_executable(0) == [
            ("Ocean1", 3, "infile1", 2),
            ("Ocean2", -1, "infile2", 2),
        ]
        assert result.by_executable(1) == [3]

    def test_redirect_output_listing(self, tmp_path):
        def atmosphere(world, env):
            F.MPH_components_setup(world, name1="atmosphere", env=env)
            path = F.MPH_redirect_output("atmosphere")
            print("fortran-style hello")
            return path.name if path else None

        def ocean(world, env):
            F.MPH_components_setup(world, name1="ocean", env=env)
            return None

        result = mph_run(
            [(atmosphere, 1), (ocean, 1)], registry=self.REG, workdir=tmp_path
        )
        assert result.by_executable(0)[0] == "atmosphere.log"
        assert "fortran-style hello" in (tmp_path / "atmosphere.log").read_text()

    def test_help_lists_entry_points(self):
        text = F.MPH_help()
        for name in ("MPH_components_setup", "MPH_comm_join", "PROC_in_component"):
            assert name in text
