"""E15: dynamic component processor reallocation (paper §9, future work b)."""

import numpy as np
import pytest

from repro import components_setup, mph_run
from repro.core.migration import block_rows, migrate, redistribute_block
from repro.errors import HandshakeError

OLD_REG = """
BEGIN
Multi_Component_Begin
atm 0 3
lnd 4 5
Multi_Component_End
cpl
END
"""

# After migration: land grows from 2 to 3 processors at atm's expense.
NEW_REG = """
BEGIN
Multi_Component_Begin
atm 0 2
lnd 3 5
Multi_Component_End
cpl
END
"""


class TestBlockRows:
    def test_even_split(self):
        assert [block_rows(8, 4, r) for r in range(4)] == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_to_leading_ranks(self):
        assert [block_rows(10, 3, r) for r in range(3)] == [(0, 4), (4, 7), (7, 10)]

    def test_covers_everything(self):
        for n, p in [(7, 2), (13, 5), (4, 4)]:
            spans = [block_rows(n, p, r) for r in range(p)]
            assert spans[0][0] == 0 and spans[-1][1] == n
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b == c


class TestMigrate:
    def test_rehandshake_moves_processors(self):
        def multi(world, env):
            mph = components_setup(world, "atm", "lnd", env=env)
            before = mph.comp_names()
            new = migrate(mph, NEW_REG)
            return (before, new.comp_names())

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            new = migrate(mph, NEW_REG)
            return (mph.comp_names(), new.comp_names())

        result = mph_run([(multi, 6), (cpl, 1)], registry=OLD_REG)
        values = result.by_executable(0)
        # executable-local proc 3 moves from atm to lnd
        assert values[3] == (("atm",), ("lnd",))
        # proc 0 stays in atm
        assert values[0] == (("atm",), ("atm",))

    def test_component_set_must_be_preserved(self):
        bad = """
BEGIN
Multi_Component_Begin
atm 0 5
Multi_Component_End
cpl
END
"""

        def multi(world, env):
            mph = components_setup(world, "atm", "lnd", env=env)
            migrate(mph, bad)

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            migrate(mph, bad)

        with pytest.raises(HandshakeError):
            mph_run([(multi, 6), (cpl, 1)], registry=OLD_REG)

    def test_data_redistribution(self):
        """A block-decomposed field survives the migration intact."""
        n_rows = 12

        def multi(world, env):
            mph = components_setup(world, "atm", "lnd", env=env)
            block = None
            if mph.in_component("atm"):
                comm = mph.component_comm("atm")
                start, stop = block_rows(n_rows, comm.size, comm.rank)
                block = np.arange(start, stop, dtype=float)[:, None] * np.ones(3)
            new = migrate(mph, NEW_REG)
            new_block = redistribute_block(mph, new, "atm", block, n_rows)
            if new.in_component("atm"):
                return new_block[:, 0].tolist()
            return None

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            migrate(mph, NEW_REG)
            return None

        result = mph_run([(multi, 6), (cpl, 1)], registry=OLD_REG)
        values = result.by_executable(0)
        # new atm = 3 procs, 12 rows -> 4 rows each, contents preserved
        assert values[0] == [0.0, 1.0, 2.0, 3.0]
        assert values[1] == [4.0, 5.0, 6.0, 7.0]
        assert values[2] == [8.0, 9.0, 10.0, 11.0]
        assert values[3] is None  # proc 3 now runs lnd

    def test_new_handle_fully_functional(self):
        """Post-migration communicators work for collectives and messaging."""

        def multi(world, env):
            mph = components_setup(world, "atm", "lnd", env=env)
            new = migrate(mph, NEW_REG)
            name = new.comp_name()
            total = new.component_comm().allreduce(1)
            if name == "lnd" and new.local_proc_id() == 0:
                new.send("lnd ready", "cpl", 0, tag=5)
            return (name, total)

        def cpl(world, env):
            mph = components_setup(world, "cpl", env=env)
            new = migrate(mph, NEW_REG)
            return new.recv("lnd", 0, tag=5)

        result = mph_run([(multi, 6), (cpl, 1)], registry=OLD_REG)
        assert result.by_executable(0)[0] == ("atm", 3)
        assert result.by_executable(0)[5] == ("lnd", 3)
        assert result.by_executable(1)[0] == "lnd ready"
