"""Shared utilities: text lexing and timers (repro.util)."""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.text import parse_proc_range, parse_scalar, strip_comment, tokenize_line
from repro.util.timing import CountingTimer, Timer


class TestStripComment:
    def test_bang_comment(self):
        assert strip_comment("atmosphere 0 15   ! overlap with atm") == "atmosphere 0 15"

    def test_hash_comment(self):
        assert strip_comment("ocean # python style") == "ocean"

    def test_earliest_comment_char_wins(self):
        assert strip_comment("a # b ! c") == "a"
        assert strip_comment("a ! b # c") == "a"

    def test_no_comment(self):
        assert strip_comment("plain line") == "plain line"

    def test_comment_only_line(self):
        assert strip_comment("! all comment") == ""

    def test_trailing_whitespace_removed(self):
        assert strip_comment("token   ") == "token"


class TestTokenize:
    def test_fields(self):
        assert tokenize_line("Ocean1 0 15 infl alpha=3") == ["Ocean1", "0", "15", "infl", "alpha=3"]

    def test_blank_and_comment_lines_empty(self):
        assert tokenize_line("") == []
        assert tokenize_line("   ") == []
        assert tokenize_line("! note") == []

    def test_comment_mid_line(self):
        assert tokenize_line("coupler ! single") == ["coupler"]


class TestParseScalar:
    def test_int(self):
        assert parse_scalar("3") == 3 and isinstance(parse_scalar("3"), int)

    def test_float(self):
        assert parse_scalar("4.5") == 4.5

    def test_string(self):
        assert parse_scalar("finite_volume") == "finite_volume"

    def test_negative(self):
        assert parse_scalar("-7") == -7

    @given(st.integers(-10**9, 10**9))
    def test_int_roundtrip(self, n):
        assert parse_scalar(str(n)) == n


class TestParseProcRange:
    def test_basic(self):
        assert parse_proc_range(["16", "31"]) == (16, 31)

    def test_single_proc(self):
        assert parse_proc_range(["4", "4"]) == (4, 4)

    def test_missing_token(self):
        with pytest.raises(ValueError, match="low high"):
            parse_proc_range(["5"])

    def test_noninteger(self):
        with pytest.raises(ValueError, match="integers"):
            parse_proc_range(["a", "b"])

    def test_inverted(self):
        with pytest.raises(ValueError, match="invalid"):
            parse_proc_range(["5", "2"])

    def test_negative(self):
        with pytest.raises(ValueError, match="invalid"):
            parse_proc_range(["-1", "2"])


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_timer_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first

    def test_counting_timer_accumulates(self):
        ct = CountingTimer()
        for _ in range(3):
            with ct:
                time.sleep(0.002)
        assert ct.count == 3
        assert ct.total >= 0.006
        assert ct.mean == pytest.approx(ct.total / 3)

    def test_counting_timer_mean_empty(self):
        assert CountingTimer().mean == 0.0
