"""Smoke tests: every shipped example must run to completion.

The examples double as the paper's worked scenarios; running their
``main()`` here keeps them from rotting as the library evolves.  Output is
captured (not asserted line-by-line — the examples' own assertions do the
real checking).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        return module
    finally:
        sys.modules.pop(spec.name, None)


def test_all_examples_discovered():
    assert set(EXAMPLES) >= {
        "quickstart",
        "pcm_style_single_executable",
        "coupled_climate",
        "ensemble_simulation",
        "global_warming_scenarios",
        "multichannel_logging",
        "cross_site_coupling",
    }


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # any stray outputs land in tmp
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
