"""Interface predictors (repro.coupling.predictors)."""

import numpy as np
import pytest

from repro.coupling import ConstantPredictor, LinearPredictor, QuadraticPredictor
from repro.errors import CouplingError


def fed(predictor, vectors):
    predictor.initialize()
    for v in vectors:
        predictor.initialize_solution_step()
        predictor.update(np.asarray(v, dtype=float))
        predictor.finalize_solution_step()
    return predictor


class TestHistoryHandling:
    def test_no_history_predicts_none(self):
        p = ConstantPredictor()
        p.initialize()
        assert p.predict() is None

    def test_update_outside_step_rejected(self):
        p = ConstantPredictor()
        p.initialize()
        with pytest.raises(CouplingError, match="outside a coupling step"):
            p.update(np.zeros(2))

    def test_history_length_bounded_by_order(self):
        p = fed(LinearPredictor(), [[0.0], [1.0], [2.0], [3.0]])
        assert p.history_length == 2  # order + 1

    def test_prediction_is_a_copy(self):
        p = fed(ConstantPredictor(), [[1.0, 2.0]])
        out = p.predict()
        out[0] = 99.0
        np.testing.assert_array_equal(p.predict(), [1.0, 2.0])


class TestExactness:
    """Each predictor must reproduce its own polynomial order exactly."""

    def test_constant(self):
        p = fed(ConstantPredictor(), [[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(p.predict(), [3.0, 4.0])

    def test_linear_on_linear_sequence(self):
        seq = [[1.0 + 2.0 * k] for k in range(3)]
        p = fed(LinearPredictor(), seq)
        np.testing.assert_allclose(p.predict(), [1.0 + 2.0 * 3])

    def test_quadratic_on_quadratic_sequence(self):
        seq = [[float(k * k)] for k in range(4)]
        p = fed(QuadraticPredictor(), seq)
        np.testing.assert_allclose(p.predict(), [16.0])

    def test_linear_formula(self):
        p = fed(LinearPredictor(), [[1.0], [4.0]])
        np.testing.assert_allclose(p.predict(), [2 * 4.0 - 1.0])

    def test_quadratic_formula(self):
        p = fed(QuadraticPredictor(), [[1.0], [2.0], [5.0]])
        np.testing.assert_allclose(p.predict(), [3 * 5.0 - 3 * 2.0 + 1.0])


class TestGracefulDegradation:
    """Before the full history exists, predict at the best order available."""

    def test_quadratic_acts_constant_on_one_step(self):
        p = fed(QuadraticPredictor(), [[7.0]])
        np.testing.assert_array_equal(p.predict(), [7.0])

    def test_quadratic_acts_linear_on_two_steps(self):
        p = fed(QuadraticPredictor(), [[1.0], [3.0]])
        np.testing.assert_allclose(p.predict(), [5.0])
