"""Interface field packing (repro.coupling.interface)."""

import numpy as np
import pytest

from repro.coupling import InterfaceSpec, join_specs
from repro.errors import CouplingError


class TestInterfaceSpec:
    def test_pack_unpack_roundtrip(self):
        spec = InterfaceSpec([("temperature", (4,)), ("flux", (2, 3))])
        fields = {
            "temperature": np.arange(4.0),
            "flux": np.arange(6.0).reshape(2, 3),
        }
        vec = spec.pack(fields)
        assert vec.shape == (10,)
        out = spec.unpack(vec)
        np.testing.assert_array_equal(out["temperature"], fields["temperature"])
        np.testing.assert_array_equal(out["flux"], fields["flux"])

    def test_layout_is_declaration_order_c_order(self):
        """The bitwise-reproducibility contract: field declaration order,
        C order within a field — never dict insertion order of the data."""
        spec = InterfaceSpec([("b", (2,)), ("a", (2,))])
        vec = spec.pack({"a": np.array([3.0, 4.0]), "b": np.array([1.0, 2.0])})
        np.testing.assert_array_equal(vec, [1.0, 2.0, 3.0, 4.0])

    def test_slice_of(self):
        spec = InterfaceSpec([("t", (4,)), ("f", (2, 3))])
        assert spec.slice_of("t") == slice(0, 4)
        assert spec.slice_of("f") == slice(4, 10)

    def test_scalar_field(self):
        spec = InterfaceSpec([("alpha", ())])
        assert spec.size == 1
        vec = spec.pack({"alpha": np.asarray(7.0)})
        assert spec.unpack(vec)["alpha"].shape == ()

    def test_names_and_shape(self):
        spec = InterfaceSpec([("t", (4,)), ("f", (2, 3))])
        assert spec.names == ("t", "f")
        assert spec.shape("f") == (2, 3)

    def test_zeros(self):
        assert InterfaceSpec([("t", (3,))]).zeros().tolist() == [0.0, 0.0, 0.0]

    def test_equality_and_hash(self):
        a = InterfaceSpec([("t", (3,))])
        b = InterfaceSpec([("t", (3,))])
        c = InterfaceSpec([("t", (4,))])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_empty_rejected(self):
        with pytest.raises(CouplingError, match="at least one field"):
            InterfaceSpec([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CouplingError, match="duplicate"):
            InterfaceSpec([("t", (2,)), ("t", (3,))])

    def test_pack_missing_field(self):
        spec = InterfaceSpec([("t", (2,)), ("f", (2,))])
        with pytest.raises(CouplingError, match="missing"):
            spec.pack({"t": np.zeros(2)})

    def test_pack_wrong_shape(self):
        spec = InterfaceSpec([("t", (2,))])
        with pytest.raises(CouplingError, match="shape"):
            spec.pack({"t": np.zeros(3)})

    def test_unpack_wrong_length(self):
        spec = InterfaceSpec([("t", (2,))])
        with pytest.raises(CouplingError, match="unpack"):
            spec.unpack(np.zeros(3))

    def test_unknown_field(self):
        spec = InterfaceSpec([("t", (2,))])
        with pytest.raises(CouplingError, match="unknown"):
            spec.slice_of("nope")
        with pytest.raises(CouplingError, match="unknown"):
            spec.shape("nope")


class TestJoinSpecs:
    def test_prefixes_keep_names_unique(self):
        a = InterfaceSpec([("t", (2,))])
        b = InterfaceSpec([("t", (3,))])
        joint = join_specs(a, b)
        assert joint.names == ("p0/t", "p1/t")
        assert joint.size == 5

    def test_joint_layout_concatenates(self):
        a = InterfaceSpec([("u", (2,))])
        b = InterfaceSpec([("v", (2,))])
        joint = join_specs(a, b)
        vec = joint.pack({"p0/u": np.array([1.0, 2.0]), "p1/v": np.array([3.0, 4.0])})
        np.testing.assert_array_equal(vec, [1.0, 2.0, 3.0, 4.0])
