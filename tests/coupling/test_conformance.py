"""Coupling-loop conformance across execution backends.

The tentpole contract: the implicit coupling loop — solver on the coupler,
participants behind ``MPH_comm_join`` command servers — runs *unchanged*
on the thread and process backends (CI adds the process+shm leg via
``--mpi-transport shm``), and its numbers are bitwise identical to the
same solver iterating the same operator serially, because all transport
does is move the bytes.

Run with ``--mpi-backend thread|process|both`` to select backends; the
session-scoped leak fixture asserts zero surviving shm segments.
"""

import numpy as np
import pytest

from repro import components_setup
from repro.climate.ccsm import CCSMConfig, MODEL_KINDS, run_ccsm
from repro.coupling import (
    AbsoluteNorm,
    CouplingDriver,
    GaussSeidelSolver,
    InterfaceSpec,
    JacobiSolver,
    LinearParticipant,
    LinearPredictor,
    Participant,
    serve_participant,
)
from repro.launcher.job import mph_run

REG = "BEGIN\ncoupler\np1\np2\nEND"

N = 6
A1 = 0.5 * np.diag(np.linspace(1.0, 0.4, N))
B1 = np.linspace(0.5, 1.0, N)
A2 = np.diag(np.linspace(1.0, 0.7, N))
B2 = np.full(N, 0.1)
SPEC_FIELDS = [("u", (N,))]
TOL = 1e-9


def serial_reference(solver, n_steps):
    """The same solver iterating the same ring operator, no MPI."""

    def op(x):
        return A2 @ (A1 @ x + B1) + B2

    solver.initialize()
    out = []
    x0 = np.zeros(N)
    for _ in range(n_steps):
        solver.initialize_solution_step()
        res = solver.solve_solution_step(x0, op)
        solver.finalize_solution_step()
        out.append(res)
        x0 = res.x  # the driver warm-starts from the converged vector
    solver.finalize()
    return out


def coupler_gs(world, env):
    mph = components_setup(world, "coupler", env=env)
    spec = InterfaceSpec(SPEC_FIELDS)
    driver = CouplingDriver(
        mph,
        GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80),
        [Participant("p1", spec), Participant("p2", spec)],
    )
    driver.initialize()
    results = driver.solve(2)
    driver.close()
    return [
        (r.iterations, r.converged, r.x.tobytes(), tuple(r.residual_norms))
        for r in results
    ]


def participant_p1(world, env):
    mph = components_setup(world, "p1", env=env)
    half = N // 2
    rows = slice(0, half) if mph.local_proc_id() == 0 else slice(half, N)
    return serve_participant(mph, LinearParticipant(A1, B1, rows=rows))


def participant_p2(world, env):
    mph = components_setup(world, "p2", env=env)
    return serve_participant(mph, LinearParticipant(A2, B2))


class TestImplicitLoopConformance:
    def test_gauss_seidel_matches_serial_bitwise(self, backend_config):
        """Iterate-to-convergence over joins == the serial iteration,
        bit for bit, on every backend (multi-rank participant included)."""
        result = mph_run(
            [(coupler_gs, 1), (participant_p1, 2), (participant_p2, 1)],
            registry=REG,
            config=backend_config,
            timeout=120.0,
        )
        got = result.by_executable(0)[0]
        ref = serial_reference(
            GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80), 2
        )
        assert len(got) == 2
        for (iters, converged, xbytes, norms), expect in zip(got, ref):
            assert converged and expect.converged
            assert iters == expect.iterations
            assert xbytes == expect.x.tobytes()
            assert norms == tuple(expect.residual_norms)

        # The participants saw exactly the protocol the driver claims:
        # one evaluation per solver iteration, both steps committed.
        total_iters = sum(r[0] for r in got)
        for exe in (1, 2):
            for summary in result.by_executable(exe):
                assert summary["steps"] == 2
                assert summary["evaluations"] == total_iters
                assert summary["degraded"] == 0


class TestPredictorWarmStart:
    @staticmethod
    def _coupler(predictor):
        def run(world, env):
            mph = components_setup(world, "coupler", env=env)
            spec = InterfaceSpec(SPEC_FIELDS)
            solver = GaussSeidelSolver(AbsoluteNorm(1e-8), max_iterations=80)
            driver = CouplingDriver(
                mph,
                solver,
                [Participant("p1", spec), Participant("p2", spec)],
                predictor=LinearPredictor() if predictor else None,
            )
            driver.initialize()
            driver.solve(4)
            driver.close()
            return list(solver.iterations_per_step)

        return run

    @staticmethod
    def _drifting_p1(world, env):
        mph = components_setup(world, "p1", env=env)

        class Drifting(LinearParticipant):
            def begin_step(self, step):
                # The interface's fixed point moves linearly in step — a
                # linear predictor extrapolates it exactly.
                self.offset = B1 + 0.5 * step * np.ones(N)

        return serve_participant(mph, Drifting(A1, B1))

    def test_predictor_cuts_iterations_on_drifting_interface(self, backend_config):
        with_pred, without = (
            mph_run(
                [
                    (self._coupler(predictor), 1),
                    (self._drifting_p1, 1),
                    (participant_p2, 1),
                ],
                registry=REG,
                config=backend_config,
                timeout=120.0,
            ).by_executable(0)[0]
            for predictor in (True, False)
        )
        # Step 0 has no history in either run: identical cold start.
        assert with_pred[0] == without[0]
        # Once two converged steps exist, linear extrapolation is exact on
        # the linearly drifting fixed point: the warm-started steps are
        # near-instant and strictly cheaper than the predictor-less run.
        assert sum(with_pred[2:]) < sum(without[2:])
        assert max(with_pred[2:]) <= 4


class TestJacobiWave:
    @staticmethod
    def _coupler(world, env):
        mph = components_setup(world, "coupler", env=env)
        spec = InterfaceSpec(SPEC_FIELDS)
        driver = CouplingDriver(
            mph,
            JacobiSolver(AbsoluteNorm(TOL), max_iterations=200),
            [Participant("p1", spec), Participant("p2", spec)],
        )
        driver.initialize()
        (res,) = driver.solve(1)
        driver.close()
        return (res.iterations, res.converged, res.x.tobytes())

    def test_parallel_mode_converges_on_joint_iterate(self, backend_config):
        """Jacobi posts every participant's evaluation before collecting
        any (the concurrent wave); the joint fixed point satisfies the
        cross equations."""
        result = mph_run(
            [(self._coupler, 1), (participant_p1, 2), (participant_p2, 1)],
            registry=REG,
            config=backend_config,
            timeout=120.0,
        )
        iters, converged, xbytes = result.by_executable(0)[0]
        assert converged
        z = np.frombuffer(xbytes)
        u, v = z[:N], z[N:]
        # Ring: u is p1's input (p2's mapped output), v is p2's input.
        np.testing.assert_allclose(v, A1 @ u + B1, atol=1e-8)
        np.testing.assert_allclose(u, A2 @ v + B2, atol=1e-8)
        # Both participants evaluated once per iteration — the wave shape.
        for exe in (1, 2):
            for summary in result.by_executable(exe):
                assert summary["evaluations"] == iters


class TestSubcycledCCSM:
    def test_implicit_subcycled_exchange(self, backend_config):
        """The CCSM implicit coupler with per-component sub-cycling over
        join communicators — the full stack on every backend."""
        cfg = CCSMConfig(
            shapes={
                "atmosphere": (6, 12),
                "ocean": (5, 8),
                "land": (4, 6),
                "ice": (3, 6),
            },
            procs={kind: 1 for kind in MODEL_KINDS} | {"coupler": 1},
            nsteps=2,
            exchange="join",
            coupling="implicit",
            coupling_tol=1e-8,
            subcycle={"ocean": 2, "atmosphere": 3},
        )
        diags = run_ccsm("scme", cfg, config=backend_config, timeout=120.0)
        coupler = diags["coupler"]
        assert coupler["coupling_solver"] == "gauss_seidel"
        assert coupler["coupling_converged"] == [True, True]
        assert all(i >= 1 for i in coupler["coupling_iterations"])
        assert coupler["max_exchange_residual"] < 1e-10
        for kind in MODEL_KINDS:
            series = np.array(diags[kind]["mean_T"])
            assert len(series) == cfg.nsteps + 1
            assert np.all(series > 150.0) and np.all(series < 350.0)
