"""Chaos: rank death mid-coupling-iteration.

A participant crashing between ``eval`` and its gather must never hang
the coupled job.  With ``allow_partial=False`` the coupler revokes
everything and every survivor fails fast with the dead rank named; with
``allow_partial=True`` the survivors shrink the world
(:meth:`MPH.shrink_world`), freeze the dead interface at its last
evaluated output, and finish the run degraded.

Hang protection: every job runs under ``mph_run``'s wall-clock budget
(the substrate's deadlock detector usually fires far earlier and names
the blocked operation) — pytest-timeout is not available in this
environment.  Crash points are seeded through the ``fault_seed`` sweep so
CI covers several interruption points of the iteration.
"""

import numpy as np

from repro import components_setup
from repro.coupling import (
    AbsoluteNorm,
    CouplingDriver,
    GaussSeidelSolver,
    InterfaceSpec,
    LinearParticipant,
    Participant,
    serve_participant,
)
from repro.errors import CouplingError, ProcessFailedError, RevokedError
from repro.launcher.job import mph_run
from repro.mpi import SimulatedCrash

REG = "BEGIN\ncoupler\np1\np2\nEND"

N = 4
A1 = 0.5 * np.diag(np.linspace(1.0, 0.4, N))
B1 = np.linspace(0.5, 1.0, N)
A2 = np.diag(np.linspace(0.9, 0.6, N))
B2 = np.full(N, 0.25)
SPEC = [("u", (N,))]

#: World ranks under block assignment of [(coupler,1), (p1,1), (p2,1)].
P2_WORLD_RANK = 2


class CrashingParticipant(LinearParticipant):
    """Dies fail-stop on its *crash_at*-th evaluation (1-based)."""

    def __init__(self, matrix, offset, crash_at):
        super().__init__(matrix, offset)
        self.crash_at = crash_at

    def evaluate(self, x):
        if self.evaluations + 1 == self.crash_at:
            raise SimulatedCrash("participant died mid-iteration")
        return super().evaluate(x)


def make_driver(mph, allow_partial, max_iterations=60):
    spec = InterfaceSpec(SPEC)
    driver = CouplingDriver(
        mph,
        GaussSeidelSolver(AbsoluteNorm(1e-8), max_iterations=max_iterations),
        [Participant("p1", spec), Participant("p2", spec)],
        allow_partial=allow_partial,
    )
    driver.initialize()
    return driver


def p1_server(allow_partial):
    def p1(world, env):
        mph = components_setup(world, "p1", env=env)
        try:
            return serve_participant(
                mph, LinearParticipant(A1, B1), allow_partial=allow_partial
            )
        except (ProcessFailedError, RevokedError):
            return "aborted"

    return p1


def p2_crasher(crash_at, allow_partial=False):
    def p2(world, env):
        mph = components_setup(world, "p2", env=env)
        return serve_participant(
            mph, CrashingParticipant(A2, B2, crash_at), allow_partial=allow_partial
        )

    return p2


class TestFailFast:
    def test_crash_mid_iteration_names_dead_rank(self, fault_seed):
        """allow_partial=False: the coupler surfaces ProcessFailedError
        carrying the dead participant's world rank, the healthy
        participant aborts instead of hanging, and the job finishes
        within its budget — at every seeded crash point."""
        crash_at = 2 + fault_seed  # sweep the interruption point

        def coupler(world, env):
            mph = components_setup(world, "coupler", env=env)
            driver = make_driver(mph, allow_partial=False)
            try:
                driver.solve(2)
            except ProcessFailedError as exc:
                return ("failed", sorted(exc.failed_ranks))
            except RevokedError:
                return ("revoked", [])
            return ("completed", [])

        result = mph_run(
            [(coupler, 1), (p1_server(False), 1), (p2_crasher(crash_at), 1)],
            registry=REG,
            timeout=60.0,
        )
        kind, ranks = result.by_executable(0)[0]
        assert kind == "failed"
        assert ranks == [P2_WORLD_RANK]
        assert result.by_executable(1)[0] == "aborted"
        assert isinstance(result.procs[P2_WORLD_RANK].exception, SimulatedCrash)


class TestDegradedContinuation:
    def test_allow_partial_shrinks_and_finishes(self, fault_seed):
        """allow_partial=True: the world shrinks around the dead
        participant, its interface freezes at the last evaluated output,
        and the remaining coupling steps complete converged."""
        crash_at = 3 + fault_seed

        def coupler(world, env):
            mph = components_setup(world, "coupler", env=env)
            driver = make_driver(mph, allow_partial=True)
            results = driver.solve(3)
            driver.close()
            return {
                "converged": [r.converged for r in results],
                "degraded_events": list(driver.degraded_events),
                "survivor_mph": mph is not driver.mph,
            }

        result = mph_run(
            [
                (coupler, 1),
                (p1_server(True), 1),
                (p2_crasher(crash_at, allow_partial=True), 1),
            ],
            registry=REG,
            timeout=60.0,
        )
        out = result.by_executable(0)[0]
        assert out["converged"] == [True, True, True]
        assert out["degraded_events"] == [("p2",)]
        assert out["survivor_mph"]  # the driver rebuilt its MPH handle
        p1_summary = result.by_executable(1)[0]
        assert p1_summary["degraded"] == 1
        assert p1_summary["steps"] == 3
        assert isinstance(result.procs[P2_WORLD_RANK].exception, SimulatedCrash)

    def test_frozen_interface_is_last_evaluated_output(self):
        """After the shrink, the dead participant's contribution to the
        fixed point is exactly its last gathered output — the degraded
        operator is constant in that slot, so the survivors' converged
        vector satisfies x = A1-path applied to the frozen value."""
        crash_at = 4

        def coupler(world, env):
            mph = components_setup(world, "coupler", env=env)
            driver = make_driver(mph, allow_partial=True)
            results = driver.solve(2)
            frozen = driver._proxies[1].last_output
            driver.close()
            return (results[-1].x, frozen)

        result = mph_run(
            [
                (coupler, 1),
                (p1_server(True), 1),
                (p2_crasher(crash_at, allow_partial=True), 1),
            ],
            registry=REG,
            timeout=60.0,
        )
        x_final, frozen = result.by_executable(0)[0]
        # Ring: p2's frozen output is the iterate the solver converges on.
        np.testing.assert_allclose(x_final, frozen, atol=1e-12)

    def test_crash_before_any_output_is_clean_error(self):
        """A participant that dies before producing any interface data
        cannot be frozen: the coupler gets a CouplingError (not a hang),
        and close() still releases the healthy participant."""

        def coupler(world, env):
            mph = components_setup(world, "coupler", env=env)
            driver = make_driver(mph, allow_partial=True)
            try:
                driver.solve(1)
            except CouplingError as exc:
                driver.close()
                return ("coupling-error", "nothing to freeze" in str(exc))
            return ("completed", False)

        result = mph_run(
            [
                (coupler, 1),
                (p1_server(True), 1),
                (p2_crasher(1, allow_partial=True), 1),
            ],
            registry=REG,
            timeout=60.0,
        )
        kind, matched = result.by_executable(0)[0]
        assert kind == "coupling-error" and matched
        p1_summary = result.by_executable(1)[0]
        assert p1_summary["degraded"] == 1
        assert p1_summary["steps"] == 0
