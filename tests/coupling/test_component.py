"""The coupling-component lifecycle contract (repro.coupling.component)."""

import pytest

from repro.coupling import Component
from repro.errors import CouplingError


class TestLifecycleOrdering:
    def test_happy_path(self):
        c = Component()
        c.initialize()
        for expected in (0, 1, 2):
            c.initialize_solution_step()
            assert c.step_index == expected
            c.finalize_solution_step()
        c.finalize()

    def test_double_initialize_rejected(self):
        c = Component()
        c.initialize()
        with pytest.raises(CouplingError, match="twice"):
            c.initialize()

    def test_step_before_initialize_rejected(self):
        with pytest.raises(CouplingError, match="before initialize"):
            Component().initialize_solution_step()

    def test_nested_step_rejected(self):
        c = Component()
        c.initialize()
        c.initialize_solution_step()
        with pytest.raises(CouplingError, match="still open"):
            c.initialize_solution_step()

    def test_close_without_open_rejected(self):
        c = Component()
        c.initialize()
        with pytest.raises(CouplingError, match="without an open step"):
            c.finalize_solution_step()

    def test_finalize_inside_step_rejected(self):
        c = Component()
        c.initialize()
        c.initialize_solution_step()
        with pytest.raises(CouplingError, match="inside coupling step"):
            c.finalize()

    def test_reinitialize_after_finalize(self):
        """finalize returns the component to its pre-initialize state, so
        a driver can reuse it for a second coupled calculation."""
        c = Component()
        c.initialize()
        c.finalize()
        c.initialize()
        c.initialize_solution_step()
        c.finalize_solution_step()
        c.finalize()
