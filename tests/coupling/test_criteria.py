"""Convergence criteria and their and/or composition (repro.coupling.criteria)."""

import numpy as np
import pytest

from repro.coupling import (
    AbsoluteNorm,
    And,
    InterfaceSpec,
    IterationBound,
    Or,
    RelativeNorm,
)
from repro.errors import CouplingError


def opened(criterion):
    criterion.initialize()
    criterion.initialize_solution_step()
    return criterion


class TestAbsoluteNorm:
    def test_threshold(self):
        c = opened(AbsoluteNorm(tol=1e-3))
        c.update(np.array([1.0, 0.0]))
        assert not c.is_satisfied()
        c.update(np.array([1e-4, 0.0]))
        assert c.is_satisfied()

    def test_no_residual_yet(self):
        assert not opened(AbsoluteNorm(tol=1.0)).is_satisfied()

    def test_per_field(self):
        spec = InterfaceSpec([("t", (2,)), ("f", (2,))])
        c = opened(AbsoluteNorm(tol=1e-3, field="f"))
        # t is far from converged, f is converged: the field criterion
        # only watches f.
        c.update(np.array([9.0, 9.0, 1e-5, 0.0]), spec)
        assert c.is_satisfied()

    def test_field_without_spec_is_an_error(self):
        c = opened(AbsoluteNorm(tol=1e-3, field="f"))
        c.update(np.array([0.0, 0.0]))
        with pytest.raises(CouplingError, match="InterfaceSpec"):
            c.is_satisfied()

    def test_step_reset_clears_history(self):
        c = opened(AbsoluteNorm(tol=1e-3))
        c.update(np.array([1e-5]))
        assert c.is_satisfied()
        c.finalize_solution_step()
        c.initialize_solution_step()
        assert not c.is_satisfied()
        assert c.iterations() == 0

    def test_update_outside_step_rejected(self):
        c = AbsoluteNorm(tol=1.0)
        c.initialize()
        with pytest.raises(CouplingError, match="outside a coupling step"):
            c.update(np.zeros(2))

    def test_bad_tol(self):
        with pytest.raises(CouplingError, match="positive"):
            AbsoluteNorm(tol=0.0)

    def test_max_norm(self):
        c = opened(AbsoluteNorm(tol=0.5, ord=np.inf))
        c.update(np.array([0.4, 0.4, 0.4]))
        assert c.is_satisfied()  # 2-norm would be ~0.69


class TestRelativeNorm:
    def test_relative_to_first_residual(self):
        c = opened(RelativeNorm(tol=1e-2))
        c.update(np.array([100.0]))
        assert not c.is_satisfied()
        c.update(np.array([2.0]))
        assert not c.is_satisfied()
        c.update(np.array([0.5]))
        assert c.is_satisfied()  # 0.5 <= 0.01 * 100

    def test_zero_first_residual_is_converged(self):
        c = opened(RelativeNorm(tol=1e-2))
        c.update(np.zeros(3))
        assert c.is_satisfied()

    def test_tol_range(self):
        with pytest.raises(CouplingError):
            RelativeNorm(tol=1.5)
        with pytest.raises(CouplingError):
            RelativeNorm(tol=0.0)


class TestIterationBound:
    def test_counts_iterations(self):
        c = opened(IterationBound(3))
        for k in range(3):
            assert not c.is_satisfied()
            c.update(np.array([1.0]))
        assert c.is_satisfied()

    def test_needs_positive_n(self):
        with pytest.raises(CouplingError):
            IterationBound(0)


class TestComposition:
    def test_or_safety_valve(self):
        c = opened(AbsoluteNorm(tol=1e-12) | IterationBound(2))
        assert isinstance(c, Or)
        c.update(np.array([5.0]))
        assert not c.is_satisfied()
        c.update(np.array([5.0]))
        assert c.is_satisfied()  # the bound fired, not the norm

    def test_and_requires_both(self):
        c = opened(AbsoluteNorm(tol=1.0) & RelativeNorm(tol=0.5))
        assert isinstance(c, And)
        c.update(np.array([0.9]))  # absolute ok, relative not (r0 == rk)
        assert not c.is_satisfied()
        c.update(np.array([0.4]))
        assert c.is_satisfied()

    def test_lifecycle_fans_out(self):
        a, b = AbsoluteNorm(tol=1.0), IterationBound(1)
        c = a & b
        c.initialize()
        c.initialize_solution_step()
        c.update(np.array([2.0]))
        assert a.iterations() == 1 and b.iterations() == 1
        c.finalize_solution_step()
        c.initialize_solution_step()
        assert a.iterations() == 0 and b.iterations() == 0
        c.finalize_solution_step()
        c.finalize()

    def test_nested_tree(self):
        c = opened((AbsoluteNorm(tol=1e-9) & RelativeNorm(tol=0.5)) | IterationBound(4))
        for _ in range(4):
            c.update(np.array([1.0]))
        assert c.is_satisfied()

    def test_too_few_children(self):
        with pytest.raises(CouplingError, match="at least two"):
            And(AbsoluteNorm(tol=1.0))
