"""Schedule-independence properties of the coupling loop.

The solvers are plain deterministic numpy and the driver's protocol fixes
every reduction order (gather in rank order, concatenate in declaration
order), so a coupled solve must produce *bitwise identical* interface
vectors no matter how the message schedule interleaves.  These tests
sweep match-schedule seeds (``schedule_sweep`` marker) across both
progress engines and compare every run against the serial iteration,
byte for byte.
"""

import numpy as np
import pytest

from repro import components_setup
from repro.coupling import (
    AbsoluteNorm,
    AitkenSolver,
    CouplingDriver,
    GaussSeidelSolver,
    IQNILSSolver,
    InterfaceSpec,
    LinearParticipant,
    Participant,
    serve_participant,
)
from repro.launcher.job import mph_run
from repro.mpi.world import WorldConfig

REG = "BEGIN\ncoupler\np1\np2\nEND"

N = 6
A1 = 0.55 * np.diag(np.linspace(1.0, 0.3, N))
B1 = np.linspace(-0.5, 1.5, N)
A2 = np.diag(np.linspace(0.95, 0.6, N))
B2 = np.linspace(0.2, 0.3, N)
TOL = 1e-9
N_STEPS = 2


def make_solver(name):
    criterion = AbsoluteNorm(TOL)
    if name == "gauss_seidel":
        return GaussSeidelSolver(criterion, max_iterations=80)
    if name == "aitken":
        return AitkenSolver(criterion, max_iterations=80)
    return IQNILSSolver(criterion, reuse_steps=2, max_iterations=80)


def serial_reference(solver_name):
    def op(x):
        return A2 @ (A1 @ x + B1) + B2

    solver = make_solver(solver_name)
    solver.initialize()
    x0 = np.zeros(N)
    out = []
    for _ in range(N_STEPS):
        solver.initialize_solution_step()
        res = solver.solve_solution_step(x0, op)
        solver.finalize_solution_step()
        out.append(res)
        x0 = res.x
    solver.finalize()
    return out


def coupled_job(solver_name):
    """(coupler, p1 x2, p2 x2) — both participants multi-rank so the
    schedule has real gather/bcast interleavings to permute."""

    def coupler(world, env):
        mph = components_setup(world, "coupler", env=env)
        spec = InterfaceSpec([("u", (N,))])
        driver = CouplingDriver(
            mph,
            make_solver(solver_name),
            [Participant("p1", spec), Participant("p2", spec)],
        )
        driver.initialize()
        results = driver.solve(N_STEPS)
        driver.close()
        return [
            (r.iterations, r.x.tobytes(), tuple(r.residual_norms)) for r in results
        ]

    def p1(world, env):
        mph = components_setup(world, "p1", env=env)
        half = N // 2
        rows = slice(0, half) if mph.local_proc_id() == 0 else slice(half, N)
        return serve_participant(mph, LinearParticipant(A1, B1, rows=rows))

    def p2(world, env):
        mph = components_setup(world, "p2", env=env)
        half = N // 2
        rows = slice(0, half) if mph.local_proc_id() == 0 else slice(half, N)
        return serve_participant(mph, LinearParticipant(A2, B2, rows=rows))

    return [(coupler, 1), (p1, 2), (p2, 2)]


class TestBitwiseScheduleIndependence:
    @pytest.mark.schedule_sweep(5)
    @pytest.mark.parametrize("solver_name", ["gauss_seidel", "aitken", "iqn_ils"])
    def test_coupled_solve_is_bitwise_schedule_independent(
        self, solver_name, sweep_config, progress_engine
    ):
        """5 seeds x 2 engines: every scheduled run must equal the serial
        iteration bit for bit — iterations, residual history, and the
        final interface vector's exact bytes."""
        config = sweep_config(WorldConfig(progress_engine=progress_engine))
        result = mph_run(
            coupled_job(solver_name), registry=REG, config=config, timeout=120.0
        )
        got = result.by_executable(0)[0]
        ref = serial_reference(solver_name)
        for (iters, xbytes, norms), expect in zip(got, ref):
            assert iters == expect.iterations
            assert xbytes == expect.x.tobytes()
            assert norms == tuple(expect.residual_norms)

    @pytest.mark.schedule_sweep(3)
    def test_two_scheduled_runs_identical(self, sweep_config, progress_engine):
        """Within one seed, re-running the job reproduces itself exactly
        (fresh schedule, same seed — the replay property chaos debugging
        relies on)."""
        runs = []
        for _ in range(2):
            config = sweep_config(WorldConfig(progress_engine=progress_engine))
            result = mph_run(
                coupled_job("iqn_ils"), registry=REG, config=config, timeout=120.0
            )
            runs.append(result.by_executable(0)[0])
        assert runs[0] == runs[1]
