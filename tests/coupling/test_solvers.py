"""Coupled solvers on linear operators with known spectral radius.

Linear fixed points ``x = M x + b`` make solver behaviour *provable*: the
error contracts by ``rho(M)`` per Gauss-Seidel iteration, the Jacobi
joint operator's spectral radius is ``sqrt(rho)``, and a quasi-Newton
scheme with exact secants terminates in at most ``n + 2`` evaluations on
an ``n``-dimensional interface.  Every assertion below is one of those
analytic bounds (plus slack for the non-asymptotic first iterations).
"""

import math

import numpy as np
import pytest

from repro.coupling import (
    AbsoluteNorm,
    AitkenSolver,
    GaussSeidelSolver,
    IQNILSSolver,
    IterationBound,
    JacobiSolver,
    compose_operators,
    joint_operator,
)
from repro.errors import CouplingError

N = 8
RHO = 0.6
TOL = 1e-10

#: The benchmark contraction: diag spectrum in [0.15, 0.6], radius 0.6.
MATRIX = RHO * np.diag(np.linspace(1.0, 0.25, N))
OFFSET = np.linspace(1.0, 2.0, N)
FIXED_POINT = np.linalg.solve(np.eye(N) - MATRIX, OFFSET)


def operate(x):
    return MATRIX @ x + OFFSET


def run_step(solver, op=operate, x0=None, n=N):
    solver.initialize()
    solver.initialize_solution_step()
    result = solver.solve_solution_step(
        np.zeros(n) if x0 is None else x0, op
    )
    solver.finalize_solution_step()
    solver.finalize()
    return result


def gs_iteration_bound(rho=RHO, tol=TOL):
    """Iterations a rho-contraction needs to push the residual from its
    initial magnitude below *tol* (the Banach estimate)."""
    r0 = float(np.linalg.norm(operate(np.zeros(N))))
    return math.ceil(math.log(tol / r0) / math.log(rho))


class TestGaussSeidel:
    def test_converges_to_fixed_point(self):
        res = run_step(GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80))
        assert res.converged
        np.testing.assert_allclose(res.x, FIXED_POINT, atol=1e-9)

    def test_iterations_match_contraction_bound(self):
        res = run_step(GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80))
        bound = gs_iteration_bound()
        assert res.iterations <= bound + 2
        # The dominant mode really does govern: substantially many
        # iterations are needed (not an accidentally easy problem).
        assert res.iterations >= bound // 2

    def test_residuals_decay_monotonically_at_rho(self):
        res = run_step(GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80))
        norms = np.array(res.residual_norms)
        ratios = norms[1:] / norms[:-1]
        assert np.all(ratios <= RHO + 1e-12)

    def test_under_relaxation_slows_convergence(self):
        full = run_step(GaussSeidelSolver(AbsoluteNorm(1e-8), max_iterations=200))
        half = run_step(
            GaussSeidelSolver(AbsoluteNorm(1e-8), omega=0.5, max_iterations=200)
        )
        assert half.converged and half.iterations > full.iterations

    def test_budget_exhaustion_reports_unconverged(self):
        res = run_step(GaussSeidelSolver(AbsoluteNorm(1e-14), max_iterations=3))
        assert not res.converged
        assert res.iterations == 3

    def test_strict_mode_raises(self):
        solver = GaussSeidelSolver(AbsoluteNorm(1e-14), max_iterations=3, strict=True)
        solver.initialize()
        solver.initialize_solution_step()
        with pytest.raises(CouplingError, match="did not\\s+converge"):
            solver.solve_solution_step(np.zeros(N), operate)

    def test_omega_validation(self):
        with pytest.raises(CouplingError, match="omega"):
            GaussSeidelSolver(AbsoluteNorm(1.0), omega=0.0)
        with pytest.raises(CouplingError, match="omega"):
            GaussSeidelSolver(AbsoluteNorm(1.0), omega=2.5)

    def test_solve_outside_step_rejected(self):
        solver = GaussSeidelSolver(AbsoluteNorm(1.0))
        solver.initialize()
        with pytest.raises(CouplingError, match="outside a coupling step"):
            solver.solve_solution_step(np.zeros(N), operate)

    def test_shape_mismatch_detected(self):
        solver = GaussSeidelSolver(AbsoluteNorm(1.0))
        solver.initialize()
        solver.initialize_solution_step()
        with pytest.raises(CouplingError, match="shape"):
            solver.solve_solution_step(np.zeros(N), lambda x: x[:-1])

    def test_fixed_iteration_count_via_bound_criterion(self):
        res = run_step(GaussSeidelSolver(IterationBound(4), max_iterations=80))
        assert res.converged and res.iterations == 4


class TestAitken:
    def test_beats_gauss_seidel(self):
        """Acceptance anchor: dynamic relaxation strictly fewer iterations
        than plain Gauss-Seidel on the benchmark contraction."""
        gs = run_step(GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80))
        ait = run_step(AitkenSolver(AbsoluteNorm(TOL), max_iterations=80))
        assert ait.converged
        assert ait.iterations < gs.iterations
        np.testing.assert_allclose(ait.x, FIXED_POINT, atol=1e-8)

    def test_scalar_problem_is_exact_secant(self):
        """In 1-D Aitken *is* the secant method: the third evaluation
        lands on the fixed point of an affine map exactly."""
        res = run_step(
            AitkenSolver(AbsoluteNorm(1e-13), omega_max=20.0, max_iterations=10),
            op=lambda x: 0.9 * x + 1.0,
            x0=np.zeros(1),
            n=1,
        )
        assert res.converged and res.iterations <= 3

    def test_omega_clipped(self):
        solver = AitkenSolver(AbsoluteNorm(TOL), omega_max=0.7, max_iterations=80)
        run_step(solver)
        assert all(abs(w) <= 0.7 for w in solver.omega_history)

    def test_warm_start_magnitude_capped(self):
        solver = AitkenSolver(AbsoluteNorm(TOL), omega_initial=0.1, max_iterations=80)
        solver.initialize()
        for _ in range(2):
            solver.initialize_solution_step()
            solver.solve_solution_step(np.zeros(N), operate)
            solver.finalize_solution_step()
        # First omega of step 1 reuses step 0's sign but is capped at 0.1.
        assert abs(solver.omega_history[0]) <= 0.1 + 1e-15

    def test_zero_omega_initial_rejected(self):
        with pytest.raises(CouplingError, match="nonzero"):
            AitkenSolver(AbsoluteNorm(1.0), omega_initial=0.0)


class TestIQNILS:
    def test_terminates_within_exact_secant_bound(self):
        """Acceptance anchor: on a linear problem the least-squares secant
        model becomes exact once n independent columns exist, so IQN-ILS
        converges in at most n + 2 evaluations."""
        res = run_step(IQNILSSolver(AbsoluteNorm(TOL), max_iterations=80))
        assert res.converged
        assert res.iterations <= N + 2
        np.testing.assert_allclose(res.x, FIXED_POINT, atol=1e-8)

    def test_beats_aitken_and_gauss_seidel(self):
        gs = run_step(GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80))
        ait = run_step(AitkenSolver(AbsoluteNorm(TOL), max_iterations=80))
        iqn = run_step(IQNILSSolver(AbsoluteNorm(TOL), max_iterations=80))
        assert iqn.iterations < ait.iterations < gs.iterations

    def test_reuse_window_cuts_later_steps(self):
        """With the Jacobian constant across steps, reused secant columns
        make step 1 converge almost immediately."""
        solver = IQNILSSolver(AbsoluteNorm(TOL), reuse_steps=2, max_iterations=80)
        solver.initialize()
        iters = []
        for _ in range(3):
            solver.initialize_solution_step()
            res = solver.solve_solution_step(np.zeros(N), operate)
            solver.finalize_solution_step()
            iters.append(res.iterations)
        assert iters[1] <= 3 and iters[2] <= 3
        assert iters[1] < iters[0]

    def test_no_reuse_restarts_cold(self):
        solver = IQNILSSolver(AbsoluteNorm(TOL), reuse_steps=0, max_iterations=80)
        solver.initialize()
        iters = []
        for _ in range(2):
            solver.initialize_solution_step()
            res = solver.solve_solution_step(np.zeros(N), operate)
            solver.finalize_solution_step()
            iters.append(res.iterations)
        assert iters[1] == iters[0]  # identical cold starts

    def test_qr_filter_drops_degenerate_columns(self):
        """Reused columns from a converged step are linearly dependent;
        the QR filter must drop them instead of producing NaNs."""
        solver = IQNILSSolver(
            AbsoluteNorm(TOL), reuse_steps=2, filter_eps=1e-8, max_iterations=80
        )
        solver.initialize()
        for _ in range(4):
            solver.initialize_solution_step()
            res = solver.solve_solution_step(np.zeros(N), operate)
            solver.finalize_solution_step()
            assert res.converged
            assert np.all(np.isfinite(res.x))
        assert solver.filtered_columns > 0

    def test_validation(self):
        with pytest.raises(CouplingError, match="reuse_steps"):
            IQNILSSolver(AbsoluteNorm(1.0), reuse_steps=-1)
        with pytest.raises(CouplingError, match="filter_eps"):
            IQNILSSolver(AbsoluteNorm(1.0), filter_eps=1.0)


class TestJacobiJointOperator:
    def test_joint_spectral_radius_is_sqrt(self):
        """The 2-participant Jacobi iteration matrix ``[[0, A1], [A2, 0]]``
        has spectral radius sqrt(rho(A2 A1)): verify on the matrices, then
        verify the iteration count follows it."""
        a1 = MATRIX.copy()
        a2 = np.eye(N)
        joint_matrix = np.block(
            [[np.zeros((N, N)), a1], [a2, np.zeros((N, N))]]
        )
        rho_joint = max(abs(np.linalg.eigvals(joint_matrix)))
        assert rho_joint == pytest.approx(math.sqrt(RHO), rel=1e-12)

        f1 = lambda v: a1 @ v + OFFSET  # noqa: E731
        f2 = lambda u: a2 @ u  # noqa: E731
        jac = run_step(
            JacobiSolver(AbsoluteNorm(TOL), max_iterations=200),
            op=joint_operator(f1, f2, N, N),
            x0=np.zeros(2 * N),
            n=2 * N,
        )
        assert jac.converged
        r0 = float(np.linalg.norm(joint_operator(f1, f2, N, N)(np.zeros(2 * N))))
        bound = math.ceil(math.log(TOL / r0) / math.log(rho_joint))
        assert jac.iterations <= bound + 2

    def test_jacobi_needs_about_twice_gauss_seidel(self):
        a1, a2 = MATRIX, np.eye(N)
        f1 = lambda v: a1 @ v + OFFSET  # noqa: E731
        f2 = lambda u: a2 @ u  # noqa: E731
        gs = run_step(
            GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=200),
            op=compose_operators(f1, f2),
        )
        jac = run_step(
            JacobiSolver(AbsoluteNorm(TOL), max_iterations=200),
            op=joint_operator(f1, f2, N, N),
            x0=np.zeros(2 * N),
            n=2 * N,
        )
        assert gs.iterations < jac.iterations <= 2 * gs.iterations + 3

    def test_fixed_point_consistency(self):
        """The joint fixed point's halves satisfy the cross equations."""
        a1, a2 = MATRIX, np.eye(N)
        f1 = lambda v: a1 @ v + OFFSET  # noqa: E731
        f2 = lambda u: a2 @ u  # noqa: E731
        jac = run_step(
            JacobiSolver(AbsoluteNorm(1e-12), max_iterations=200),
            op=joint_operator(f1, f2, N, N),
            x0=np.zeros(2 * N),
            n=2 * N,
        )
        u, v = jac.x[:N], jac.x[N:]
        np.testing.assert_allclose(u, f1(v), atol=1e-10)
        np.testing.assert_allclose(v, f2(u), atol=1e-10)

    def test_joint_operator_shape_check(self):
        op = joint_operator(lambda v: v, lambda u: u, 2, 3)
        with pytest.raises(CouplingError, match="joint iterate"):
            op(np.zeros(4))

    def test_mode_attributes(self):
        assert GaussSeidelSolver(AbsoluteNorm(1.0)).mode == "sequential"
        assert JacobiSolver(AbsoluteNorm(1.0)).mode == "parallel"

    def test_iterations_per_step_recorded(self):
        solver = GaussSeidelSolver(AbsoluteNorm(TOL), max_iterations=80)
        solver.initialize()
        for _ in range(2):
            solver.initialize_solution_step()
            solver.solve_solution_step(np.zeros(N), operate)
            solver.finalize_solution_step()
        assert len(solver.iterations_per_step) == 2
