"""Interface mappers (repro.coupling.mappers)."""

import numpy as np
import pytest

from repro.climate.grid import LatLonGrid
from repro.coupling import ConservativeGridMapper, LinearMapper, NearestNeighbourMapper
from repro.errors import CouplingError


class TestNearestNeighbour:
    def test_copies_nearest_source_value(self):
        m = NearestNeighbourMapper([0.0, 1.0], [0.1, 0.4, 0.9])
        np.testing.assert_array_equal(m(np.array([5.0, 7.0])), [5.0, 5.0, 7.0])

    def test_ties_break_to_lower_index(self):
        m = NearestNeighbourMapper([0.0, 1.0], [0.5])
        assert m.nearest.tolist() == [0]

    def test_2d_points(self):
        src = [[0.0, 0.0], [1.0, 1.0]]
        dst = [[0.1, 0.0], [0.9, 1.1]]
        m = NearestNeighbourMapper(src, dst)
        np.testing.assert_array_equal(m(np.array([3.0, 4.0])), [3.0, 4.0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(CouplingError, match="dimensions differ"):
            NearestNeighbourMapper([[0.0, 0.0]], [0.5])

    def test_wrong_input_length(self):
        m = NearestNeighbourMapper([0.0, 1.0], [0.5])
        with pytest.raises(CouplingError, match="shape"):
            m(np.zeros(3))

    def test_matrix_is_binary_row_stochastic(self):
        m = NearestNeighbourMapper([0.0, 0.5, 1.0], np.linspace(0, 1, 7))
        np.testing.assert_array_equal(m.matrix.sum(axis=1), np.ones(7))
        assert set(np.unique(m.matrix)) <= {0.0, 1.0}


class TestLinearMapper:
    def test_matches_np_interp(self):
        src = np.array([0.0, 1.0, 2.5, 4.0])
        dst = np.array([-1.0, 0.5, 2.0, 3.9, 5.0])  # includes clamped ends
        vals = np.array([1.0, -2.0, 4.0, 0.5])
        m = LinearMapper(src, dst)
        np.testing.assert_allclose(m(vals), np.interp(dst, src, vals))

    def test_exact_on_linear_field(self):
        src = np.linspace(0.0, 1.0, 5)
        dst = np.linspace(0.1, 0.9, 9)
        m = LinearMapper(src, dst)
        np.testing.assert_allclose(m(3.0 * src + 1.0), 3.0 * dst + 1.0)

    def test_rows_sum_to_one(self):
        m = LinearMapper(np.linspace(0, 1, 4), np.linspace(-0.5, 1.5, 11))
        np.testing.assert_allclose(m.matrix.sum(axis=1), np.ones(11))

    def test_unsorted_source_rejected(self):
        with pytest.raises(CouplingError, match="strictly increasing"):
            LinearMapper([0.0, 2.0, 1.0], [0.5])

    def test_needs_two_source_points(self):
        with pytest.raises(CouplingError, match="at least two"):
            LinearMapper([0.0], [0.5])


class TestConservativeGridMapper:
    def test_preserves_area_integral(self):
        src, dst = LatLonGrid(8, 16), LatLonGrid(5, 7)
        m = ConservativeGridMapper(src, dst)
        lat, lon = np.meshgrid(src.lat_centers, src.lon_centers, indexing="ij")
        field = 250.0 + 30.0 * np.cos(np.deg2rad(lat)) + np.sin(np.deg2rad(lon))
        assert m.conservation_error(field) < 1e-12

    def test_2d_and_flat_forms_agree(self):
        src, dst = LatLonGrid(6, 12), LatLonGrid(4, 8)
        m = ConservativeGridMapper(src, dst)
        rng = np.random.default_rng(0)
        field = rng.normal(size=src.shape)
        np.testing.assert_allclose(m(field).ravel(), m(field.ravel()))

    def test_flat_matrix_matches_direct_application(self):
        """matrix (the lazy Kronecker product) is the same linear map the
        regridder applies — solvers can reason about it spectrally."""
        src, dst = LatLonGrid(5, 6), LatLonGrid(3, 4)
        m = ConservativeGridMapper(src, dst)
        rng = np.random.default_rng(1)
        field = rng.normal(size=src.shape)
        np.testing.assert_allclose(m.matrix @ field.ravel(), m(field).ravel())

    def test_flat_length_mismatch_rejected(self):
        m = ConservativeGridMapper(LatLonGrid(4, 8), LatLonGrid(3, 6))
        with pytest.raises(CouplingError, match="flat field length"):
            m(np.zeros(7))

    def test_constant_field_is_preserved(self):
        m = ConservativeGridMapper(LatLonGrid(6, 12), LatLonGrid(4, 8))
        out = m(np.full((6, 12), 273.15))
        np.testing.assert_allclose(out, 273.15)
