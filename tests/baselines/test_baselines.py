"""Baselines: the pre-MPH approaches, and the comparisons the paper draws
(experiments E10 and E12)."""

import time

import numpy as np
import pytest

from repro.baselines.file_coupling import run_file_coupled
from repro.baselines.independent_jobs import (
    perturbed_params,
    postprocess,
    run_independent_ensemble,
    run_one_member,
)
from repro.baselines.pcm_monolithic import StaticAllocation, hardwired_ranges, run_pcm_monolithic
from repro.climate.ccsm import MODEL_KINDS, CCSMConfig, run_ccsm
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError

FAST_CFG = CCSMConfig(nsteps=2)


class TestPcmMonolithic:
    @pytest.fixture(scope="class")
    def mono(self):
        return run_pcm_monolithic(FAST_CFG)

    def test_same_physics_as_mph(self, mono):
        """E12 control: the hardwired build and MPH MCSE agree bitwise —
        MPH adds flexibility, not different numbers."""
        mph = run_ccsm("mcse", FAST_CFG)
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(mono[kind]["final_field"], mph[kind]["final_field"])

    def test_static_allocation_waste(self, mono):
        """E12: every process of the monolithic build carries every
        module's statics."""
        mem: StaticAllocation = mono["memory"]
        assert mem.all_modules_bytes > mem.own_component_bytes
        assert mem.waste_factor > 2.0

    def test_hardwired_ranges_are_contiguous(self):
        ranges = hardwired_ranges(CCSMConfig())
        bounds = sorted(ranges.values())
        for (lo1, hi1), (lo2, _) in zip(bounds, bounds[1:]):
            assert lo2 == hi1 + 1

    def test_exchange_residual_roundoff(self, mono):
        assert mono["coupler"]["max_exchange_residual"] < 1e-10


class TestIndependentJobs:
    GRID = LatLonGrid(4, 8)

    def test_members_perturbed_distinctly(self):
        p0, p1 = perturbed_params(0), perturbed_params(1)
        assert p0.albedo != p1.albedo

    def test_campaign_writes_files(self, tmp_path):
        report = run_independent_ensemble(3, self.GRID, 4, 3600.0, tmp_path)
        assert report.files_written == 12
        assert report.bytes_written > 0
        assert len(list(tmp_path.glob("*.npy"))) == 12

    def test_postprocess_statistics(self, tmp_path):
        report = run_independent_ensemble(3, self.GRID, 3, 3600.0, tmp_path)
        assert len(report.mean_series) == 3
        assert np.all(report.spread_series >= 0)
        # median lies within the spread envelope
        assert np.all(report.median_series <= report.mean_series + report.spread_series)

    def test_postprocess_fails_on_missing_file(self, tmp_path):
        run_independent_ensemble(2, self.GRID, 2, 3600.0, tmp_path)
        victim = next(iter(tmp_path.glob("*.npy")))
        victim.unlink()
        with pytest.raises(ReproError, match="missing sample"):
            postprocess(tmp_path, 2, 2)

    def test_member_without_outdir_writes_nothing(self):
        files, nbytes, means = run_one_member(0, self.GRID, 3, 3600.0, outdir=None)
        assert files == 0 and nbytes == 0 and len(means) == 3

    def test_sampling_interval(self, tmp_path):
        report = run_independent_ensemble(2, self.GRID, 6, 3600.0, tmp_path, sample_every=3)
        assert report.files_written == 4  # steps 0 and 3, two members

    def test_zero_members_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            run_independent_ensemble(0, self.GRID, 2, 3600.0, tmp_path)

    def test_e10_mime_needs_zero_files(self, tmp_path):
        """The MIME approach computes the same statistics with no
        intermediate storage — the E10 contrast."""
        report = run_independent_ensemble(3, self.GRID, 3, 3600.0, tmp_path)
        assert report.files_written > 0  # the baseline's cost
        # (The MIME side of the comparison lives in benchmarks/bench_ensemble.py
        # and examples/ensemble_simulation.py, which write nothing.)


class TestFileCoupling:
    def test_coupled_run_completes(self, tmp_path):
        report = run_file_coupled(LatLonGrid(4, 8), 3, 3600.0, tmp_path)
        assert report.nsteps == 3
        assert report.files_written == 6
        assert len(report.atm_mean_T) == 3

    def test_exchange_cost_measured(self, tmp_path):
        report = run_file_coupled(LatLonGrid(4, 8), 2, 3600.0, tmp_path)
        assert report.atm_exchange_seconds > 0
        assert report.ocn_exchange_seconds > 0

    def test_fluxes_antisymmetric(self, tmp_path):
        """With equal grids and the same coefficient the two sides drift
        toward each other."""
        report = run_file_coupled(LatLonGrid(4, 8), 8, 3600.0, tmp_path, coupling_coeff=50.0)
        gap_first = abs(report.atm_mean_T[0] - report.ocn_mean_T[0])
        gap_last = abs(report.atm_mean_T[-1] - report.ocn_mean_T[-1])
        assert gap_last <= gap_first + 1.0  # no runaway divergence

    def test_poll_times_out_on_missing_file(self, tmp_path):
        from repro.baselines.file_coupling import _poll_read

        with pytest.raises(ReproError, match="timed out"):
            _poll_read(tmp_path / "never_appears.npy", timeout=0.05, interval=0.005)

    def test_poll_knobs_validated(self, tmp_path):
        from repro.baselines.file_coupling import _poll_read

        with pytest.raises(ReproError, match="timeout"):
            _poll_read(tmp_path / "x.npy", timeout=0.0)
        with pytest.raises(ReproError, match="interval"):
            _poll_read(tmp_path / "x.npy", interval=-1.0)

    def test_poll_knobs_plumbed_through_run(self, tmp_path):
        """A generous custom interval/timeout pair still completes."""
        report = run_file_coupled(
            LatLonGrid(4, 8), 2, 3600.0, tmp_path, poll_interval=0.001, poll_timeout=5.0
        )
        assert report.nsteps == 2

    def test_corrupt_partner_file_is_clean_error(self, tmp_path):
        """A file that exists but will not parse (writer died mid-write)
        must surface as a ReproError naming the file, not a raw
        numpy/pickle traceback."""
        from repro.baselines.file_coupling import _poll_read

        bad = tmp_path / "ocn_00000.npy"
        bad.write_bytes(b"\x93NUMPY garbage that is not a valid header")
        with pytest.raises(ReproError, match="truncated or corrupt") as info:
            _poll_read(bad, timeout=0.05, interval=0.005)
        assert info.value.__cause__ is not None

    def test_truncated_file_replaced_mid_poll_recovers(self, tmp_path):
        """Polling keeps retrying a corrupt file: once the writer replaces
        it with a valid one, the read succeeds."""
        import threading

        from repro.baselines.file_coupling import _poll_read, _write_atomic

        path = tmp_path / "atm_00000.npy"
        path.write_bytes(b"partial")
        good = np.arange(6.0)

        def fix():
            time.sleep(0.05)
            _write_atomic(path, good)

        t = threading.Thread(target=fix)
        t.start()
        try:
            got = _poll_read(path, timeout=5.0, interval=0.005)
        finally:
            t.join()
        np.testing.assert_array_equal(got, good)
