"""Grid extension (paper §9 future work (c)): channel, directory exchange,
cross-site messaging."""

import time

import pytest

from repro import components_setup
from repro.errors import ReproError
from repro.grid import ClusterSpec, GridChannel, GridSession, grid_setup, run_grid


class TestGridChannel:
    def test_post_and_collect(self):
        ch = GridChannel(["a", "b"])
        ch.post("a", "b", "ocean", 0, 7, {"x": 1})
        obj, src, tag = ch.collect("b", "ocean", 0, tag=7)
        assert obj == {"x": 1} and src == "a" and tag == 7

    def test_per_destination_matching(self):
        ch = GridChannel(["a", "b"])
        ch.post("a", "b", "ocean", 1, 1, "for-one")
        ch.post("a", "b", "ocean", 0, 1, "for-zero")
        obj, _, _ = ch.collect("b", "ocean", 0, tag=1)
        assert obj == "for-zero"
        obj, _, _ = ch.collect("b", "ocean", 1, tag=1)
        assert obj == "for-one"

    def test_fifo_per_match(self):
        ch = GridChannel(["a", "b"])
        for i in range(5):
            ch.post("a", "b", "c", 0, 2, i)
        got = [ch.collect("b", "c", 0, tag=2)[0] for _ in range(5)]
        assert got == list(range(5))

    def test_wildcard_tag_and_source(self):
        ch = GridChannel(["a", "b", "c"])
        ch.post("c", "b", "comp", 0, 42, "payload")
        obj, src, tag = ch.collect("b", "comp", 0)
        assert (obj, src, tag) == ("payload", "c", 42)

    def test_source_filter(self):
        ch = GridChannel(["a", "b", "c"])
        ch.post("a", "b", "comp", 0, 1, "from-a")
        ch.post("c", "b", "comp", 0, 1, "from-c")
        obj, src, _ = ch.collect("b", "comp", 0, src_cluster="c")
        assert obj == "from-c"

    def test_latency_delays_visibility(self):
        ch = GridChannel(["a", "b"], latency=0.15)
        ch.post("a", "b", "comp", 0, 1, "slow")
        start = time.monotonic()
        ch.collect("b", "comp", 0, tag=1)
        assert time.monotonic() - start >= 0.12

    def test_bandwidth_model(self):
        ch = GridChannel(["a", "b"], latency=0.01, bandwidth=1e6)
        assert ch.delay_for(1_000_000) == pytest.approx(1.01)

    def test_timeout(self):
        ch = GridChannel(["a", "b"])
        with pytest.raises(ReproError, match="timed out"):
            ch.collect("b", "comp", 0, timeout=0.1)

    def test_unknown_cluster_rejected(self):
        ch = GridChannel(["a", "b"])
        with pytest.raises(ReproError, match="unknown cluster"):
            ch.post("a", "z", "comp", 0, 1, None)

    def test_traffic_accounting(self):
        ch = GridChannel(["a", "b"])
        ch.post("a", "b", "comp", 0, 1, list(range(100)))
        assert ch.messages_carried == 1
        assert ch.bytes_carried > 0
        assert ch.pending("b") == 1

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ReproError):
            GridChannel(["a", "a"])

    def test_negative_latency_rejected(self):
        with pytest.raises(ReproError):
            GridChannel(["a"], latency=-1.0)


def simple_component(name, actions):
    """actions(gmph, mph) -> result; run on every process of the component."""

    def program(world, env):
        mph = components_setup(world, name, env=env)
        gmph = grid_setup(mph, env.grid_cluster, env.grid_channel)
        return actions(gmph, mph)

    program.__name__ = name
    return program


class TestGridSetup:
    def test_directory_identical_everywhere(self):
        def report(gmph, mph):
            return [(c.cluster, c.name, c.size) for c in gmph.directory.components]

        res = run_grid(
            [
                ClusterSpec("east", [(simple_component("ocn", report), 2)], registry="BEGIN\nocn\nEND"),
                ClusterSpec("west", [(simple_component("atm", report), 3)], registry="BEGIN\natm\nEND"),
            ]
        )
        expected = [("east", "ocn", 2), ("west", "atm", 3)]
        for cluster in ("east", "west"):
            for value in res[cluster].values():
                assert value == expected

    def test_multi_component_clusters(self):
        def report(gmph, mph):
            return gmph.remote_component_size("south", "ice")

        res = run_grid(
            [
                ClusterSpec(
                    "north",
                    [(simple_component("atm", report), 1), (simple_component("lnd", report), 1)],
                    registry="BEGIN\natm\nlnd\nEND",
                ),
                ClusterSpec("south", [(simple_component("ice", report), 2)], registry="BEGIN\nice\nEND"),
            ]
        )
        assert set(res["north"].values()) == {2}

    def test_unknown_remote_component(self):
        def bad(gmph, mph):
            gmph.remote_component_size("east", "ghost")

        with pytest.raises(ReproError, match="no component"):
            run_grid(
                [
                    ClusterSpec("east", [(simple_component("a", bad), 1)], registry="BEGIN\na\nEND"),
                ]
            )


class TestCrossSiteMessaging:
    def test_pingpong_across_clusters(self):
        def ocean(gmph, mph):
            if mph.local_proc_id() == 0:
                gmph.send("sst-field", "west", "atm", 0, tag=3)
                obj, src, _ = gmph.recv(tag=4)
                return (obj, src)
            return None

        def atm(gmph, mph):
            if mph.local_proc_id() == 0:
                obj, src, _ = gmph.recv(tag=3)
                gmph.send(obj + "-ack", src, "ocn", 0, tag=4)
                return obj
            return None

        res = run_grid(
            [
                ClusterSpec("east", [(simple_component("ocn", ocean), 2)], registry="BEGIN\nocn\nEND"),
                ClusterSpec("west", [(simple_component("atm", atm), 2)], registry="BEGIN\natm\nEND"),
            ]
        )
        assert res["east"].values()[0] == ("sst-field-ack", "west")
        assert res["west"].values()[0] == "sst-field"

    def test_local_destination_short_circuits(self):
        """Same-cluster sends must use ordinary MPH, not the WAN."""

        def a(gmph, mph):
            if mph.local_proc_id() == 0:
                gmph.send("local", "solo", "b", 0, tag=9)
                return gmph.channel.messages_carried  # directory traffic only
            return None

        def b(gmph, mph):
            return mph.recv("a", 0, tag=9)  # arrives on the *MPI* world

        res = run_grid(
            [
                ClusterSpec(
                    "solo",
                    [(simple_component("a", a), 1), (simple_component("b", b), 1)],
                    registry="BEGIN\na\nb\nEND",
                ),
            ]
        )
        assert res["solo"].by_executable(1)[0] == "local"
        assert res["solo"].by_executable(0)[0] == 0  # nothing crossed the WAN

    def test_remote_rank_validated(self):
        def a(gmph, mph):
            gmph.send("x", "west", "atm", 99, tag=1)

        def atm(gmph, mph):
            return None

        with pytest.raises(ReproError, match="out of range"):
            run_grid(
                [
                    ClusterSpec("east", [(simple_component("a", a), 1)], registry="BEGIN\na\nEND"),
                    ClusterSpec("west", [(simple_component("atm", atm), 1)], registry="BEGIN\natm\nEND"),
                ]
            )

    def test_latency_applied_to_cross_site_traffic(self):
        def sender(gmph, mph):
            gmph.send("payload", "far", "b", 0, tag=1)
            return None

        def receiver(gmph, mph):
            start = time.monotonic()
            gmph.recv(tag=1)
            return time.monotonic() - start

        res = run_grid(
            [
                ClusterSpec("near", [(simple_component("a", sender), 1)], registry="BEGIN\na\nEND"),
                ClusterSpec("far", [(simple_component("b", receiver), 1)], registry="BEGIN\nb\nEND"),
            ],
            latency=0.1,
        )
        assert res["far"].values()[0] >= 0.05


class TestSessionFailures:
    def test_failure_on_one_cluster_fails_session(self):
        def bad(gmph, mph):
            raise RuntimeError("site outage")

        def good(gmph, mph):
            return True

        with pytest.raises(RuntimeError, match="site outage"):
            run_grid(
                [
                    ClusterSpec("a", [(simple_component("x", bad), 1)], registry="BEGIN\nx\nEND"),
                    ClusterSpec("b", [(simple_component("y", good), 1)], registry="BEGIN\ny\nEND"),
                ]
            )

    def test_duplicate_cluster_names(self):
        with pytest.raises(ReproError):
            GridSession(
                [
                    ClusterSpec("same", [], registry=None),
                    ClusterSpec("same", [], registry=None),
                ]
            )

    def test_clusters_have_independent_worlds(self):
        """Each cluster gets its own COMM_WORLD of its own size."""

        def report(gmph, mph):
            return mph.global_world.size

        res = run_grid(
            [
                ClusterSpec("big", [(simple_component("a", report), 4)], registry="BEGIN\na\nEND"),
                ClusterSpec("small", [(simple_component("b", report), 1)], registry="BEGIN\nb\nEND"),
            ]
        )
        assert set(res["big"].values()) == {4}
        assert set(res["small"].values()) == {1}


class TestPartialSessions:
    def test_allow_partial_survives_one_cluster_failure(self):
        def bad(gmph, mph):
            raise RuntimeError("site outage")

        def good(gmph, mph):
            return "fine"

        session = GridSession(
            [
                ClusterSpec("a", [(simple_component("x", bad), 1)], registry="BEGIN\nx\nEND"),
                ClusterSpec("b", [(simple_component("y", good), 1)], registry="BEGIN\ny\nEND"),
            ]
        )
        results = session.run(allow_partial=True)
        assert sorted(results) == ["b"]
        assert set(session.failures) == {"a"}
        assert isinstance(session.failures["a"], RuntimeError)

    def test_allow_partial_still_fails_when_every_cluster_dies(self):
        def bad(gmph, mph):
            raise RuntimeError("total outage")

        session = GridSession(
            [
                ClusterSpec("a", [(simple_component("x", bad), 1)], registry="BEGIN\nx\nEND"),
                ClusterSpec("b", [(simple_component("y", bad), 1)], registry="BEGIN\ny\nEND"),
            ]
        )
        with pytest.raises(RuntimeError, match="total outage"):
            session.run(allow_partial=True)
        assert set(session.failures) == {"a", "b"}

    def test_default_remains_all_or_nothing(self):
        def bad(gmph, mph):
            raise RuntimeError("site outage")

        def good(gmph, mph):
            return "fine"

        session = GridSession(
            [
                ClusterSpec("a", [(simple_component("x", bad), 1)], registry="BEGIN\nx\nEND"),
                ClusterSpec("b", [(simple_component("y", good), 1)], registry="BEGIN\ny\nEND"),
            ]
        )
        with pytest.raises(RuntimeError, match="site outage"):
            session.run()
        assert set(session.failures) == {"a"}
