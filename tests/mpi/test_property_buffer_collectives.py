"""Property-based equivalence: buffer-mode collectives must agree with
their object-mode twins for arbitrary shapes, sizes, roots, and algorithm
families."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, SUM, WorldConfig, run_spmd

tree = WorldConfig(
    bcast_algorithm="binomial",
    reduce_algorithm="binomial",
    allreduce_algorithm="recursive_doubling",
    allgather_algorithm="ring",
)
linear = WorldConfig(
    bcast_algorithm="linear",
    reduce_algorithm="linear",
    allreduce_algorithm="reduce_bcast",
    allgather_algorithm="gather_bcast",
)

PROP = dict(max_examples=20, deadline=None)

sizes = st.integers(1, 5)
shapes = st.sampled_from([(3,), (2, 2), (1, 4), (2, 3, 2)])
configs = st.sampled_from([tree, linear])
ops = st.sampled_from([SUM, MAX, MIN])


def payload(rank: int, shape: tuple, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed * 100 + rank)
    return rng.integers(-50, 50, size=shape).astype(float)


class TestBufferObjectEquivalence:
    @given(n=sizes, shape=shapes, seed=st.integers(0, 999), config=configs)
    @settings(**PROP)
    def test_bcast(self, n, shape, seed, config):
        def main(comm):
            data = payload(0, shape, seed)
            obj = comm.bcast(data if comm.rank == 0 else None)
            buf = data.copy() if comm.rank == 0 else np.zeros(shape)
            comm.Bcast(buf)
            return np.array_equal(obj, buf)

        assert all(run_spmd(n, main, config=config))

    @given(n=sizes, shape=shapes, seed=st.integers(0, 999), config=configs, op=ops)
    @settings(**PROP)
    def test_allreduce(self, n, shape, seed, config, op):
        def main(comm):
            data = payload(comm.rank, shape, seed)
            obj = comm.allreduce(data, op=op)
            buf = comm.Allreduce(data, op=op)
            return np.array_equal(obj, buf)

        assert all(run_spmd(n, main, config=config))

    @given(n=sizes, shape=shapes, seed=st.integers(0, 999), config=configs)
    @settings(**PROP)
    def test_gather_matches_stack(self, n, shape, seed, config):
        def main(comm):
            data = payload(comm.rank, shape, seed)
            obj = comm.gather(data)
            buf = comm.Gather(data)
            if comm.rank != 0:
                return obj is None and buf is None
            return np.array_equal(np.stack(obj), buf)

        assert all(run_spmd(n, main, config=config))

    @given(n=sizes, shape=shapes, seed=st.integers(0, 999), config=configs)
    @settings(**PROP)
    def test_allgather_matches_stack(self, n, shape, seed, config):
        def main(comm):
            data = payload(comm.rank, shape, seed)
            obj = np.stack(comm.allgather(data))
            buf = comm.Allgather(data)
            return np.array_equal(obj, buf)

        assert all(run_spmd(n, main, config=config))

    @given(n=sizes, seed=st.integers(0, 999), config=configs)
    @settings(**PROP)
    def test_scatter_roundtrip(self, n, seed, config):
        def main(comm):
            stacked = None
            if comm.rank == 0:
                stacked = np.stack([payload(r, (4,), seed) for r in range(comm.size)])
            recv = np.zeros(4)
            comm.Scatter(stacked, recv)
            return np.array_equal(recv, payload(comm.rank, (4,), seed))

        assert all(run_spmd(n, main, config=config))


class TestGridChannelProperties:
    @given(
        messages=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 3)), min_size=1, max_size=20
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_per_destination_fifo(self, messages):
        """Messages to one (component, rank, tag) address always collect
        in posting order, whatever else is interleaved."""
        from repro.grid import GridChannel

        ch = GridChannel(["a", "b"])
        sent: dict[tuple, list[int]] = {}
        for i, (rank, tag) in enumerate(messages):
            ch.post("a", "b", "comp", rank, tag, i)
            sent.setdefault((rank, tag), []).append(i)
        for (rank, tag), expected in sent.items():
            got = [ch.collect("b", "comp", rank, tag=tag, timeout=1)[0] for _ in expected]
            assert got == expected
