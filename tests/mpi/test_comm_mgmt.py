"""Communicator management: split, dup, create, free — the machinery MPH's
handshake is built on."""

import pytest

from repro.errors import CommError
from repro.mpi import UNDEFINED, Group


class TestSplit:
    def test_even_odd(self, spmd):
        def main(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            return (sub.rank, sub.size)

        values = spmd(6, main)
        assert values == [(0, 3), (0, 3), (1, 3), (1, 3), (2, 3), (2, 3)]

    def test_undefined_opts_out(self, spmd):
        def main(comm):
            sub = comm.split(0 if comm.rank < 2 else UNDEFINED)
            return None if sub is None else (sub.rank, sub.size)

        values = spmd(4, main)
        assert values == [(0, 2), (1, 2), None, None]

    def test_key_controls_rank_order(self, spmd):
        def main(comm):
            # reverse ordering by key
            sub = comm.split(0, key=-comm.rank)
            return sub.rank

        assert spmd(4, main) == [3, 2, 1, 0]

    def test_key_ties_break_by_old_rank(self, spmd):
        def main(comm):
            sub = comm.split(0, key=0)
            return sub.rank

        assert spmd(5, main) == [0, 1, 2, 3, 4]

    def test_colors_need_not_be_dense(self, spmd):
        def main(comm):
            sub = comm.split(comm.rank * 100)
            return (sub.rank, sub.size)

        assert spmd(3, main) == [(0, 1)] * 3

    def test_negative_color_rejected(self, spmd):
        def main(comm):
            comm.split(-5)

        with pytest.raises(CommError, match="color"):
            spmd(2, main)

    def test_split_isolates_traffic(self, spmd):
        """Messages in a sub-communicator never leak into the parent."""

        def main(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            if sub.rank == 0:
                sub.send("sub-msg", 1, tag=0)
            if sub.rank == 1:
                got = sub.recv(source=0, tag=0)
                # parent sees nothing pending despite identical (source, tag)
                assert comm.iprobe() is None
                return got
            return None

        values = spmd(4, main)
        assert values[2] == "sub-msg" and values[3] == "sub-msg"

    def test_nested_splits(self, spmd):
        def main(comm):
            half = comm.split(comm.rank // 4, key=comm.rank)
            quarter = half.split(half.rank // 2, key=half.rank)
            return (half.size, quarter.size, quarter.rank)

        values = spmd(8, main)
        assert all(v == (4, 2, r % 2) for r, v in enumerate(values))

    def test_collectives_inside_split(self, spmd):
        def main(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            return sub.allreduce(comm.rank)

        # evens: 0+2+4 = 6, odds: 1+3+5 = 9
        assert spmd(6, main) == [6, 9, 6, 9, 6, 9]


class TestDup:
    def test_same_shape(self, spmd):
        def main(comm):
            dup = comm.dup()
            return (dup.rank, dup.size)

        assert spmd(3, main) == [(0, 3), (1, 3), (2, 3)]

    def test_dup_traffic_isolated_from_parent(self, spmd):
        def main(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.send("parent", 1, tag=5)
                dup.send("dup", 1, tag=5)
                return None
            got_dup = dup.recv(source=0, tag=5)
            got_parent = comm.recv(source=0, tag=5)
            return (got_parent, got_dup)

        assert spmd(2, main)[1] == ("parent", "dup")


class TestCreate:
    def test_subgroup_comm(self, spmd):
        def main(comm):
            group = comm.group.incl([0, 2])
            sub = comm.create(group)
            if sub is None:
                return None
            return (sub.rank, sub.size)

        assert spmd(4, main) == [(0, 2), None, (1, 2), None]

    def test_create_reordered_group(self, spmd):
        def main(comm):
            group = comm.group.incl([2, 0])
            sub = comm.create(group)
            return None if sub is None else sub.rank

        assert spmd(3, main) == [1, None, 0]

    def test_create_with_foreign_member_rejected(self, spmd):
        def main(comm):
            comm.create(Group([99]))

        with pytest.raises(CommError, match="not part of"):
            spmd(2, main)


class TestFree:
    def test_use_after_free_rejected(self, spmd):
        def main(comm):
            sub = comm.dup()
            sub.free()
            sub.send("x", 0)

        with pytest.raises(CommError, match="freed"):
            spmd(1, main)

    def test_parent_survives_child_free(self, spmd):
        def main(comm):
            sub = comm.dup()
            sub.free()
            return comm.allreduce(1)

        assert spmd(3, main) == [3, 3, 3]


class TestGroupAccessors:
    def test_world_group(self, spmd):
        def main(comm):
            return comm.group.members

        assert spmd(3, main) == [(0, 1, 2)] * 3

    def test_split_group_members_are_world_ids(self, spmd):
        def main(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            return sub.group.members

        values = spmd(4, main)
        assert values[0] == (0, 2) and values[1] == (1, 3)

    def test_mpi4py_style_aliases(self, spmd):
        def main(comm):
            assert comm.Get_rank() == comm.rank
            assert comm.Get_size() == comm.size
            assert comm.Get_group() == comm.group
            sub = comm.Split(0, comm.rank)
            dup = comm.Dup()
            comm.Barrier()
            dup.Free()
            return sub.size

        assert spmd(2, main) == [2, 2]


class TestMphHandshakePattern:
    """The exact split choreography MPH's Section 6 algorithm performs."""

    def test_world_split_by_component_id(self, spmd):
        """§6 case 1: one split of the world by component id."""
        comp_of_rank = [0, 0, 1, 1, 1, 2]

        def main(comm):
            comp = comp_of_rank[comm.rank]
            sub = comm.split(comp, key=comm.rank)
            return (comp, sub.rank, sub.size)

        values = spmd(6, main)
        assert values == [(0, 0, 2), (0, 1, 2), (1, 0, 3), (1, 1, 3), (1, 2, 3), (2, 0, 1)]

    def test_repeated_split_for_overlap(self, spmd):
        """§6 case 2: one split per component when components overlap."""
        comp_a = {0, 1, 2, 3}  # atmosphere on 0..3
        comp_b = {0, 1, 2, 3}  # land fully overlapping
        comp_c = {4, 5}  # chemistry

        def main(comm):
            comms = {}
            for name, members in (("a", comp_a), ("b", comp_b), ("c", comp_c)):
                sub = comm.split(0 if comm.rank in members else UNDEFINED, key=comm.rank)
                if sub is not None:
                    comms[name] = (sub.rank, sub.size)
            return comms

        values = spmd(6, main)
        assert values[0] == {"a": (0, 4), "b": (0, 4)}
        assert values[4] == {"c": (0, 2)}
