"""Property-based tests: collective results must equal their sequential
specification for arbitrary payloads, sizes, roots, and algorithm families."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, SUM, WorldConfig, run_spmd

# Keep worlds small: each example spins up real threads.
sizes = st.integers(min_value=1, max_value=6)
payload_lists = st.lists(st.integers(-1_000_000, 1_000_000), min_size=6, max_size=6)

tree_config = WorldConfig(
    bcast_algorithm="binomial",
    reduce_algorithm="binomial",
    allreduce_algorithm="recursive_doubling",
    allgather_algorithm="ring",
    barrier_algorithm="dissemination",
)
linear_config = WorldConfig(
    bcast_algorithm="linear",
    reduce_algorithm="linear",
    allreduce_algorithm="reduce_bcast",
    allgather_algorithm="gather_bcast",
    barrier_algorithm="linear",
)

PROP_SETTINGS = dict(max_examples=25, deadline=None)


class TestReductionProperties:
    @given(n=sizes, contributions=payload_lists)
    @settings(**PROP_SETTINGS)
    def test_allreduce_sum_equals_python_sum(self, n, contributions):
        def main(comm):
            return comm.allreduce(contributions[comm.rank])

        expected = sum(contributions[:n])
        assert run_spmd(n, main, config=tree_config) == [expected] * n

    @given(n=sizes, contributions=payload_lists)
    @settings(**PROP_SETTINGS)
    def test_tree_and_linear_allreduce_agree(self, n, contributions):
        def main(comm):
            return comm.allreduce(contributions[comm.rank])

        tree = run_spmd(n, main, config=tree_config)
        linear = run_spmd(n, main, config=linear_config)
        assert tree == linear

    @given(n=sizes, contributions=payload_lists, root_seed=st.integers(0, 100))
    @settings(**PROP_SETTINGS)
    def test_reduce_max_min_any_root(self, n, contributions, root_seed):
        root = root_seed % n

        def main(comm):
            return (
                comm.reduce(contributions[comm.rank], op=MAX, root=root),
                comm.reduce(contributions[comm.rank], op=MIN, root=root),
            )

        values = run_spmd(n, main, config=tree_config)
        assert values[root] == (max(contributions[:n]), min(contributions[:n]))

    @given(n=sizes, contributions=payload_lists)
    @settings(**PROP_SETTINGS)
    def test_scan_prefix_property(self, n, contributions):
        def main(comm):
            return comm.scan(contributions[comm.rank], op=SUM)

        values = run_spmd(n, main, config=tree_config)
        for r in range(n):
            assert values[r] == sum(contributions[: r + 1])


class TestDataMovementProperties:
    @given(n=sizes, contributions=payload_lists, root_seed=st.integers(0, 100))
    @settings(**PROP_SETTINGS)
    def test_bcast_delivers_root_value(self, n, contributions, root_seed):
        root = root_seed % n

        def main(comm):
            return comm.bcast(contributions[comm.rank] if comm.rank == root else None, root=root)

        assert run_spmd(n, main, config=tree_config) == [contributions[root]] * n

    @given(n=sizes, contributions=payload_lists)
    @settings(**PROP_SETTINGS)
    def test_allgather_equals_contribution_list(self, n, contributions):
        def main(comm):
            return comm.allgather(contributions[comm.rank])

        assert run_spmd(n, main, config=tree_config) == [contributions[:n]] * n

    @given(n=sizes, contributions=payload_lists)
    @settings(**PROP_SETTINGS)
    def test_gather_scatter_roundtrip(self, n, contributions):
        def main(comm):
            gathered = comm.gather(contributions[comm.rank])
            return comm.scatter(gathered)

        assert run_spmd(n, main, config=tree_config) == contributions[:n]

    @given(n=st.integers(1, 5))
    @settings(**PROP_SETTINGS)
    def test_alltoall_is_transpose(self, n):
        def main(comm):
            matrix_row = [(comm.rank, d) for d in range(comm.size)]
            return comm.alltoall(matrix_row)

        values = run_spmd(n, main, config=tree_config)
        for r in range(n):
            assert values[r] == [(s, r) for s in range(n)]


class TestArrayReductionProperties:
    @given(
        n=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_array_allreduce_matches_numpy(self, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-100, 100, size=(n, 5))

        def main(comm):
            return comm.allreduce(data[comm.rank])

        values = run_spmd(n, main, config=tree_config)
        for got in values:
            np.testing.assert_array_equal(got, data[:n].sum(axis=0))
