"""Shared-memory transport unit tests: ring, pool, segment, endpoint pair.

The shm substrate's correctness rests on three invariants exercised here
at the primitive level, then end-to-end through a wired
:class:`ShmTransport` pair:

* the SPSC ring delivers frames FIFO through arbitrary wrap-arounds,
  reports full (never overwrites), and detects torn/corrupt records via
  the per-record check word instead of decoding garbage;
* the page pool hands out aligned runs, frees a run only when *every*
  reference is dropped, and coalesces freed neighbours so the pool does
  not fragment to death under steady traffic;
* a mapped zero-copy payload must never let a receiver's mutation leak
  back into shared pages (copy-on-read), and dropping the received
  object must eventually release the page (refcount protocol).

Cross-process behaviour (crash-mid-transfer, conformance) is covered in
``tests/launcher`` and the conformance suite; everything here runs
in-process for speed and determinism.
"""

from __future__ import annotations

import gc
import mmap
import threading
import time

import numpy as np
import pytest

from repro.errors import TransportError
from repro.mpi.mailbox import Envelope
from repro.mpi.progress import Completion
from repro.mpi.serialization import Blob
from repro.mpi.shm import (
    PagePool,
    ShmRing,
    ShmSegment,
    ShmTransport,
    list_segments,
    segment_path,
    sweep_segments,
)
from repro.mpi.topology import Topology
from repro.mpi.transport import make_listener
from repro.mpi.world import WorldConfig

_RING_CTRL = 128  # mirrors shm._RING_CTRL: control words before data


def _ring(cap=4096):
    mm = mmap.mmap(-1, _RING_CTRL + cap)
    return ShmRing(mm, 0, cap)


# ---------------------------------------------------------------------------
# Ring: FIFO, wrap-around, backpressure, corruption detection
# ---------------------------------------------------------------------------


class TestShmRing:
    def test_fifo_roundtrip(self):
        ring = _ring()
        frames = [b"", b"a", b"hello" * 10, bytes(range(256))]
        for f in frames:
            assert ring.try_write(f)
        assert [ring.try_read() for _ in frames] == frames
        assert ring.try_read() is None
        assert not ring.readable()

    def test_wrap_around_many_times(self):
        """Frames sized to land on every alignment boundary, pushed
        through enough traffic to wrap the ring dozens of times."""
        ring = _ring(cap=4096)
        sizes = [0, 1, 7, 8, 9, 100, 1000, 2000]
        sent = 0
        for i in range(500):
            payload = bytes([i & 0xFF]) * sizes[i % len(sizes)]
            while not ring.try_write(payload):
                got = ring.try_read()
                assert got is not None
            sent += 1
            if i % 3 == 0:
                got = ring.try_read()
                if got is not None:
                    assert got == bytes([got[0]]) * len(got) if got else True
        # drain everything left; contents must match the tail of the send
        # sequence byte-for-byte (each frame is a run of one byte value)
        while (got := ring.try_read()) is not None:
            if got:
                assert got == bytes([got[0]]) * len(got)

    def test_wrap_preserves_exact_sequence(self):
        """Deterministic FIFO check across wraps: every frame read in
        order, byte-identical, through 50 ring capacities of traffic."""
        ring = _ring(cap=4096)
        import random

        rng = random.Random(7)
        pending = []
        seq = 0
        read_seq = 0
        for _ in range(2000):
            payload = seq.to_bytes(4, "little") + bytes(
                rng.getrandbits(8) for _ in range(rng.choice([0, 4, 60, 500]))
            )
            if ring.try_write(payload):
                pending.append(payload)
                seq += 1
            else:
                got = ring.try_read()
                assert got == pending[read_seq]
                read_seq += 1
        while (got := ring.try_read()) is not None:
            assert got == pending[read_seq]
            read_seq += 1
        assert read_seq == len(pending)

    def test_full_ring_reports_full_not_overwrite(self):
        ring = _ring(cap=4096)
        frame = b"x" * 1000
        written = 0
        while ring.try_write(frame):
            written += 1
        assert written >= 3  # sanity: the ring held several frames
        # still full after more attempts; stored frames intact
        assert not ring.try_write(frame)
        for _ in range(written):
            assert ring.try_read() == frame
        assert ring.try_read() is None
        # and the freed space is reusable
        assert ring.try_write(frame)

    def test_oversized_frame_rejected(self):
        ring = _ring(cap=4096)
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.try_write(b"x" * (ring.max_frame + 1))
        assert ring.try_write(b"x" * ring.max_frame)

    def test_torn_write_detected(self):
        """A corrupted check word (simulated torn write / stray clobber)
        must raise, not hand back garbage bytes."""
        mm = mmap.mmap(-1, _RING_CTRL + 4096)
        ring = ShmRing(mm, 0, 4096)
        assert ring.try_write(b"good frame")
        # clobber the check word of the record at position 0
        mm[_RING_CTRL + 4 : _RING_CTRL + 8] = b"\xde\xad\xbe\xef"
        with pytest.raises(TransportError, match="corruption"):
            ring.try_read()

    def test_lost_tail_store_healed_by_writer(self):
        """A tail word that regresses in the mapping (lost store under
        kernel page migration) is re-asserted from the writer's shadow
        on its next write; the reader meanwhile treats tail < head as
        empty instead of corrupt."""
        mm = mmap.mmap(-1, _RING_CTRL + 4096)
        ring = ShmRing(mm, 0, 4096)
        for i in range(3):
            assert ring.try_write(b"x" * 10)
        assert ring.try_read() == b"x" * 10
        mm[64:72] = bytes(8)  # the anomaly: tail reverts to zero
        # reader: tail(0) < head — empty, not corruption
        assert ring.try_read() is None
        # writer: next write heals tail and lands after the old records
        assert ring.try_write(b"fresh")
        assert ring.heals == 1
        assert ring.try_read() == b"x" * 10
        assert ring.try_read() == b"x" * 10
        assert ring.try_read() == b"fresh"
        assert ring.try_read() is None

    def test_lost_head_store_healed_by_reader(self):
        mm = mmap.mmap(-1, _RING_CTRL + 4096)
        ring = ShmRing(mm, 0, 4096)
        for _ in range(2):
            assert ring.try_write(b"payload")
        assert ring.try_read() == b"payload"
        mm[0:8] = bytes(8)  # head word reverts: reader's store lost
        # reader re-asserts its shadow and does not re-deliver frame 0
        assert ring.try_read() == b"payload"
        assert ring.heals == 1
        assert ring.try_read() is None

    def test_corrupt_length_detected(self):
        mm = mmap.mmap(-1, _RING_CTRL + 4096)
        ring = ShmRing(mm, 0, 4096)
        assert ring.try_write(b"frame")
        # an in-range check word but absurd length: also corruption
        mm[_RING_CTRL + 0 : _RING_CTRL + 4] = (3000).to_bytes(4, "little")
        with pytest.raises(TransportError, match="corruption"):
            ring.try_read()

    def test_interleaved_threads_spsc(self):
        """One writer thread, one reader thread — the intended topology.
        All frames arrive in order with no corruption."""
        ring = _ring(cap=8192)
        count = 3000
        errors = []

        def writer():
            for i in range(count):
                payload = i.to_bytes(4, "little") * ((i % 40) + 1)
                while not ring.try_write(payload):
                    time.sleep(0)

        def reader():
            got = 0
            while got < count:
                frame = ring.try_read()
                if frame is None:
                    time.sleep(0)
                    continue
                expect = got.to_bytes(4, "little") * ((got % 40) + 1)
                if frame != expect:
                    errors.append((got, frame[:8]))
                    return
                got += 1

        t_w = threading.Thread(target=writer)
        t_r = threading.Thread(target=reader)
        t_w.start(), t_r.start()
        t_w.join(30), t_r.join(30)
        assert not t_w.is_alive() and not t_r.is_alive()
        assert errors == []


# ---------------------------------------------------------------------------
# Page pool: alignment, refcounts, coalescing, exhaustion
# ---------------------------------------------------------------------------


class TestPagePool:
    def _pool(self, size=1 << 20):
        mm = mmap.mmap(-1, size)
        return PagePool(mm, 0, size)

    def test_alloc_aligned_and_writes_readable(self):
        pool = self._pool()
        off = pool.alloc(100)
        assert off is not None and off % 4096 == 0
        pool.write(off, b"payload bytes")
        assert pool._mm[off : off + 13] == b"payload bytes"

    def test_refcount_frees_only_at_zero(self):
        pool = self._pool(size=8192)
        off = pool.alloc(8192)  # takes the whole pool
        assert pool.alloc(1) is None
        pool.add_ref(off)  # now 2 holds
        pool.release(off)
        assert pool.alloc(1) is None, "freed with a reference outstanding"
        pool.release(off)
        assert pool.alloc(1) is not None  # last release freed the run

    def test_release_unknown_offset_is_noop(self):
        pool = self._pool()
        pool.release(12288)  # double-free / stray pfree must not corrupt
        assert pool.bytes_free == pool.size

    def test_coalescing_recovers_full_run(self):
        pool = self._pool(size=64 * 4096)
        offs = [pool.alloc(4096) for _ in range(64)]
        assert all(o is not None for o in offs)
        assert pool.alloc(1) is None
        # free in shuffled order; the free list must merge back to one run
        import random

        random.Random(3).shuffle(offs)
        for o in offs:
            pool.release(o)
        assert pool.bytes_free == pool.size
        big = pool.alloc(64 * 4096)
        assert big == 0, "free list failed to coalesce into one run"

    def test_exhaustion_returns_none(self):
        pool = self._pool(size=4096)
        assert pool.alloc(4097) is None
        assert pool.alloc(4096) is not None
        assert pool.alloc(1) is None

    def test_pages_in_use_tracks(self):
        pool = self._pool()
        a, b = pool.alloc(10), pool.alloc(10)
        assert pool.pages_in_use == 2
        pool.release(a)
        pool.release(b)
        assert pool.pages_in_use == 0


# ---------------------------------------------------------------------------
# Segment lifecycle
# ---------------------------------------------------------------------------


class TestShmSegment:
    def test_create_attach_geometry(self, tmp_path):
        d = str(tmp_path)
        seg = ShmSegment.create("t1", 0, 4, 8192, 65536, d)
        try:
            peer = ShmSegment.attach("t1", 0, d, timeout=5.0)
            assert (peer.nprocs, peer.owner) == (4, 0)
            assert peer.ring_bytes == 8192
            assert peer.pool_size == 65536
            assert peer.pool_off == seg.pool_off
            # a ring written through one mapping reads through the other
            ring_w = ShmRing(seg.mm, seg.ring_off(2), seg.ring_bytes)
            ring_r = ShmRing(peer.mm, peer.ring_off(2), peer.ring_bytes)
            assert ring_w.try_write(b"cross-mapping")
            assert ring_r.try_read() == b"cross-mapping"
            peer.close()
        finally:
            seg.close(unlink=True)
        assert list_segments("t1", d) == []

    def test_attach_missing_times_out(self, tmp_path):
        with pytest.raises(TransportError, match="timed out"):
            ShmSegment.attach("nope", 3, str(tmp_path), timeout=0.2)

    def test_attach_waits_for_magic(self, tmp_path):
        """An attacher racing segment creation spins until the magic is
        written (header-complete), instead of reading a half-built map."""
        d = str(tmp_path)

        def create_later():
            time.sleep(0.15)
            seg = ShmSegment.create("race", 1, 2, 4096, 4096, d)
            seg.close()  # keep the file; the attacher owns its own map

        t = threading.Thread(target=create_later)
        t.start()
        try:
            seg = ShmSegment.attach("race", 1, d, timeout=5.0)
            assert seg.owner == 1
            seg.close()
        finally:
            t.join()
            sweep_segments("race", d)

    def test_sweep_removes_leftovers(self, tmp_path):
        d = str(tmp_path)
        for r in range(3):
            ShmSegment.create("sweepme", r, 3, 4096, 4096, d).close()
        assert len(list_segments("sweepme", d)) == 3
        removed = sweep_segments("sweepme", d)
        assert len(removed) == 3
        assert list_segments("sweepme", d) == []

    def test_duplicate_create_rejected(self, tmp_path):
        d = str(tmp_path)
        seg = ShmSegment.create("dup", 0, 2, 4096, 4096, d)
        try:
            with pytest.raises(OSError):
                ShmSegment.create("dup", 0, 2, 4096, 4096, d)
        finally:
            seg.close(unlink=True)


# ---------------------------------------------------------------------------
# ShmTransport pair: rings + page pool end to end, in-process
# ---------------------------------------------------------------------------


def _shm_config(**kw):
    base = dict(
        backend="process",
        transport="shm",
        shm_ring_bytes=1 << 16,
        shm_pool_bytes=1 << 20,
        shm_inline_max=1 << 12,
    )
    base.update(kw)
    return WorldConfig(**base)


def _make_shm_pair(tmp_path, config=None, nprocs=2):
    """Two wired ShmTransport endpoints sharing a segment directory."""
    config = config or _shm_config()
    listeners, addrs = [], {}
    for rank in range(nprocs):
        sock, addr = make_listener("unix", str(tmp_path / f"ep{rank}.sock"))
        listeners.append(sock)
        addrs[rank] = addr
    topo = Topology.from_config(nprocs, config)
    endpoints = []
    for rank in range(nprocs):
        ep = ShmTransport(
            rank,
            nprocs,
            listeners[rank],
            addrs,
            config=config,
            prefix=f"pair-{tmp_path.name[-8:]}",
            topology=topo,
            directory=str(tmp_path),
        )
        ep.received = []
        ep.errors = []
        ep.delivered = threading.Event()

        def deliver(env, ep=ep):
            ep.received.append(env)
            ep.delivered.set()
            if env.sync_event is not None:
                env.sync_event.set()

        ep.deliver_local = deliver
        ep.on_error = ep.errors.append
        ep.start()
        endpoints.append(ep)
    return endpoints


@pytest.fixture
def shm_pair(tmp_path):
    pair = _make_shm_pair(tmp_path)
    yield pair
    for ep in pair:
        ep.close()
    assert list_segments("pair", str(tmp_path)) == [], "segments leaked"


def _wait(pred, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not pred():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


class TestShmTransportPair:
    def test_small_envelope_rides_ring(self, shm_pair):
        a, b = shm_pair
        blob = Blob.encode("ring hello")
        a.send_envelope(1, Envelope(3, 0, 5, blob, "object", blob.nbytes))
        assert b.delivered.wait(5.0)
        env = b.received[0]
        assert (env.context, env.source, env.tag) == (3, 0, 5)
        assert env.payload.decode() == "ring hello"
        s = a.shm_stats()
        assert s.ring_frames_sent == 1
        assert s.pages_published == 0  # small: inline, not paged

    def test_fifo_order_over_ring(self, shm_pair):
        a, b = shm_pair
        for i in range(200):
            blob = Blob.encode(i)
            a.send_envelope(1, Envelope(1, 0, i, blob, "object", blob.nbytes))
        assert _wait(lambda: len(b.received) == 200)
        assert [e.payload.decode() for e in b.received] == list(range(200))

    def test_sync_ack_completes_sender(self, shm_pair):
        a, b = shm_pair
        blob = Blob.encode("sync over shm")
        completion = Completion()
        env = Envelope(1, 0, 2, blob, "object", blob.nbytes, sync_event=completion)
        a.send_envelope(1, env)
        assert completion.wait(5.0), "shm-path ssend ack never arrived"

    def test_large_blob_takes_page_path(self, shm_pair):
        a, b = shm_pair
        payload = list(range(20_000))  # pickles well past inline_max
        blob = Blob.encode(payload)
        a.send_envelope(1, Envelope(1, 0, 9, blob, "object", blob.nbytes))
        assert b.delivered.wait(5.0)
        assert b.received[0].payload.decode() == payload
        assert a.shm_stats().pages_published == 1
        assert b.shm_stats().pages_mapped == 1

    def test_large_array_zero_copy_and_isolated(self, shm_pair):
        a, b = shm_pair
        arr = np.arange(50_000, dtype=np.float64)
        blob = Blob.encode(arr)
        a.send_envelope(1, Envelope(1, 0, 9, blob, "object", blob.nbytes))
        assert b.delivered.wait(5.0)
        got = b.received[0].payload.decode()
        np.testing.assert_array_equal(got, arr)
        # decode() must hand the receiver a private writable copy:
        # mutating it cannot reach the shared page
        got[:] = -1.0
        again = b.received[0].payload.decode()
        np.testing.assert_array_equal(again, arr)

    def test_fanout_dedups_page(self, tmp_path):
        """One blob sent to two peers is written to the pool once."""
        pair = _make_shm_pair(tmp_path, nprocs=3)
        try:
            a = pair[0]
            arr = np.ones(30_000)
            blob = Blob.encode(arr)
            for dest in (1, 2):
                a.send_envelope(
                    dest, Envelope(1, 0, 4, blob, "object", blob.nbytes)
                )
            assert pair[1].delivered.wait(5.0)
            assert pair[2].delivered.wait(5.0)
            s = a.shm_stats()
            assert s.pages_published == 1
            assert s.copies_avoided == 1
        finally:
            for ep in pair:
                ep.close()

    def test_page_released_after_receiver_drop(self, shm_pair):
        a, b = shm_pair
        arr = np.arange(40_000, dtype=np.float64)
        blob = Blob.encode(arr)
        a.send_envelope(1, Envelope(1, 0, 9, blob, "object", blob.nbytes))
        assert b.delivered.wait(5.0)
        assert a.pool.pages_in_use >= 1
        # drop every reference: the received envelope AND the sender blob
        b.received.clear()
        del blob, arr
        gc.collect()
        # releases travel as pfree frames when traffic flushes them;
        # poke both directions until the pool drains
        def drained():
            ping = Blob.encode(0)
            b.send_envelope(0, Envelope(1, 1, 99, ping, "object", ping.nbytes))
            a.send_envelope(1, Envelope(1, 0, 99, ping, "object", ping.nbytes))
            gc.collect()
            return a.pool.pages_in_use == 0

        assert _wait(drained, timeout=10.0), "page never released"

    def test_cross_node_peers_fall_back_to_sockets(self, tmp_path):
        """nodes=2 puts ranks 0 and 1 on different simulated nodes: the
        pair must exchange envelopes over sockets, zero ring frames."""
        pair = _make_shm_pair(tmp_path, config=_shm_config(nodes=2))
        try:
            a, b = pair
            blob = Blob.encode("inter-node")
            a.send_envelope(1, Envelope(1, 0, 0, blob, "object", blob.nbytes))
            assert b.delivered.wait(5.0)
            assert b.received[0].payload.decode() == "inter-node"
            assert a.shm_stats().ring_frames_sent == 0
            assert a.stats().frames_sent >= 1  # socket path used
        finally:
            for ep in pair:
                ep.close()

    def test_mapped_blob_relays_over_socket(self, tmp_path):
        """A zero-copy (memoryview-backed) blob received over shm must
        survive re-sending over a socket — the forwarding case."""
        pair = _make_shm_pair(tmp_path, nprocs=2)
        try:
            a, b = pair
            payload = bytes(range(256)) * 200  # > inline_max, pickle kind
            blob = Blob.encode(payload)
            a.send_envelope(1, Envelope(1, 0, 1, blob, "object", blob.nbytes))
            assert b.delivered.wait(5.0)
            received = b.received[0].payload
            # simulate relaying the mapped blob over the socket path
            from repro.mpi.transport import decode_envelope, encode_envelope

            import pickle

            frame = encode_envelope(
                Envelope(1, 1, 2, received, "object", received.nbytes), 0, 1
            )
            env2, _, _ = decode_envelope(pickle.loads(frame))
            assert env2.payload.decode() == payload
        finally:
            for ep in pair:
                ep.close()

    def test_close_unlinks_segments(self, tmp_path):
        pair = _make_shm_pair(tmp_path)
        for ep in pair:
            ep.close()
        assert list_segments("pair", str(tmp_path)) == []

    def test_ring_backpressure_survives_burst(self, tmp_path):
        """Push far more bytes than the ring holds; backpressure plus
        doorbell kicks must land every frame without loss or deadlock."""
        cfg = _shm_config(
            shm_ring_bytes=4096, shm_pool_bytes=1 << 20, shm_inline_max=1024
        )
        pair = _make_shm_pair(tmp_path, config=cfg)
        try:
            a, b = pair
            count = 300
            payload = "y" * 400  # ~120 KiB total through a 4 KiB ring
            for i in range(count):
                blob = Blob.encode((i, payload))
                a.send_envelope(
                    1, Envelope(1, 0, i, blob, "object", blob.nbytes)
                )
            assert _wait(lambda: len(b.received) == count, timeout=15.0)
            assert [e.payload.decode()[0] for e in b.received] == list(
                range(count)
            )
            assert not b.errors
        finally:
            for ep in pair:
                ep.close()

    def test_dead_peer_detected(self, tmp_path):
        """A peer that dies with the ring full must surface as a
        TransportError via the backpressure liveness probe, not a hang."""
        cfg = _shm_config(
            shm_ring_bytes=4096, shm_pool_bytes=1 << 20, shm_inline_max=1024
        )
        pair = _make_shm_pair(tmp_path, config=cfg)
        a, b = pair
        try:
            blob = Blob.encode("warm-up")
            a.send_envelope(1, Envelope(1, 0, 0, blob, "object", blob.nbytes))
            assert b.delivered.wait(5.0)  # shm path established
            b.close()
            dead = Blob.encode("z" * 800)
            with pytest.raises(TransportError):
                for _ in range(500):  # fills the 4 KiB ring, then probes
                    a.send_envelope(
                        1, Envelope(1, 0, 0, dead, "object", dead.nbytes)
                    )
            assert not a.alive(1)
        finally:
            for ep in pair:
                ep.close()


# ---------------------------------------------------------------------------
# Planned retirement: holder-tracked pool refs, peer cache invalidation
# ---------------------------------------------------------------------------


class TestPagePoolHolders:
    def _pool(self, size=1 << 20):
        mm = mmap.mmap(-1, size)
        return PagePool(mm, 0, size)

    def test_release_holder_reclaims_untracked_pfree(self):
        """A retired peer's receiver holds are force-released in one call."""
        pool = self._pool(size=8192)
        off = pool.alloc(8192)  # sender hold
        pool.add_ref(off, holder=3)
        pool.add_ref(off, holder=3)
        pool.release(off)  # sender drops its hold
        assert pool.alloc(1) is None, "freed with peer holds outstanding"
        assert pool.release_holder(3) == 2
        assert pool.alloc(1) is not None

    def test_straggler_pfree_after_release_holder_is_noop(self):
        """A pfree that arrives after its holder was force-released must
        not double-free (the page may already be reused)."""
        pool = self._pool(size=8192)
        off = pool.alloc(8192)
        pool.add_ref(off, holder=3)
        pool.release_holder(3)
        assert pool.alloc(1) is None  # sender hold still outstanding
        pool.release(off, holder=3)  # straggler pfree: skipped
        assert pool.alloc(1) is None, "straggler pfree over-released"
        pool.release(off)  # the genuine sender release frees it
        assert pool.alloc(1) is not None

    def test_holder_tracking_distinguishes_peers(self):
        pool = self._pool(size=8192)
        off = pool.alloc(8192)
        pool.add_ref(off, holder=1)
        pool.add_ref(off, holder=2)
        pool.release(off)  # sender
        assert pool.release_holder(1) == 1
        assert pool.alloc(1) is None  # peer 2 still holds
        pool.release(off, holder=2)  # peer 2's normal pfree
        assert pool.alloc(1) is not None
        assert pool.release_holder(2) == 0  # nothing left to reclaim

    def test_note_hold_tags_alloc_reference(self):
        pool = self._pool(size=8192)
        off = pool.alloc(8192)
        pool.note_hold(off, 5)
        assert pool.release_holder(5) == 1
        assert pool.alloc(1) is not None


class TestSweepRanks:
    def test_sweep_only_departed_ranks(self, tmp_path):
        d = str(tmp_path)
        for r in range(4):
            ShmSegment.create("job", r, 4, 4096, 8192, d).close()
        removed = sweep_segments("job", d, ranks=[1, 3])
        assert removed == [segment_path("job", 1, d), segment_path("job", 3, d)]
        assert list_segments("job", d) == [
            segment_path("job", 0, d),
            segment_path("job", 2, d),
        ]
        # full sweep (no ranks) still removes everything left
        assert len(sweep_segments("job", d)) == 2
        assert list_segments("job", d) == []

    def test_sweep_missing_rank_skipped(self, tmp_path):
        d = str(tmp_path)
        ShmSegment.create("job", 0, 2, 4096, 8192, d).close()
        assert sweep_segments("job", d, ranks=[0, 9]) == [
            segment_path("job", 0, d)
        ]


class TestForgetPeer:
    def test_forget_peer_drops_rings_and_holds(self, tmp_path):
        cfg = _shm_config()
        pair = _make_shm_pair(tmp_path, config=cfg, nprocs=3)
        a, b, c = pair
        try:
            # Publish a page 0 -> 2 and keep the received view alive on
            # the receiver, so the hold for peer 2 is outstanding.
            blob = Blob.encode(np.arange(4096, dtype=np.int64))
            a.send_envelope(2, Envelope(1, 0, 7, blob, "object", blob.nbytes))
            assert _wait(lambda: len(c.received) == 1)
            del blob
            gc.collect()
            a._flush_releases()  # sender hold released; peer 2's remains
            assert a.pool.pages_in_use == 1

            a.forget_peer(2)
            assert a.pool.pages_in_use == 0, "departed peer's hold leaked"
            assert 2 not in a._rings_in
            assert 2 not in a._peer_rings
            assert 2 not in a._peer_segs
            with pytest.raises(TransportError, match="retired"):
                a.send_envelope(
                    2, Envelope(1, 0, 8, Blob.encode("x"), "object", 1)
                )

            # Traffic to the remaining peer is unaffected.
            keep = Blob.encode("still-here")
            a.send_envelope(1, Envelope(1, 0, 9, keep, "object", keep.nbytes))
            assert _wait(lambda: len(b.received) == 1)
            assert b.received[0].payload.decode() == "still-here"
            assert not a.errors
        finally:
            for ep in pair:
                ep.close()

    def test_forget_peer_purges_queued_releases(self, tmp_path):
        pair = _make_shm_pair(tmp_path, nprocs=2)
        a, b = pair
        try:
            # Receive a page from peer 1, drop it, and capture the queued
            # release before it is flushed.
            blob = Blob.encode(np.arange(4096, dtype=np.int64))
            b.send_envelope(0, Envelope(1, 1, 7, blob, "object", blob.nbytes))
            assert _wait(lambda: len(a.received) == 1)
            a.received.clear()
            gc.collect()
            assert any(owner == 1 for owner, _ in a._release_q)
            a.forget_peer(1)
            assert not any(owner == 1 for owner, _ in a._release_q)
        finally:
            for ep in pair:
                ep.close()
