"""Failure handling: abort propagation, deadlock detection, timeouts.

These safety nets are what make a 400-test suite over a threads-as-ranks
substrate tractable: a bug that would hang real MPI fails here in under a
second with a diagnosis.
"""

import time

import pytest

from repro.errors import AbortError, DeadlockError, TimeoutError_
from repro.mpi import World, WorldConfig, run_spmd
from repro.mpi.executor import run_world


class TestAbortPropagation:
    """Parametrized over both progress engines: abort must wake parked
    event-mode waiters and polling waiters alike."""

    def test_user_exception_is_root_cause(self, spmd, progress_engine):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(source=1)  # would block forever

        with pytest.raises(ValueError, match="boom"):
            spmd(4, main, config=WorldConfig(progress_engine=progress_engine))

    def test_blocked_ranks_unwind_quickly(self, spmd, progress_engine):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("early failure")
            comm.barrier()

        start = time.monotonic()
        with pytest.raises(RuntimeError):
            spmd(6, main, config=WorldConfig(progress_engine=progress_engine))
        assert time.monotonic() - start < 5.0

    def test_explicit_abort(self, spmd, progress_engine):
        def main(comm):
            if comm.rank == 2:
                comm.abort("operator request")
            comm.recv(source=2)

        with pytest.raises(AbortError, match="operator request"):
            spmd(3, main, config=WorldConfig(progress_engine=progress_engine))

    def test_abort_records_origin_rank(self, spmd, progress_engine):
        def main(comm):
            if comm.rank == 1:
                comm.Abort(errorcode=3)
            comm.barrier()

        with pytest.raises(AbortError) as info:
            spmd(2, main, config=WorldConfig(progress_engine=progress_engine))
        assert info.value.origin_rank == 1

    def test_exception_after_successful_collectives(self, spmd, progress_engine):
        def main(comm):
            comm.allreduce(1)
            comm.barrier()
            if comm.rank == 0:
                raise KeyError("late")
            comm.recv(source=0)

        with pytest.raises(KeyError):
            spmd(3, main, config=WorldConfig(progress_engine=progress_engine))


class TestDeadlockDetection:
    def test_recv_cycle_detected(self, fast_deadlock_config):
        def main(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=1)

        with pytest.raises(DeadlockError) as info:
            run_spmd(3, main, config=fast_deadlock_config, timeout=20)
        # diagnosis names what each rank was blocked on
        assert "recv" in str(info.value)

    def test_blocked_on_finished_process(self, fast_deadlock_config):
        """Waiting for a message from a rank that already returned is a
        deadlock (alive count shrinks)."""

        def main(comm):
            if comm.rank == 0:
                return "done"
            comm.recv(source=0, tag=9)

        with pytest.raises(DeadlockError):
            run_spmd(2, main, config=fast_deadlock_config, timeout=20)

    def test_barrier_missing_participant(self, fast_deadlock_config):
        def main(comm):
            if comm.rank == 0:
                return "skipped the barrier"
            comm.barrier()

        with pytest.raises(DeadlockError):
            run_spmd(3, main, config=fast_deadlock_config, timeout=20)

    def test_no_false_positive_while_computing(self, fast_deadlock_config):
        """A rank busy computing (not blocked) must hold off the detector
        even while every other rank waits longer than the grace period."""

        def main(comm):
            if comm.rank == 0:
                time.sleep(1.0)  # well beyond deadlock_grace=0.3
                for d in range(1, comm.size):
                    comm.send("late but legal", d, tag=1)
                return "worker"
            return comm.recv(source=0, tag=1)

        values = run_spmd(3, main, config=fast_deadlock_config, timeout=20)
        assert values[1] == "late but legal"

    def test_detection_can_be_disabled(self, progress_engine):
        """With detection off, the wall-clock timeout is the backstop."""
        config = WorldConfig(deadlock_detection=False, progress_engine=progress_engine)

        def main(comm):
            comm.recv(source=comm.rank, tag=42)

        with pytest.raises(TimeoutError_):
            run_spmd(1, main, config=config, timeout=1.0)

    def test_ssend_without_receiver_deadlocks(self, fast_deadlock_config):
        def main(comm):
            if comm.rank == 0:
                comm.ssend("never matched", 1, tag=1)
            else:
                comm.recv(source=0, tag=2)  # wrong tag: no match

        with pytest.raises(DeadlockError):
            run_spmd(2, main, config=fast_deadlock_config, timeout=20)


class TestTimeouts:
    def test_wallclock_timeout(self):
        def main(comm):
            if comm.rank == 0:
                time.sleep(30)
            comm.barrier()

        with pytest.raises(TimeoutError_):
            run_spmd(2, main, timeout=1.0)


class TestRunWorld:
    def test_per_rank_functions(self):
        world = World(3)

        def a(comm):
            return "a" + str(comm.rank)

        def b(comm):
            return "b" + str(comm.rank)

        results = run_world(world, [a, b, a])
        assert [r.value for r in results] == ["a0", "b1", "a2"]

    def test_wrong_fn_count_rejected(self):
        world = World(2)
        with pytest.raises(ValueError):
            run_world(world, [lambda c: None])

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(0)

    def test_results_include_ranks(self):
        world = World(2)
        results = run_world(world, [lambda c: None] * 2)
        assert [r.rank for r in results] == [0, 1]

    def test_snapshot_diagnostics(self):
        world = World(2)
        snap = world.snapshot()
        assert snap["alive"] == [0, 1]
        assert snap["blocked"] == {}
        assert set(snap["queues"]) == {0, 1}
