"""Cartesian topologies (repro.mpi.cartesian)."""

import numpy as np
import pytest

from repro.errors import CommError
from repro.mpi import PROC_NULL
from repro.mpi.cartesian import CartComm, create_cart, dims_create


class TestDimsCreate:
    def test_balanced_2d(self):
        assert dims_create(12, 2) == [4, 3]
        assert dims_create(16, 2) == [4, 4]

    def test_1d(self):
        assert dims_create(7, 1) == [7]

    def test_3d(self):
        out = dims_create(24, 3)
        assert sorted(out, reverse=True) == out
        assert np.prod(out) == 24

    def test_constrained(self):
        assert dims_create(12, 2, [3, 0]) == [3, 4]
        assert dims_create(12, 2, [0, 6]) == [2, 6]

    def test_impossible_constraint(self):
        with pytest.raises(CommError):
            dims_create(12, 2, [5, 0])

    def test_wrong_length(self):
        with pytest.raises(CommError):
            dims_create(4, 2, [4])


class TestCoordinates:
    def test_row_major_mapping(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 3])
            return cart.coords

        values = spmd(6, main)
        assert values == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_rank_coords_roundtrip(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 2, 2])
            return all(cart.rank_of(cart.coords_of(r)) == r for r in range(8))

        assert all(spmd(8, main))

    def test_periodic_wrap(self, spmd):
        def main(comm):
            cart = create_cart(comm, [4], periods=[True])
            return cart.rank_of([-1])

        assert spmd(4, main)[0] == 3

    def test_nonperiodic_out_of_range(self, spmd):
        def main(comm):
            cart = create_cart(comm, [4], periods=[False])
            try:
                cart.rank_of([4])
                return "no error"
            except CommError:
                return "raised"

        assert spmd(4, main)[0] == "raised"


class TestShift:
    def test_interior_neighbours(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 3])
            return cart.shift(1)  # along the fast (column) dimension

        values = spmd(6, main)
        assert values[1] == (0, 2)  # middle of row 0
        assert values[4] == (3, 5)

    def test_open_edges_give_proc_null(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 3], periods=[False, False])
            return cart.shift(0)

        values = spmd(6, main)
        assert values[0] == (PROC_NULL, 3)
        assert values[3] == (0, PROC_NULL)

    def test_periodic_edges_wrap(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 3], periods=[False, True])
            return cart.shift(1)

        values = spmd(6, main)
        assert values[0] == (2, 1)
        assert values[2] == (1, 0)

    def test_bad_direction(self, spmd):
        def main(comm):
            create_cart(comm, [2]).shift(3)

        with pytest.raises(CommError, match="direction"):
            spmd(2, main)


class TestCreateCart:
    def test_surplus_ranks_get_none(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 2])
            return None if cart is None else cart.rank

        assert spmd(6, main) == [0, 1, 2, 3, None, None]

    def test_too_large_topology_rejected(self, spmd):
        def main(comm):
            create_cart(comm, [4, 4])

        with pytest.raises(CommError, match="needs 16 processes"):
            spmd(4, main)

    def test_cart_is_a_full_communicator(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 2])
            return cart.allreduce(cart.rank)

        assert spmd(4, main) == [6] * 4


class TestCartSub:
    def test_row_slices(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 3])
            rows = cart.sub([False, True])  # keep columns -> row comms
            return (rows.size, rows.rank, rows.dims)

        values = spmd(6, main)
        assert values[0] == (3, 0, (3,))
        assert values[4] == (3, 1, (3,))

    def test_column_slices_communicate(self, spmd):
        def main(comm):
            cart = create_cart(comm, [2, 3])
            cols = cart.sub([True, False])  # 3 column comms of 2 ranks
            return cols.allreduce(comm.rank)

        values = spmd(6, main)
        assert values == [3, 5, 7, 3, 5, 7]


class TestHaloExchange2D:
    def test_five_point_stencil_pattern(self, spmd):
        """The canonical 2-D halo exchange: each process swaps edges with
        its four neighbours, PROC_NULL silencing open boundaries."""

        def main(comm):
            cart = create_cart(comm, [2, 2], periods=[False, False])
            value = np.array([float(cart.rank)])
            out = {}
            for direction in (0, 1):
                lo, hi = cart.shift(direction)
                cart.Send(value, hi, tag=direction)
                cart.Send(value, lo, tag=10 + direction)
                got_lo = np.full(1, np.nan)
                got_hi = np.full(1, np.nan)
                if lo != PROC_NULL:
                    cart.Recv(got_lo, lo, tag=direction)
                if hi != PROC_NULL:
                    cart.Recv(got_hi, hi, tag=10 + direction)
                out[direction] = (got_lo[0], got_hi[0])
            return out

        values = spmd(4, main)
        # rank 0 at (0,0): lower neighbours absent, upper are ranks 2 and 1
        assert np.isnan(values[0][0][0]) and values[0][0][1] == 2.0
        assert np.isnan(values[0][1][0]) and values[0][1][1] == 1.0
        # rank 3 at (1,1): upper neighbours absent, lower are ranks 1 and 2
        assert values[3][0][0] == 1.0 and np.isnan(values[3][0][1])
        assert values[3][1][0] == 2.0 and np.isnan(values[3][1][1])
