"""Wire-framing and socket-transport unit tests.

The process backend's correctness rests on one low-level invariant: the
length-prefixed framing must reassemble *exactly* the bytes that were
sent, for any payload size and any way the kernel happens to split the
stream — and a stream that ends mid-frame must surface a clean
:class:`TransportError` (a :class:`ReproError`), never a hang or a
garbage message.  These tests drive :class:`FrameDecoder` through
adversarial splits and torn streams directly, then exercise a real
two-endpoint :class:`SocketTransport` pair over Unix sockets.
"""

from __future__ import annotations

import pickle
import random
import socket
import struct
import threading

import numpy as np
import pytest

from repro.errors import ReproError, TransportError
from repro.mpi.mailbox import Envelope
from repro.mpi.progress import Completion
from repro.mpi.serialization import Blob
from repro.mpi.transport import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    SocketTransport,
    decode_envelope,
    encode_envelope,
    make_listener,
    pack_frame,
    recv_frame,
    send_frame,
)


# ---------------------------------------------------------------------------
# Framing: pack/decode round trips
# ---------------------------------------------------------------------------


PAYLOAD_SIZES = [0, 1, 2, 3, 4, 5, 63, 64, 65, 1023, 4096, 3 * 1024 * 1024]


class TestFraming:
    @pytest.mark.parametrize("size", PAYLOAD_SIZES)
    def test_roundtrip_single_feed(self, size):
        payload = bytes(i & 0xFF for i in range(size))
        decoder = FrameDecoder()
        frames = decoder.feed(pack_frame(payload))
        assert frames == [payload]
        assert not decoder.partial
        decoder.finish()  # clean end of stream

    @pytest.mark.parametrize("size", [0, 1, 5, 63, 1023])
    def test_roundtrip_byte_at_a_time(self, size):
        """Every split is legal, including one byte at a time mid-header."""
        payload = bytes(range(size % 251)) * (size // max(size % 251, 1) + 1)
        payload = payload[:size]
        wire = pack_frame(payload)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames.extend(decoder.feed(wire[i : i + 1]))
        assert frames == [payload]
        assert not decoder.partial

    def test_roundtrip_random_splits(self):
        """Fuzz: many frames of varied sizes through random chunking."""
        rng = random.Random(0xC0FFEE)
        payloads = [
            bytes(rng.getrandbits(8) for _ in range(rng.choice([0, 1, 7, 100, 5000])))
            for _ in range(40)
        ]
        wire = b"".join(pack_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        pos = 0
        while pos < len(wire):
            step = rng.randint(1, 997)
            out.extend(decoder.feed(wire[pos : pos + step]))
            pos += step
        assert out == payloads
        assert not decoder.partial
        decoder.finish()

    def test_multiple_frames_one_feed(self):
        decoder = FrameDecoder()
        frames = decoder.feed(pack_frame(b"one") + pack_frame(b"") + pack_frame(b"three"))
        assert frames == [b"one", b"", b"three"]

    def test_torn_frame_mid_payload(self):
        decoder = FrameDecoder()
        wire = pack_frame(b"x" * 100)
        assert decoder.feed(wire[:50]) == []
        assert decoder.partial
        with pytest.raises(TransportError, match="torn frame"):
            decoder.finish()

    def test_torn_frame_mid_header(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"\x00\x00") == []
        assert decoder.partial
        with pytest.raises(TransportError, match="torn frame"):
            decoder.finish()

    def test_torn_frame_is_repro_error(self):
        """The failure contract: torn streams surface as ReproError."""
        decoder = FrameDecoder()
        decoder.feed(pack_frame(b"abc")[:-1])
        with pytest.raises(ReproError):
            decoder.finish()

    def test_corrupt_length_rejected(self):
        """A declared length past MAX_FRAME_BYTES means a corrupt or
        hostile stream; the decoder refuses rather than buffering a GiB."""
        decoder = FrameDecoder()
        with pytest.raises(TransportError, match="exceeds MAX_FRAME_BYTES"):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1))

    def test_pack_frame_rejects_oversized(self):
        class _HugeLen(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(TransportError, match="exceeds MAX_FRAME_BYTES"):
            pack_frame(_HugeLen())


# ---------------------------------------------------------------------------
# send_frame / recv_frame over a socketpair
# ---------------------------------------------------------------------------


class TestFrameIO:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"msg": list(range(100))})
            assert recv_frame(b, timeout=5.0) == {"msg": list(range(100))}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b, timeout=5.0) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            frame = pack_frame(pickle.dumps("payload"))
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(TransportError, match="torn frame"):
                recv_frame(b, timeout=5.0)
        finally:
            b.close()

    def test_timeout_raises_cleanly(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(TransportError, match="timed out"):
                recv_frame(b, timeout=0.1)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Envelope wire encoding
# ---------------------------------------------------------------------------


class TestEnvelopeCodec:
    def test_pickle_blob_roundtrip(self):
        blob = Blob.encode({"k": (1, 2.5)})
        env = Envelope(7, 3, 42, blob, "object", blob.nbytes)
        out, sync_id, from_rank = decode_envelope(
            pickle.loads(encode_envelope(env, sync_id=9, from_rank=5))
        )
        assert (out.context, out.source, out.tag) == (7, 3, 42)
        assert (out.kind, out.count) == ("object", blob.nbytes)
        assert (sync_id, from_rank) == (9, 5)
        assert out.payload.decode() == {"k": (1, 2.5)}

    def test_array_blob_stays_readonly(self):
        blob = Blob.encode(np.arange(8, dtype=np.int64))
        env = Envelope(2, 0, 0, blob, "object", blob.nbytes)
        out, _, _ = decode_envelope(pickle.loads(encode_envelope(env)))
        assert out.payload.kind == "array"
        assert not out.payload.data.flags.writeable
        np.testing.assert_array_equal(out.payload.decode(), np.arange(8))

    def test_buffer_mode_array_roundtrip(self):
        arr = np.linspace(0.0, 1.0, 17)
        env = Envelope(4, 1, 8, arr, "buffer", arr.size)
        out, _, _ = decode_envelope(pickle.loads(encode_envelope(env)))
        assert out.kind == "buffer"
        np.testing.assert_array_equal(out.payload, arr)

    def test_op_metadata_carried(self):
        blob = Blob.encode([1, 2])
        env = Envelope(6, 0, 0, blob, "object", blob.nbytes, op="sum")
        out, _, _ = decode_envelope(pickle.loads(encode_envelope(env)))
        assert out.op == "sum"


# ---------------------------------------------------------------------------
# SocketTransport: a real two-endpoint pair
# ---------------------------------------------------------------------------


def _make_pair(tmp_path, family="unix"):
    """Two wired SocketTransport endpoints with recording callbacks."""
    listeners, addrs = [], {}
    for rank in range(2):
        sock, addr = make_listener(family, str(tmp_path / f"ep{rank}.sock"))
        listeners.append(sock)
        addrs[rank] = addr
    endpoints = []
    for rank in range(2):
        ep = SocketTransport(rank, 2, listeners[rank], addrs)
        ep.received = []
        ep.errors = []
        ep.aborts = []
        ep.delivered = threading.Event()

        def deliver(env, ep=ep):
            ep.received.append(env)
            ep.delivered.set()
            if env.sync_event is not None:
                env.sync_event.set()  # ack immediately, as a match would

        ep.deliver_local = deliver
        ep.on_error = ep.errors.append
        ep.on_abort = lambda origin, msg, ep=ep: ep.aborts.append((origin, msg))
        ep.start()
        endpoints.append(ep)
    return endpoints


@pytest.fixture
def transport_pair(tmp_path):
    pair = _make_pair(tmp_path)
    yield pair
    for ep in pair:
        ep.close()


class TestSocketTransport:
    def test_envelope_delivery(self, transport_pair):
        a, b = transport_pair
        blob = Blob.encode("hello")
        a.send_envelope(1, Envelope(3, 0, 5, blob, "object", blob.nbytes))
        assert b.delivered.wait(5.0)
        env = b.received[0]
        assert (env.context, env.source, env.tag) == (3, 0, 5)
        assert env.payload.decode() == "hello"

    def test_self_send_short_circuits(self, transport_pair):
        a, _ = transport_pair
        blob = Blob.encode("loopback")
        a.send_envelope(0, Envelope(1, 0, 0, blob, "object", blob.nbytes))
        assert a.received[0].payload.decode() == "loopback"
        assert a.stats().frames_sent == 0  # never touched the wire

    def test_sync_ack_completes_sender(self, transport_pair):
        a, b = transport_pair
        blob = Blob.encode("sync")
        completion = Completion()
        env = Envelope(1, 0, 2, blob, "object", blob.nbytes, sync_event=completion)
        a.send_envelope(1, env)
        assert completion.wait(5.0), "ack frame never completed the ssend"

    def test_abort_broadcast(self, transport_pair):
        a, b = transport_pair
        a.broadcast_abort(0, "rank 0 failed")
        deadline = threading.Event()
        for _ in range(50):
            if b.aborts:
                break
            deadline.wait(0.1)
        assert b.aborts == [(0, "rank 0 failed")]

    def test_stats_count_wire_traffic(self, transport_pair):
        a, b = transport_pair
        blob = Blob.encode(list(range(1000)))
        a.send_envelope(1, Envelope(1, 0, 0, blob, "object", blob.nbytes))
        assert b.delivered.wait(5.0)
        sent = a.stats()
        assert sent.frames_sent == 1
        assert sent.bytes_sent > blob.nbytes  # payload plus framing
        for _ in range(50):
            if b.stats().frames_received:
                break
            threading.Event().wait(0.05)
        got = b.stats()
        assert got.frames_received == 1
        assert got.bytes_received == sent.bytes_sent

    def test_unknown_peer_rejected(self, transport_pair):
        a, _ = transport_pair
        blob = Blob.encode("x")
        with pytest.raises(TransportError, match="no address"):
            a.send_envelope(7, Envelope(1, 0, 0, blob, "object", blob.nbytes))

    def test_dead_peer_flagged_not_hung(self, transport_pair):
        a, b = transport_pair
        b.close()
        blob = Blob.encode("x")
        with pytest.raises(TransportError):
            for _ in range(20):  # first sends may land in the accept backlog
                a.send_envelope(1, Envelope(1, 0, 0, blob, "object", blob.nbytes))
        assert not a.alive(1)

    def test_torn_inbound_stream_reports_error(self, transport_pair):
        """A peer dying mid-frame must surface through on_error, not
        hang the reader or fabricate a message."""
        _, b = transport_pair
        addr = b._peers[1]
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(addr[1])
        frame = pack_frame(pickle.dumps(("msg",)))
        raw.sendall(frame[: len(frame) - 2])
        raw.close()
        for _ in range(50):
            if b.errors:
                break
            threading.Event().wait(0.1)
        assert len(b.errors) == 1
        assert isinstance(b.errors[0], TransportError)
        assert b.received == []

    def test_tcp_family_end_to_end(self, tmp_path):
        a, b = _make_pair(tmp_path, family="tcp")
        try:
            assert a.kind == "tcp"
            blob = Blob.encode(np.arange(100))
            a.send_envelope(1, Envelope(2, 0, 1, blob, "object", blob.nbytes))
            assert b.delivered.wait(5.0)
            np.testing.assert_array_equal(b.received[0].payload.decode(), np.arange(100))
        finally:
            a.close()
            b.close()

    def test_large_payload_over_wire(self, transport_pair):
        """A multi-MiB frame crosses intact (exercises kernel-sized
        splits on the reader side for real)."""
        a, b = transport_pair
        big = np.random.default_rng(7).standard_normal(500_000)  # ~4 MiB
        blob = Blob.encode(big)
        a.send_envelope(1, Envelope(1, 0, 3, blob, "object", blob.nbytes))
        assert b.delivered.wait(10.0)
        np.testing.assert_array_equal(b.received[0].payload.decode(), big)
