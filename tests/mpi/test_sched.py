"""The schedule-exploration harness itself (repro.mpi.sched).

The acceptance-criteria tests live here: same seed → identical canonical
trace across consecutive runs, a planted ANY_SOURCE race is detected
within ten seeds, ``from_trace`` replay is exact, ``minimize`` shrinks a
failing schedule to a handful of overrides, and the repro command the
plugin prints really replays the recorded trace.
"""

import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MatchSchedule,
    WorldConfig,
    explore,
    minimize,
    parse_repro_command,
    repro_command,
    run_spmd,
)
from repro.mpi.sched import MatchTrace

def fan_in(comm):
    """The canonical planted race: N-1 senders, one wildcard receiver.
    Which sender is received first is schedule-chosen."""
    if comm.rank != 0:
        comm.send(comm.rank, 0, tag=5)
    comm.barrier()
    if comm.rank == 0:
        return [comm.recv(source=ANY_SOURCE, tag=5) for _ in range(comm.size - 1)]
    return None


def synced_fan_in(comm):
    """fan_in with the sends barrier-fenced before the receives: the
    candidate set at every receive is the full sender set, so the whole
    run is a pure function of the seed."""
    if comm.rank != 0:
        comm.send(comm.rank * 10, 0, tag=9)
    comm.barrier()
    if comm.rank == 0:
        got = [comm.recv(source=ANY_SOURCE, tag=9) for _ in range(comm.size - 1)]
        comm.barrier()
        return got
    comm.barrier()
    return None


def _run_armed(fn, nprocs, schedule, **kw):
    values = run_spmd(
        nprocs, fn, config=WorldConfig(match_schedule=schedule), **kw
    )
    return values, schedule.trace()


class TestReproducibility:
    def test_same_seed_same_trace_three_runs(self):
        """Acceptance criterion: one seed, three consecutive runs, three
        identical canonical traces and results."""
        runs = [_run_armed(synced_fan_in, 4, MatchSchedule(seed=3)) for _ in range(3)]
        values0, trace0 = runs[0]
        assert len(trace0.events) > 0
        for values, trace in runs[1:]:
            assert values == values0
            assert trace.canonical() == trace0.canonical()
            assert trace.digest() == trace0.digest()

    def test_reset_replays_identically(self):
        """One schedule object, reset between runs, behaves like a fresh
        one — per-run counters fully clear."""
        sched = MatchSchedule(seed=11)
        values1, trace1 = _run_armed(synced_fan_in, 3, sched)
        sched.reset()
        values2, trace2 = _run_armed(synced_fan_in, 3, sched)
        assert values1 == values2
        assert trace1.canonical() == trace2.canonical()

    def test_seeds_differ_somewhere(self):
        """Across a modest seed range the wildcard order does vary —
        the permutation hook is live, not decorative."""
        digests = set()
        for seed in range(8):
            _, trace = _run_armed(synced_fan_in, 4, MatchSchedule(seed=seed))
            digests.add(trace.digest())
        assert len(digests) > 1

    def test_disarmed_config_unchanged(self):
        """match_schedule=None is the seed-repo behavior: plain FIFO
        results, no trace machinery involved."""
        plain = run_spmd(3, synced_fan_in)
        assert plain[0] == [10, 20]

    def test_fifo_policy_is_lowest_source(self):
        sched = MatchSchedule(seed=99, policy="fifo", hold_prob=0.0)
        values, trace = _run_armed(synced_fan_in, 4, sched)
        assert values[0] == [10, 20, 30]
        assert all(e.chosen == 0 for e in trace.events)


class TestRaceDetection:
    def test_planted_any_source_race_found_within_10_seeds(self):
        """Acceptance criterion: explore() flags the fan-in race with at
        most ten seeds."""
        report = explore(fan_in, 3, seeds=10, timeout=30.0)
        assert report.divergent, report.summary()
        first, second = report.witnesses()
        assert first.digest != second.digest

    def test_schedule_independent_program_never_diverges(self):
        def specific(comm):
            if comm.rank != 0:
                comm.send(comm.rank, 0, tag=2)
                return None
            return [comm.recv(source=s, tag=2) for s in range(1, comm.size)]

        report = explore(specific, 3, seeds=6, timeout=30.0)
        assert not report.divergent, report.summary()

    def test_error_outcomes_count_as_divergence(self):
        """A seed that turns a passing run into a raising one is a
        schedule dependence too."""

        def fragile(comm):
            if comm.rank != 0:
                comm.send(comm.rank, 0, tag=1)
            comm.barrier()  # both messages in flight before the recvs
            if comm.rank != 0:
                return None
            first = comm.recv(source=ANY_SOURCE, tag=1)
            comm.recv(source=ANY_SOURCE, tag=1)
            if first != 1:
                raise RuntimeError("received out of rank order")
            return first

        report = explore(fragile, 3, seeds=10, timeout=30.0)
        assert report.divergent, report.summary()
        assert any(not o.ok for o in report.outcomes)
        assert any(o.ok for o in report.outcomes)


class TestReplay:
    def test_from_trace_replays_exactly(self):
        sched = MatchSchedule(seed=4)
        values1, trace1 = _run_armed(synced_fan_in, 4, sched)
        replay = MatchSchedule.from_trace(trace1)
        values2, trace2 = _run_armed(synced_fan_in, 4, replay)
        assert values2 == values1
        assert trace2.canonical() == trace1.canonical()

    def test_schedule_spec_round_trip(self):
        sched = MatchSchedule(
            seed=7, hold_prob=0.5, hold_max=3,
            overrides={("match", 0, 2): 1, ("hold", 1, (0, 4)): 2},
        )
        spec = sched.to_spec()
        rebuilt = MatchSchedule.from_spec(spec)
        assert rebuilt.to_spec() == spec
        assert rebuilt.overrides == sched.overrides

    def test_trace_spec_round_trip(self):
        _, trace = _run_armed(synced_fan_in, 3, MatchSchedule(seed=1))
        spec = trace.to_spec()
        rebuilt = MatchTrace.from_spec(spec)
        assert rebuilt.to_spec() == spec
        assert rebuilt.canonical() == trace.canonical()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            MatchSchedule(0, policy="chaotic")
        with pytest.raises(ValueError, match="hold_prob"):
            MatchSchedule(0, hold_prob=1.5)
        with pytest.raises(ValueError, match="hold_max"):
            MatchSchedule(0, hold_max=-1)


class TestMinimize:
    def test_shrinks_failing_schedule_to_few_overrides(self):
        """Acceptance criterion: the delta-debugger lands on ≤5 decision
        overrides that still reproduce the 'failure' (here: any outcome
        that differs from the fifo baseline)."""
        baseline = run_spmd(
            4, synced_fan_in,
            config=WorldConfig(match_schedule=MatchSchedule(0, policy="fifo", hold_prob=0.0)),
        )

        def failing(schedule):
            values = run_spmd(
                4, synced_fan_in, config=WorldConfig(match_schedule=schedule)
            )
            return values[0] != baseline[0]

        seed = next(s for s in range(10) if failing(MatchSchedule(s)))
        witness = MatchSchedule(seed)
        assert failing(witness)
        replay = MatchSchedule.from_trace(witness.trace())
        assert failing(replay)
        small = minimize(replay, failing)
        assert failing(small)
        assert len(small.overrides) <= 5

    def test_shrink_enumerates_single_removals(self):
        sched = MatchSchedule(0, overrides={("match", 0, 0): 1, ("match", 0, 1): 2})
        variants = list(sched.shrink())
        assert len(variants) == 2
        assert all(len(v.overrides) == 1 for v in variants)


class TestReproCommand:
    def test_round_trip(self):
        cmd = repro_command(
            "tests/mpi/test_sched.py::TestReproCommand::test_round_trip",
            match_seed=3, fault_seed=1,
        )
        nodeid, mseed, fseed = parse_repro_command(cmd)
        assert nodeid.endswith("test_round_trip")
        assert (mseed, fseed) == (3, 1)

    def test_printed_command_replays_the_trace(self):
        """The regression the chaos satellite demands: take the command
        the plugin would print, parse the seed back out, rerun — the
        canonical trace must be identical to the failing run's."""
        failing_seed = 6
        _, trace1 = _run_armed(synced_fan_in, 4, MatchSchedule(failing_seed))
        cmd = repro_command("tests/x.py::t", match_seed=failing_seed)
        _, parsed_seed, _ = parse_repro_command(cmd)
        _, trace2 = _run_armed(synced_fan_in, 4, MatchSchedule(parsed_seed))
        assert trace2.canonical() == trace1.canonical()


class TestHoldSemantics:
    def test_non_overtaking_survives_holds(self, match_seed):
        """Per-(source, tag) FIFO is structural: no seed's holds may
        reorder one sender's stream."""

        def main(comm):
            if comm.rank == 0:
                for i in range(12):
                    comm.send(i, 1, tag=4)
                return None
            return [comm.recv(source=0, tag=4) for _ in range(12)]

        values = run_spmd(
            2, main,
            config=WorldConfig(match_schedule=MatchSchedule(match_seed, hold_prob=0.9)),
        )
        assert values[1] == list(range(12))

    def test_blocking_recv_reveals_held_messages(self, match_seed):
        """Liveness: a blocking receive must see a held envelope — holds
        model delay, never loss."""

        def main(comm):
            if comm.rank == 0:
                comm.send("payload", 1, tag=8)
                return None
            return comm.recv(source=0, tag=8)

        values = run_spmd(
            2, main,
            config=WorldConfig(
                match_schedule=MatchSchedule(match_seed, hold_prob=1.0, hold_max=2)
            ),
            timeout=15.0,
        )
        assert values[1] == "payload"

    def test_blocking_probe_reveals_held_messages(self, match_seed):
        def main(comm):
            if comm.rank == 0:
                comm.send("probe-me", 1, tag=6)
                return None
            st = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            return comm.recv(source=st.source, tag=st.tag)

        values = run_spmd(
            2, main,
            config=WorldConfig(
                match_schedule=MatchSchedule(match_seed, hold_prob=1.0, hold_max=2)
            ),
            timeout=15.0,
        )
        assert values[1] == "probe-me"


class TestWaitChoice:
    def test_waitany_choice_recorded_and_varies(self):
        """With several complete requests, waitany's pick is the
        schedule's; across seeds both orders appear."""

        def main(comm):
            from repro.mpi.request import Request

            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=t) for t in (1, 2)]
                comm.barrier()  # both sends have landed: both complete
                idx, value = Request.waitany(reqs)
                Request.waitall(reqs)
                return (idx, value)
            comm.send("a", 0, tag=1)
            comm.send("b", 0, tag=2)
            comm.barrier()
            return None

        picks = set()
        for seed in range(8):
            values, trace = _run_armed(main, 2, MatchSchedule(seed, hold_prob=0.0))
            picks.add(values[0])
            assert values[0] in ((0, "a"), (1, "b"))
        assert len(picks) == 2, picks


class TestEnsembleScheduleIndependence:
    def test_mime_collector_identical_across_seeds(self):
        """Paper mapping: MIME ensemble collection addresses every
        member by name (specific source), so the collected statistics
        are schedule-independent — diverging here would be an MPH bug."""
        import numpy as np

        from repro import components_setup, multi_instance
        from repro.core.ensemble import EnsembleCollector, EnsembleMember
        from repro.launcher.job import mph_run

        registry = (
            "BEGIN\nMulti_Instance_Begin\nRun1 0 0\nRun2 1 1\nRun3 2 2\n"
            "Multi_Instance_End\nstats\nEND"
        )

        def run(world, env):
            mph = multi_instance(world, "Run", env=env)
            member = EnsembleMember(mph, "stats")
            scale = float(mph.comp_name()[-1])
            for step in range(3):
                member.report(step, np.full(2, scale * (step + 1)))
                member.receive_control()
            return "done"

        def stats(world, env):
            mph = components_setup(world, "stats", env=env)
            collector = EnsembleCollector.for_prefix(mph, "Run")
            means = []
            for step in range(3):
                summary = collector.collect(step)
                means.append(float(summary.mean[0]))
                collector.broadcast_same_control({})
            return means

        outcomes = set()
        for seed in (0, 3, 5):
            result = mph_run(
                [(run, 3), (stats, 1)],
                registry=registry,
                config=WorldConfig(match_schedule=MatchSchedule(seed)),
                timeout=30.0,
            )
            outcomes.add(tuple(result.by_executable(1)[0]))
        assert len(outcomes) == 1
        assert outcomes.pop() == (2.0, 4.0, 6.0)
