"""Backend-parametrized MPI conformance suite.

Every case in this file runs twice: once on the thread backend (ranks as
threads of one interpreter, direct mailbox delivery) and once on the
process backend (ranks as forked OS processes over the socket
transport).  The cases are the representative core of the tier-1 MPI
semantics tests — p2p ordering and wildcards, the collective suite,
communicator management, persistent requests, intercommunicators, value
semantics — so the two backends are held to *identical* observable
behaviour.  A semantics divergence between substrates fails here by
construction, which is what makes the transport layer trustworthy
(MPICH-G2's multi-protocol argument depends on exactly this property).

Select one backend with ``--mpi-backend=thread|process`` (CI runs a
matrix job per backend); default is both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AbortError, CommError, TruncationError
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MAX,
    PROC_NULL,
    SUM,
    Group,
    Prequest,
    Status,
)
from repro.mpi.intercomm import create_intercomm
from repro.mpi.request import Request


# ---------------------------------------------------------------------------
# Point-to-point: ordering, wildcards, modes
# ---------------------------------------------------------------------------


class TestPointToPoint:
    def test_send_recv_roundtrip(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"payload": [1, 2, 3]}, 1, tag=7)
                return None
            if comm.rank == 1:
                return comm.recv(source=0, tag=7)

        values = backend_spmd(2, fn)
        assert values[1] == {"payload": [1, 2, 3]}

    def test_non_overtaking_same_source(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(10)]

        assert backend_spmd(2, fn)[1] == list(range(10))

    def test_tag_selective_matching(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert backend_spmd(2, fn)[1] == ("a", "b")

    def test_any_source_wildcard(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                got = sorted(comm.recv(source=ANY_SOURCE, tag=4) for _ in range(3))
                return got
            comm.send(comm.rank * 10, 0, tag=4)

        assert backend_spmd(4, fn)[0] == [10, 20, 30]

    def test_any_tag_wildcard_reports_status(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=17)
                return None
            status = Status()
            value = comm.recv(source=0, tag=ANY_TAG, status=status)
            return (value, status.source, status.tag)

        assert backend_spmd(2, fn)[1] == ("x", 0, 17)

    def test_ssend_blocks_until_matched(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                comm.ssend("sync", 1, tag=5)
                return "sent"
            return comm.recv(source=0, tag=5)

        assert backend_spmd(2, fn) == ["sent", "sync"]

    def test_sendrecv_exchange(self, backend_spmd):
        def fn(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(comm.rank, peer, sendtag=2, source=peer, recvtag=2)

        assert backend_spmd(2, fn) == [1, 0]

    def test_isend_irecv_overlap(self, backend_spmd):
        def fn(comm):
            peer = 1 - comm.rank
            req = comm.irecv(source=peer, tag=9)
            comm.isend(f"from-{comm.rank}", peer, tag=9)
            return req.wait()

        assert backend_spmd(2, fn) == ["from-1", "from-0"]

    def test_probe_then_recv(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                comm.send([7] * 3, 1, tag=11)
                return None
            status = comm.probe(source=ANY_SOURCE, tag=11)
            value = comm.recv(source=status.source, tag=status.tag)
            return (status.source, value)

        assert backend_spmd(2, fn)[1] == (0, [7, 7, 7])

    def test_proc_null_send_recv(self, backend_spmd):
        def fn(comm):
            comm.send("void", PROC_NULL)
            return comm.recv(source=PROC_NULL)

        assert backend_spmd(2, fn) == [None, None]

    def test_waitall_mixed_requests(self, backend_spmd):
        def fn(comm):
            peer = 1 - comm.rank
            recvs = [comm.irecv(source=peer, tag=t) for t in (1, 2)]
            for t in (1, 2):
                comm.isend(t * 100 + comm.rank, peer, tag=t)
            return Request.waitall(recvs)

        values = backend_spmd(2, fn)
        assert values[0] == [101, 201]
        assert values[1] == [100, 200]


# ---------------------------------------------------------------------------
# Buffer mode
# ---------------------------------------------------------------------------


class TestBufferMode:
    def test_send_recv_array(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6, dtype=np.float64), 1, tag=3)
                return None
            buf = np.zeros(6)
            comm.Recv(buf, source=0, tag=3)
            return buf.tolist()

        assert backend_spmd(2, fn)[1] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_truncation_raises(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(8), 1, tag=1)
                return None
            try:
                comm.Recv(np.zeros(4), source=0, tag=1)
            except TruncationError:
                return "truncated"

        assert backend_spmd(2, fn)[1] == "truncated"

    def test_sender_reuse_after_send(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                arr = np.ones(4)
                comm.Send(arr, 1, tag=2)
                arr[:] = 99.0  # must not be visible to the receiver
                return None
            buf = np.zeros(4)
            comm.Recv(buf, source=0, tag=2)
            return buf.tolist()

        assert backend_spmd(2, fn)[1] == [1.0, 1.0, 1.0, 1.0]


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------


class TestCollectives:
    NPROCS = 4

    def test_barrier_completes(self, backend_spmd):
        assert backend_spmd(self.NPROCS, lambda comm: comm.barrier() or "ok") == [
            "ok"
        ] * self.NPROCS

    def test_bcast_object(self, backend_spmd):
        def fn(comm):
            return comm.bcast({"k": 42} if comm.rank == 0 else None, root=0)

        assert backend_spmd(self.NPROCS, fn) == [{"k": 42}] * self.NPROCS

    def test_bcast_nonzero_root(self, backend_spmd):
        def fn(comm):
            return comm.bcast("payload" if comm.rank == 2 else None, root=2)

        assert backend_spmd(self.NPROCS, fn) == ["payload"] * self.NPROCS

    def test_gather(self, backend_spmd):
        def fn(comm):
            return comm.gather(comm.rank ** 2, root=0)

        values = backend_spmd(self.NPROCS, fn)
        assert values[0] == [0, 1, 4, 9]
        assert values[1:] == [None] * (self.NPROCS - 1)

    def test_scatter(self, backend_spmd):
        def fn(comm):
            objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert backend_spmd(self.NPROCS, fn) == [f"item{i}" for i in range(self.NPROCS)]

    def test_allgather(self, backend_spmd):
        def fn(comm):
            return comm.allgather(comm.rank * 2)

        assert backend_spmd(self.NPROCS, fn) == [[0, 2, 4, 6]] * self.NPROCS

    def test_alltoall(self, backend_spmd):
        def fn(comm):
            return comm.alltoall([(comm.rank, dest) for dest in range(comm.size)])

        values = backend_spmd(self.NPROCS, fn)
        for r, row in enumerate(values):
            assert row == [(src, r) for src in range(self.NPROCS)]

    def test_reduce_sum(self, backend_spmd):
        def fn(comm):
            return comm.reduce(comm.rank + 1, op=SUM, root=0)

        assert backend_spmd(self.NPROCS, fn)[0] == 10

    def test_allreduce_max(self, backend_spmd):
        def fn(comm):
            return comm.allreduce((comm.rank * 7) % 5, op=MAX)

        expected = max((r * 7) % 5 for r in range(self.NPROCS))
        assert backend_spmd(self.NPROCS, fn) == [expected] * self.NPROCS

    def test_scan(self, backend_spmd):
        def fn(comm):
            return comm.scan(comm.rank + 1, op=SUM)

        assert backend_spmd(self.NPROCS, fn) == [1, 3, 6, 10]

    def test_reduce_scatter(self, backend_spmd):
        def fn(comm):
            return comm.reduce_scatter([comm.rank] * comm.size, op=SUM)

        total = sum(range(self.NPROCS))
        assert backend_spmd(self.NPROCS, fn) == [total] * self.NPROCS

    def test_buffer_bcast(self, backend_spmd):
        def fn(comm):
            buf = np.arange(5, dtype=np.float64) if comm.rank == 0 else np.zeros(5)
            comm.Bcast(buf, root=0)
            return buf.tolist()

        assert backend_spmd(self.NPROCS, fn) == [[0.0, 1.0, 2.0, 3.0, 4.0]] * self.NPROCS

    def test_buffer_allreduce(self, backend_spmd):
        def fn(comm):
            out = comm.Allreduce(np.full(3, float(comm.rank)))
            return out.tolist()

        total = float(sum(range(self.NPROCS)))
        assert backend_spmd(self.NPROCS, fn) == [[total] * 3] * self.NPROCS

    def test_collectives_back_to_back(self, backend_spmd):
        """Tag discipline survives many collectives on one communicator."""

        def fn(comm):
            acc = []
            for i in range(5):
                acc.append(comm.allreduce(comm.rank + i))
                comm.barrier()
            return acc

        n = self.NPROCS
        base = sum(range(n))
        assert backend_spmd(n, fn) == [[base + n * i for i in range(5)]] * n


# ---------------------------------------------------------------------------
# Communicator management
# ---------------------------------------------------------------------------


class TestCommManagement:
    def test_split_disjoint_worlds(self, backend_spmd):
        def fn(comm):
            color = comm.rank % 2
            sub = comm.split(color, key=comm.rank)
            value = sub.allreduce(comm.rank)
            out = (sub.rank, sub.size, value)
            sub.free()
            return out

        values = backend_spmd(4, fn)
        assert values[0] == (0, 2, 2)  # evens: 0 + 2
        assert values[1] == (0, 2, 4)  # odds: 1 + 3
        assert values[2] == (1, 2, 2)
        assert values[3] == (1, 2, 4)

    def test_split_key_reorders(self, backend_spmd):
        def fn(comm):
            sub = comm.split(0, key=-comm.rank)
            return sub.rank

        assert backend_spmd(3, fn) == [2, 1, 0]

    def test_split_undefined_excludes(self, backend_spmd):
        from repro.mpi import UNDEFINED

        def fn(comm):
            sub = comm.split(UNDEFINED if comm.rank == 0 else 1, key=comm.rank)
            if sub is None:
                return "excluded"
            return sub.allreduce(1)

        assert backend_spmd(3, fn) == ["excluded", 2, 2]

    def test_dup_isolates_traffic(self, backend_spmd):
        def fn(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.send("on-comm", 1, tag=1)
                dup.send("on-dup", 1, tag=1)
                return None
            first = dup.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=1)
            return (first, second)

        assert backend_spmd(2, fn)[1] == ("on-dup", "on-comm")

    def test_create_subgroup(self, backend_spmd):
        def fn(comm):
            sub = comm.create(Group([0, 2]))
            if sub is None:
                return "out"
            return (sub.rank, sub.allreduce(comm.rank))

        assert backend_spmd(3, fn) == [(0, 2), "out", (1, 2)]

    def test_nested_splits(self, backend_spmd):
        """Context ids stay consistent through split-of-split (the process
        backend allocates them from disjoint per-rank subspaces)."""

        def fn(comm):
            half = comm.split(comm.rank // 2, key=comm.rank)
            pair_sum = half.allreduce(comm.rank)
            solo = half.split(half.rank, key=0)
            return (pair_sum, solo.size, solo.allreduce(comm.rank))

        values = backend_spmd(4, fn)
        assert values == [(1, 1, 0), (1, 1, 1), (5, 1, 2), (5, 1, 3)]

    def test_freed_comm_rejects_ops(self, backend_spmd):
        def fn(comm):
            sub = comm.split(0, key=comm.rank)
            sub.free()
            try:
                sub.allreduce(1)
            except CommError:
                return "rejected"

        assert backend_spmd(2, fn) == ["rejected"] * 2


# ---------------------------------------------------------------------------
# Persistent requests
# ---------------------------------------------------------------------------


class TestPersistent:
    def test_persistent_cycle(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                buf = np.zeros(2)
                send = comm.Send_init(buf, dest=1, tag=4)
                for i in range(3):
                    buf[:] = i
                    send.start().wait()
                return "done"
            buf = np.zeros(2)
            recv = comm.Recv_init(buf, source=0, tag=4)
            got = []
            for _ in range(3):
                recv.start().wait()
                got.append(buf.copy().tolist())
            return got

        values = backend_spmd(2, fn)
        assert values[1] == [[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]

    def test_startall_halo_exchange(self, backend_spmd):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            data = np.full(2, float(comm.rank))
            halo = np.zeros(2)
            send = comm.Send_init(data, right, tag=9)
            recv = comm.Recv_init(halo, left, tag=9)
            for _ in range(2):
                Prequest.startall([send, recv])
                send.wait()
                recv.wait()
            return halo.tolist()

        values = backend_spmd(3, fn)
        assert values == [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]]


# ---------------------------------------------------------------------------
# Intercommunicators
# ---------------------------------------------------------------------------


class TestIntercomm:
    @staticmethod
    def _two_groups(fn_a, fn_b, n_a=2, n_b=2):
        def main(comm):
            in_a = comm.rank < n_a
            local = comm.split(0 if in_a else 1, key=comm.rank)
            remote_leader = n_a if in_a else 0
            inter = create_intercomm(local, 0, comm, remote_leader, tag=99)
            return (fn_a if in_a else fn_b)(inter, local)

        return main, n_a + n_b

    def test_sizes(self, backend_spmd):
        def side(inter, local):
            return (inter.rank, inter.size, inter.remote_size)

        main, n = self._two_groups(side, side)
        values = backend_spmd(n, main)
        assert values == [(0, 2, 2), (1, 2, 2), (0, 2, 2), (1, 2, 2)]

    def test_cross_group_p2p(self, backend_spmd):
        def side_a(inter, local):
            inter.send(f"a{inter.rank}", inter.rank, tag=3)
            return None

        def side_b(inter, local):
            return inter.recv(source=inter.rank, tag=3)

        main, n = self._two_groups(side_a, side_b)
        values = backend_spmd(n, main)
        assert values[2:] == ["a0", "a1"]


# ---------------------------------------------------------------------------
# Value semantics & failure propagation
# ---------------------------------------------------------------------------


class TestSemantics:
    def test_object_send_is_by_value(self, backend_spmd):
        """Sender-side mutation after isend is never observed (the
        distributed-memory discipline both backends must enforce)."""

        def fn(comm):
            if comm.rank == 0:
                obj = {"v": [1, 2]}
                comm.isend(obj, 1, tag=6)
                obj["v"].append(999)  # after-send mutation
                return None
            return comm.recv(source=0, tag=6)

        assert backend_spmd(2, fn)[1] == {"v": [1, 2]}

    def test_receiver_owns_its_copy(self, backend_spmd):
        def fn(comm):
            if comm.rank == 0:
                payload = [0] * 4
                comm.bcast(payload, root=0)
                return payload
            got = comm.bcast(None, root=0)
            got.append(comm.rank)  # private copy: siblings must not see it
            return got

        values = backend_spmd(3, fn)
        assert values[0] == [0, 0, 0, 0]
        assert values[1] == [0, 0, 0, 0, 1]
        assert values[2] == [0, 0, 0, 0, 2]

    def test_rank_exception_propagates(self, backend_spmd):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("component blew up")
            comm.barrier()

        with pytest.raises((ValueError, AbortError)) as excinfo:
            backend_spmd(3, fn)
        assert "blew up" in str(excinfo.value) or isinstance(
            excinfo.value, AbortError
        )

    def test_invalid_rank_rejected(self, backend_spmd):
        def fn(comm):
            try:
                comm.send("x", comm.size + 5)
            except CommError:
                return "rejected"

        assert backend_spmd(2, fn) == ["rejected"] * 2

    def test_large_payload_roundtrip(self, backend_spmd):
        """Multi-megabyte payloads cross the (framed) transport intact."""

        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(300_000, dtype=np.float64), 1, tag=8)
                return None
            buf = np.zeros(300_000)
            comm.Recv(buf, source=0, tag=8)
            return float(buf.sum())

        expected = float(np.arange(300_000, dtype=np.float64).sum())
        assert backend_spmd(2, fn)[1] == expected

    def test_large_payload_mutation_isolated(self, backend_spmd):
        """Receiver mutations of a large payload never reach the sender
        or later receives — even when the transport maps the payload
        zero-copy out of a shared page (shm), the received value must
        behave like a private copy."""

        def fn(comm):
            src = np.arange(100_000, dtype=np.float64)
            if comm.rank == 0:
                comm.send(src, 1, tag=3)
                comm.send(src, 1, tag=4)  # same logical payload again
                comm.barrier()
                return float(src.sum())  # sender's array untouched
            first = comm.recv(source=0, tag=3)
            first[:] = -1.0  # clobber the first delivery in place
            second = comm.recv(source=0, tag=4)
            comm.barrier()
            return float(second.sum())  # must be pristine

        expected = float(np.arange(100_000, dtype=np.float64).sum())
        assert backend_spmd(2, fn) == [expected, expected]
