"""Intercommunicators (repro.mpi.intercomm) — the §5.2 alternative."""

import pytest

from repro.errors import CommError
from repro.mpi import Group
from repro.mpi.intercomm import InterComm, create_intercomm


def two_group_job(fn_a, fn_b, n_a=2, n_b=3):
    """World split into groups A (ranks < n_a) and B; build the intercomm
    and hand it to the side functions."""

    def main(comm):
        in_a = comm.rank < n_a
        local = comm.split(0 if in_a else 1, key=comm.rank)
        # leaders: local rank 0 of each side; bridge = the world.
        remote_leader = n_a if in_a else 0
        inter = create_intercomm(local, 0, comm, remote_leader, tag=99)
        return (fn_a if in_a else fn_b)(inter, local)

    return main, n_a + n_b


class TestCreation:
    def test_sizes_and_ranks(self, spmd):
        def side_a(inter, local):
            return ("A", inter.rank, inter.size, inter.remote_size)

        def side_b(inter, local):
            return ("B", inter.rank, inter.size, inter.remote_size)

        main, n = two_group_job(side_a, side_b)
        values = spmd(n, main)
        assert values[0] == ("A", 0, 2, 3)
        assert values[2] == ("B", 0, 3, 2)
        assert values[4] == ("B", 2, 3, 2)

    def test_remote_group_world_ids(self, spmd):
        def side_a(inter, local):
            return inter.remote_group.members

        def side_b(inter, local):
            return inter.remote_group.members

        main, n = two_group_job(side_a, side_b)
        values = spmd(n, main)
        assert values[0] == (2, 3, 4)
        assert values[2] == (0, 1)

    def test_disjointness_enforced(self, spmd):
        def main(comm):
            # remote group containing our own world ids: illegal.
            InterComm(comm, Group([0]), (100, 101))

        with pytest.raises(CommError, match="disjoint"):
            spmd(2, main)


class TestCrossGroupMessaging:
    def test_send_addresses_remote_ranks(self, spmd):
        def side_a(inter, local):
            # local rank i of A sends to remote rank i of B
            inter.send(f"from-A{inter.rank}", inter.rank, tag=1)
            return None

        def side_b(inter, local):
            if inter.rank < inter.remote_size:
                return inter.recv(source=inter.rank, tag=1)
            return None

        main, n = two_group_job(side_a, side_b)
        values = spmd(n, main)
        assert values[2] == "from-A0"
        assert values[3] == "from-A1"
        assert values[4] is None

    def test_pingpong(self, spmd):
        def side_a(inter, local):
            if inter.rank == 0:
                inter.send("ping", 0, tag=5)
                return inter.recv(0, tag=6)
            return None

        def side_b(inter, local):
            if inter.rank == 0:
                got = inter.recv(0, tag=5)
                inter.send(got + "-pong", 0, tag=6)
                return got
            return None

        main, n = two_group_job(side_a, side_b)
        values = spmd(n, main)
        assert values[0] == "ping-pong"

    def test_remote_rank_validated(self, spmd):
        def side_a(inter, local):
            inter.send("x", 99, tag=1)

        def side_b(inter, local):
            return None

        main, n = two_group_job(side_a, side_b)
        with pytest.raises(CommError, match="remote rank"):
            spmd(n, main)

    def test_iprobe(self, spmd):
        def side_a(inter, local):
            inter.send("waiting", 0, tag=3)
            local.barrier()
            return None

        def side_b(inter, local):
            if inter.rank == 0:
                st = None
                while st is None:
                    st = inter.iprobe(tag=3)
                got = inter.recv(st.source, st.tag)
                return (st.source, got)
            return None

        main, n = two_group_job(side_a, side_b, n_a=1)
        values = spmd(n, main)
        assert values[1] == (0, "waiting")


class TestMerge:
    def test_low_group_ranks_first(self, spmd):
        def side_a(inter, local):
            merged = inter.merge(high=False)
            return (merged.rank, merged.size)

        def side_b(inter, local):
            merged = inter.merge(high=True)
            return (merged.rank, merged.size)

        main, n = two_group_job(side_a, side_b)
        values = spmd(n, main)
        assert [v[0] for v in values] == [0, 1, 2, 3, 4]
        assert all(v[1] == 5 for v in values)

    def test_merged_comm_works(self, spmd):
        def side(high):
            def fn(inter, local):
                merged = inter.merge(high=high)
                return merged.allreduce(1)

            return fn

        main, n = two_group_job(side(False), side(True))
        assert spmd(n, main) == [5] * 5

    def test_same_flags_rejected(self, spmd):
        def side(inter, local):
            inter.merge(high=False)

        main, n = two_group_job(side, side, n_a=1, n_b=1)
        with pytest.raises(CommError, match="opposite"):
            spmd(n, main)

    def test_mph_style_join_equivalence(self, spmd):
        """The §5.2 comparison made concrete: an intercomm merge produces
        the same union ordering MPH_comm_join guarantees (first group's
        processors first) — MPH just gets there without intercommunicators."""

        def side_a(inter, local):
            merged = inter.merge(high=False)
            return merged.group.members

        def side_b(inter, local):
            merged = inter.merge(high=True)
            return merged.group.members

        main, n = two_group_job(side_a, side_b, n_a=2, n_b=2)
        values = spmd(n, main)
        assert values[0] == (0, 1, 2, 3)
