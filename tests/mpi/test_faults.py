"""The deterministic fault-injection substrate (`repro.mpi.faults`)."""

import pickle

import numpy as np
import pytest

from repro.errors import ProcessFailedError
from repro.mpi import FaultSchedule, SimulatedCrash, WorldConfig, random_schedule, run_spmd
from repro.mpi.executor import run_world
from repro.mpi.world import World


def run_with_schedule(nprocs, fn, schedule, timeout=30.0):
    world = World(nprocs, WorldConfig(fault_schedule=schedule))
    return run_world(world, [fn] * nprocs, timeout=timeout)


class TestScheduleBuilders:
    def test_crash_needs_exactly_one_trigger(self):
        s = FaultSchedule()
        with pytest.raises(ValueError, match="exactly one"):
            s.crash_rank(0)
        with pytest.raises(ValueError, match="exactly one"):
            s.crash_rank(0, at_op=3, after_seconds=1.0)

    def test_crash_at_op_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSchedule().crash_rank(0, at_op=0)

    def test_spec_round_trip(self):
        s = FaultSchedule(seed=9)
        s.crash_rank(1, at_op=5)
        s.drop_message(2, 0)
        s.delay_message(0, 1, 0.01)
        s.duplicate_message(1, 2)
        s.corrupt_message(2, 3)
        s.slow_rank(0, 0.001)
        clone = FaultSchedule.from_spec(s.to_spec())
        assert clone.to_spec() == s.to_spec()

    def test_shrink_yields_one_event_removed_variants(self):
        s = FaultSchedule()
        s.crash_rank(1, at_op=5)
        s.drop_message(2, 0)
        variants = list(s.shrink())
        assert len(variants) == 2
        for v in variants:
            spec = v.to_spec()
            assert len(spec["crashes"]) + len(spec["messages"]) == 1

    def test_random_schedule_is_deterministic(self):
        a = random_schedule(42, 8, crashes=2)
        b = random_schedule(42, 8, crashes=2)
        assert a.to_spec() == b.to_spec()
        c = random_schedule(43, 8, crashes=2)
        assert c.to_spec() != a.to_spec()

    def test_random_schedule_spares_ranks(self):
        s = random_schedule(7, 4, crashes=3, spare=(0,))
        assert all(c["rank"] != 0 for c in s.to_spec()["crashes"])


class TestInjection:
    def test_crash_at_op_kills_only_that_rank(self):
        s = FaultSchedule()
        s.crash_rank(1, at_op=3)

        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(ProcessFailedError):
                    for _ in range(10):
                        comm.recv(source=1, tag=5)
            elif comm.rank == 1:
                for i in range(10):
                    comm.send(i, 0, tag=5)
            return "alive"

        results = run_with_schedule(3, fn, s)
        assert isinstance(results[1].exception, SimulatedCrash)
        assert results[0].value == "alive"
        assert results[2].value == "alive"
        assert [f for f in s.fired() if f.startswith("crash rank 1")]

    def test_drop_message_forces_timeout_style_loss(self):
        s = FaultSchedule()
        s.drop_message(dest=1, index=0)

        def fn(comm):
            if comm.rank == 0:
                comm.send("lost", 1, tag=1)
                comm.send("kept", 1, tag=1)
            elif comm.rank == 1:
                return comm.recv(source=0, tag=1)
            return None

        results = run_spmd(
            2, fn, config=WorldConfig(fault_schedule=s), timeout=30.0
        )
        assert results[1] == "kept"

    def test_duplicate_message_delivers_twice(self):
        s = FaultSchedule()
        s.duplicate_message(dest=1, index=0)

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=1)
            elif comm.rank == 1:
                return [comm.recv(source=0, tag=1), comm.recv(source=0, tag=1)]
            return None

        results = run_spmd(2, fn, config=WorldConfig(fault_schedule=s), timeout=30.0)
        assert results[1] == ["x", "x"]

    def test_corrupt_message_surfaces_as_decode_failure(self):
        s = FaultSchedule(seed=5)
        s.corrupt_message(dest=1, index=0)

        def fn(comm):
            if comm.rank == 0:
                comm.send({"payload": list(range(50))}, 1, tag=1)
            elif comm.rank == 1:
                return comm.recv(source=0, tag=1)
            return None

        with pytest.raises(pickle.UnpicklingError):
            run_spmd(2, fn, config=WorldConfig(fault_schedule=s), timeout=30.0)

    def test_corrupt_array_changes_data_not_shape(self):
        s = FaultSchedule(seed=5)
        s.corrupt_message(dest=1, index=0)
        original = np.arange(32, dtype=np.float64)

        def fn(comm):
            if comm.rank == 0:
                buf = np.array(original)
                comm.Send(buf, 1, tag=2)
            elif comm.rank == 1:
                out = np.zeros(32)
                comm.Recv(out, source=0, tag=2)
                return out
            return None

        results = run_spmd(2, fn, config=WorldConfig(fault_schedule=s), timeout=30.0)
        got = results[1]
        assert got.shape == original.shape
        assert not np.array_equal(got, original)

    def test_slow_rank_jitter_preserves_results(self):
        s = FaultSchedule(seed=2)
        s.slow_rank(1, max_jitter=0.002)

        def fn(comm):
            return comm.allreduce(comm.rank)

        assert run_spmd(3, fn, config=WorldConfig(fault_schedule=s), timeout=30.0) == [3, 3, 3]

    def test_reset_allows_replay(self):
        s = FaultSchedule()
        s.crash_rank(1, at_op=2)

        def fn(comm):
            if comm.rank == 1:
                comm.barrier()
            return "ok"

        def victim(comm):
            try:
                for _ in range(5):
                    comm.send(0, 0, tag=9)
            except ProcessFailedError:
                pass
            return "ok"

        def observer(comm):
            got = []
            try:
                while True:
                    got.append(comm.recv(source=1, tag=9))
            except ProcessFailedError:
                return got

        for _ in range(2):  # same schedule replays identically after reset
            s.reset()
            world = World(2, WorldConfig(fault_schedule=s))
            results = run_world(world, [observer, victim], timeout=30.0)
            assert isinstance(results[1].exception, SimulatedCrash)
            assert results[0].value == [0]


class TestDisabledOverhead:
    def test_no_schedule_means_no_hook_work(self):
        # The disabled path must be a single attribute check; sanity-check
        # the semantics (exact overhead is measured in BENCH_faults.json).
        def fn(comm):
            total = 0
            for i in range(50):
                total = comm.allreduce(1)
            return total

        assert run_spmd(4, fn, timeout=30.0) == [4, 4, 4, 4]
