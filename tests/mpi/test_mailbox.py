"""Mailbox internals: matching, posting order, cancellation
(repro.mpi.mailbox) — exercised directly, without communicators."""

import pickle

import pytest

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.mailbox import Envelope, Mailbox, PostedRecv
from repro.mpi.world import World


def env(ctx=0, source=0, tag=0, payload=b"", kind="object"):
    return Envelope(ctx, source, tag, payload, kind, len(payload))


@pytest.fixture
def mailbox():
    world = World(1)
    return world.mailboxes[0]


class TestEnvelopeMatching:
    def test_exact_match(self):
        assert env(ctx=1, source=2, tag=3).matches(1, 2, 3)

    def test_context_must_match(self):
        assert not env(ctx=1).matches(2, ANY_SOURCE, ANY_TAG)

    def test_wildcards(self):
        e = env(ctx=0, source=4, tag=9)
        assert e.matches(0, ANY_SOURCE, 9)
        assert e.matches(0, 4, ANY_TAG)
        assert e.matches(0, ANY_SOURCE, ANY_TAG)

    def test_mismatched_source_or_tag(self):
        e = env(source=4, tag=9)
        assert not e.matches(0, 5, 9)
        assert not e.matches(0, 4, 8)


class TestPostedRecv:
    def test_accepts_delegates_to_matches(self):
        pr = PostedRecv(0, ANY_SOURCE, 7)
        assert pr.accepts(env(tag=7))
        assert not pr.accepts(env(tag=8))

    def test_done_transitions(self):
        pr = PostedRecv(0, 0, 0)
        assert not pr.done
        pr.envelope = env()
        assert pr.done


class TestMailboxQueues:
    def test_deliver_then_post(self, mailbox):
        mailbox.deliver(env(tag=5, payload=b"x"))
        pr = mailbox.post_recv(0, ANY_SOURCE, 5)
        assert pr.done and pr.envelope.payload == b"x"

    def test_post_then_deliver(self, mailbox):
        pr = mailbox.post_recv(0, ANY_SOURCE, 5)
        assert not pr.done
        mailbox.deliver(env(tag=5))
        assert pr.done

    def test_earliest_pending_matched_first(self, mailbox):
        mailbox.deliver(env(tag=1, payload=b"first"))
        mailbox.deliver(env(tag=1, payload=b"second"))
        pr = mailbox.post_recv(0, ANY_SOURCE, 1)
        assert pr.envelope.payload == b"first"

    def test_earliest_posted_matched_first(self, mailbox):
        pr1 = mailbox.post_recv(0, ANY_SOURCE, 1)
        pr2 = mailbox.post_recv(0, ANY_SOURCE, 1)
        mailbox.deliver(env(tag=1, payload=b"goes-to-first"))
        assert pr1.done and not pr2.done

    def test_selective_posting_skips_nonmatching_pending(self, mailbox):
        mailbox.deliver(env(tag=1, payload=b"one"))
        mailbox.deliver(env(tag=2, payload=b"two"))
        pr = mailbox.post_recv(0, ANY_SOURCE, 2)
        assert pr.envelope.payload == b"two"
        assert mailbox.stats() == (1, 0)

    def test_delivery_skips_nonmatching_posted(self, mailbox):
        pr_other = mailbox.post_recv(0, ANY_SOURCE, 9)
        mailbox.deliver(env(tag=1))
        assert not pr_other.done
        assert mailbox.stats() == (1, 1)

    def test_cancel_unmatched(self, mailbox):
        pr = mailbox.post_recv(0, ANY_SOURCE, 1)
        assert mailbox.cancel(pr) is True
        mailbox.deliver(env(tag=1))
        assert not pr.done  # cancelled receive never matches

    def test_cancel_matched_fails(self, mailbox):
        mailbox.deliver(env(tag=1))
        pr = mailbox.post_recv(0, ANY_SOURCE, 1)
        assert mailbox.cancel(pr) is False

    def test_stats(self, mailbox):
        mailbox.deliver(env(tag=1))
        mailbox.post_recv(0, ANY_SOURCE, 2)
        assert mailbox.stats() == (1, 1)


class TestProbeNonblocking:
    def test_probe_peeks_without_removing(self, mailbox):
        mailbox.deliver(env(tag=3, payload=b"keep"))
        found = mailbox.probe(0, ANY_SOURCE, 3, block=False, what="test")
        assert found is not None and found.payload == b"keep"
        assert mailbox.stats() == (1, 0)

    def test_probe_empty_returns_none(self, mailbox):
        assert mailbox.probe(0, ANY_SOURCE, ANY_TAG, block=False, what="test") is None

    def test_probe_respects_context(self, mailbox):
        mailbox.deliver(env(ctx=7, tag=1))
        assert mailbox.probe(0, ANY_SOURCE, ANY_TAG, block=False, what="t") is None
        assert mailbox.probe(7, ANY_SOURCE, ANY_TAG, block=False, what="t") is not None
