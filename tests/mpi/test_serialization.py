"""The zero-copy serialization layer (repro.mpi.serialization)."""

import pickle

import numpy as np
import pytest

from repro import mpi
from repro.mpi.serialization import Blob, payload_nbytes
from repro.mpi.world import WorldConfig


class TaggedArray(np.ndarray):
    """An ndarray subclass (module-level so pickle can find it)."""


class TestBlobEncode:
    def test_pickle_roundtrip(self):
        blob = Blob.encode({"a": [1, 2], "b": "x"})
        assert blob.kind == "pickle"
        assert blob.nbytes == len(blob.data)
        assert blob.decode() == {"a": [1, 2], "b": "x"}

    def test_array_fast_path(self):
        arr = np.arange(12.0).reshape(3, 4)
        blob = Blob.encode(arr)
        assert blob.kind == "array"
        assert blob.nbytes == arr.nbytes
        np.testing.assert_array_equal(blob.decode(), arr)

    def test_array_path_disabled(self):
        arr = np.arange(4.0)
        blob = Blob.encode(arr, allow_array=False)
        assert blob.kind == "pickle"
        np.testing.assert_array_equal(blob.decode(), arr)

    def test_object_dtype_array_is_pickled(self):
        arr = np.array([{"x": 1}, None], dtype=object)
        blob = Blob.encode(arr)
        assert blob.kind == "pickle"

    def test_ndarray_subclass_is_pickled(self):
        # Subclasses may carry extra state; only plain ndarrays take the
        # snapshot path.
        arr = np.arange(4.0).view(TaggedArray)
        blob = Blob.encode(arr)
        assert blob.kind == "pickle"
        assert isinstance(blob.decode(), TaggedArray)

    def test_snapshot_is_immutable_and_detached(self):
        arr = np.zeros(5)
        blob = Blob.encode(arr)
        arr[:] = 99.0  # sender mutates after encode
        np.testing.assert_array_equal(blob.decode(), np.zeros(5))
        with pytest.raises((ValueError, RuntimeError)):
            blob.data[0] = 1.0

    def test_each_decode_is_private(self):
        blob = Blob.encode(np.ones(3))
        a, b = blob.decode(), blob.decode()
        a[0] = -1.0
        assert b[0] == 1.0
        assert a.flags.writeable and b.flags.writeable


class TestPayloadNbytes:
    def test_blob(self):
        assert payload_nbytes(Blob.encode(np.zeros(4))) == 32

    def test_ndarray(self):
        assert payload_nbytes(np.zeros((2, 2))) == 32

    def test_raw_bytes(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(3)) == 3

    def test_unknown_payload(self):
        assert payload_nbytes(("op", None)) == 0


class TestFastpathAblation:
    """The same programs produce identical results with the flag off."""

    def run_both(self, fn, nprocs):
        on = mpi.run_spmd(nprocs, fn, config=WorldConfig(serialization_fastpath=True))
        off = mpi.run_spmd(nprocs, fn, config=WorldConfig(serialization_fastpath=False))
        return on, off

    def test_bcast_identical(self):
        def prog(comm):
            return comm.bcast(np.arange(10.0) if comm.rank == 0 else None).tolist()

        on, off = self.run_both(prog, 4)
        assert on == off

    def test_send_recv_identical(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.full(6, 7.0), dest=1)
                return None
            if comm.rank == 1:
                return comm.recv(source=0).sum()
            return None

        on, off = self.run_both(prog, 2)
        assert on == off == [None, 42.0]

    def test_copy_avoided_ledger_only_on_fastpath(self):
        def prog(comm):
            before = comm.world.traffic_snapshot()
            comm.bcast(np.arange(1024.0) if comm.rank == 0 else None)
            comm.barrier()
            return comm.world.traffic_snapshot().since(before).copy_avoided_bytes

        on, off = self.run_both(prog, 4)
        # Rank 0 snapshots before any traffic moves and after the barrier
        # has flushed it all, so its delta sees the whole bcast.
        assert on[0] > 0
        assert all(v == 0 for v in off)


class TestObjectModeStatusCount:
    def test_count_is_encoded_bytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3], dest=1, tag=5)
                return comm.last_payload_bytes
            status = mpi.Status()
            comm.recv(source=0, tag=5, status=status)
            return status.count

        sent_bytes, recv_count = mpi.run_spmd(2, prog)
        assert sent_bytes == recv_count > 0

    def test_array_count_matches_nbytes(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), dest=1)
                return None
            status = mpi.Status()
            comm.recv(source=0, status=status)
            return status.count

        config = WorldConfig(serialization_fastpath=True)
        assert mpi.run_spmd(2, prog, config=config)[1] == 800

    def test_legacy_pickled_count(self):
        # Flag off: counts are the pickle size, as before the fast path.
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), dest=1)
                return None
            status = mpi.Status()
            comm.recv(source=0, status=status)
            return status.count

        config = WorldConfig(serialization_fastpath=False)
        count = mpi.run_spmd(2, prog, config=config)[1]
        assert count == len(pickle.dumps(np.zeros(100), pickle.HIGHEST_PROTOCOL))
