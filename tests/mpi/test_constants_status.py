"""Constants, tag validation, and Status (repro.mpi.constants / status)."""

import pytest

from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    TAG_UB,
    UNDEFINED,
    is_valid_recv_tag,
    is_valid_tag,
)
from repro.mpi.status import Status


class TestConstants:
    def test_sentinels_distinct_and_negative(self):
        sentinels = {ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED}
        assert len(sentinels) == 4
        assert all(s < 0 for s in sentinels)

    def test_tag_ub(self):
        assert TAG_UB == 2**31 - 1


class TestTagValidation:
    @pytest.mark.parametrize("tag", [0, 1, 12345, TAG_UB])
    def test_valid_send_tags(self, tag):
        assert is_valid_tag(tag)

    @pytest.mark.parametrize("tag", [-1, TAG_UB + 1, ANY_TAG])
    def test_invalid_send_tags(self, tag):
        assert not is_valid_tag(tag)

    def test_recv_accepts_wildcard(self):
        assert is_valid_recv_tag(ANY_TAG)
        assert is_valid_recv_tag(0)
        assert not is_valid_recv_tag(-7)


class TestStatus:
    def test_defaults(self):
        st = Status()
        assert st.source == -1 and st.tag == -1 and st.count == 0
        assert st.cancelled is False

    def test_mpi4py_accessors(self):
        st = Status(source=3, tag=9, count=128)
        assert st.Get_source() == 3
        assert st.Get_tag() == 9
        assert st.Get_count() == 128
