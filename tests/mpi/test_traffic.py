"""Traffic accounting: verifying each algorithm's exact message complexity.

These tests pin the textbook message counts — the strongest possible
check that the implemented algorithm is the claimed one (a linear bcast on
P ranks delivers exactly P-1 messages; a ring allgather exactly P(P-1)).
"""

import numpy as np
import pytest

from repro.mpi import World, WorldConfig
from repro.mpi.executor import run_world
from repro.mpi.world import TrafficStats


def traffic_of(nprocs, fn, config=None):
    """Run fn on a fresh world; return the traffic it generated."""
    world = World(nprocs, config)
    run_world(world, [fn] * nprocs)
    return world.traffic_snapshot()


def linear_family():
    return WorldConfig(
        bcast_algorithm="linear",
        reduce_algorithm="linear",
        allreduce_algorithm="reduce_bcast",
        allgather_algorithm="gather_bcast",
        barrier_algorithm="linear",
    )


def tree_family():
    return WorldConfig(
        bcast_algorithm="binomial",
        reduce_algorithm="binomial",
        allreduce_algorithm="recursive_doubling",
        allgather_algorithm="ring",
        barrier_algorithm="dissemination",
    )


class TestExactMessageCounts:
    @pytest.mark.parametrize("n", [2, 4, 7, 8])
    def test_linear_bcast_sends_p_minus_1(self, n):
        stats = traffic_of(n, lambda c: c.bcast("x"), linear_family())
        assert stats.messages == n - 1

    @pytest.mark.parametrize("n", [2, 4, 7, 8])
    def test_binomial_bcast_also_p_minus_1(self, n):
        # A tree moves the same number of messages; it wins on rounds.
        stats = traffic_of(n, lambda c: c.bcast("x"), tree_family())
        assert stats.messages == n - 1

    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_gather_sends_p_minus_1(self, n):
        stats = traffic_of(n, lambda c: c.gather(c.rank), linear_family())
        assert stats.messages == n - 1

    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_ring_allgather_p_times_p_minus_1(self, n):
        stats = traffic_of(n, lambda c: c.allgather(c.rank), tree_family())
        assert stats.messages == n * (n - 1)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_dissemination_barrier_p_log_p(self, n):
        import math

        stats = traffic_of(n, lambda c: c.barrier(), tree_family())
        assert stats.messages == n * math.ceil(math.log2(n))

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_recursive_doubling_allreduce_power_of_two(self, n):
        import math

        stats = traffic_of(n, lambda c: c.allreduce(1), tree_family())
        assert stats.messages == n * int(math.log2(n))

    def test_alltoall_p_times_p_minus_1(self):
        n = 4
        stats = traffic_of(n, lambda c: c.alltoall(list(range(c.size))))
        assert stats.messages == n * (n - 1)

    def test_p2p_counts_each_send_once(self):
        def main(comm):
            if comm.rank == 0:
                for _ in range(5):
                    comm.send("x", 1)
            else:
                for _ in range(5):
                    comm.recv(source=0)

        stats = traffic_of(2, main)
        assert stats.messages == 5
        assert stats.by_kind == {"object": 5}


class TestByteAccounting:
    def test_buffer_bytes(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(100), 1)
            else:
                comm.Recv(np.zeros(100), source=0)

        stats = traffic_of(2, main)
        assert stats.payload_bytes == 800  # 100 float64
        assert stats.by_kind == {"buffer": 1}

    def test_bufcoll_kind_tracked(self):
        def main(comm):
            comm.Allreduce(np.ones(8))

        stats = traffic_of(2, main)
        assert stats.by_kind.get("bufcoll", 0) > 0

    def test_object_bytes_are_pickle_sizes(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("payload", 1)
            else:
                comm.recv(source=0)

        stats = traffic_of(2, main)
        assert stats.payload_bytes > len("payload")  # pickle framing included


class TestSnapshots:
    def test_since_subtracts(self):
        a = TrafficStats(10, 100, {"object": 10})
        b = TrafficStats(15, 180, {"object": 12, "buffer": 3})
        d = b.since(a)
        assert (d.messages, d.payload_bytes) == (5, 80)
        assert d.by_kind == {"object": 2, "buffer": 3}

    def test_snapshot_is_independent_copy(self):
        world = World(1)
        snap = world.traffic_snapshot()
        world.record_traffic("object", 4)
        assert snap.messages == 0
        assert world.traffic_snapshot().messages == 1


class TestHandshakeComplexity:
    """The handshake's communication volume vs world size — the cost model
    behind experiment E9."""

    def handshake_traffic(self, n_components, procs_each):
        from repro import components_setup
        from repro.launcher.job import MpmdJob

        names = [f"c{i}" for i in range(n_components)]
        registry = "BEGIN\n" + "\n".join(names) + "\nEND"

        def make(name):
            def program(world, env):
                components_setup(world, name, env=env)
                return None

            program.__name__ = name
            return program

        job = MpmdJob([(make(n), procs_each) for n in names], registry=registry)
        # Reach into the job to use a world we can inspect.
        from repro.launcher.rankmap import assign_ranks
        from repro.mpi.world import World as W

        sizes = [s.nprocs for s in job.specs]
        assignment = assign_ranks(sizes, "block")
        world = W(job.world_size, job.config)
        rank_fns = [None] * job.world_size
        from repro.launcher.job import JobEnv, _bind

        for exe_index, ranks in enumerate(assignment):
            for local_index, world_rank in enumerate(ranks):
                env = JobEnv(
                    program=job.specs[exe_index].program,
                    exe_index=exe_index,
                    local_index=local_index,
                    registry=registry,
                )
                rank_fns[world_rank] = _bind(job.fns[exe_index], env)
        run_world(world, rank_fns)
        return world.traffic_snapshot()

    def test_traffic_grows_with_world_size(self):
        small = self.handshake_traffic(2, 1).messages
        large = self.handshake_traffic(2, 4).messages
        assert large > small

    def test_traffic_grows_with_components(self):
        few = self.handshake_traffic(2, 2).messages
        many = self.handshake_traffic(6, 2).messages
        assert many > few

    def test_superlinear_from_declaration_allgather(self):
        """The declarations allgather is ring (O(P^2) messages), so the
        handshake total grows faster than linearly in P."""
        p4 = self.handshake_traffic(4, 1).messages
        p8 = self.handshake_traffic(8, 1).messages
        assert p8 > 2 * p4
