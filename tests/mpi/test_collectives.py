"""Collective operations across sizes and algorithm choices."""

import numpy as np
import pytest

from repro.errors import CollectiveMismatchError
from repro.mpi import MAX, MAXLOC, MIN, SUM, Op, WorldConfig

SIZES = [1, 2, 3, 4, 5, 8]

ALGO_CONFIGS = [
    WorldConfig(
        bcast_algorithm="linear",
        reduce_algorithm="linear",
        allreduce_algorithm="reduce_bcast",
        allgather_algorithm="gather_bcast",
        barrier_algorithm="linear",
    ),
    WorldConfig(
        bcast_algorithm="binomial",
        reduce_algorithm="binomial",
        allreduce_algorithm="recursive_doubling",
        allgather_algorithm="ring",
        barrier_algorithm="dissemination",
    ),
]
ALGO_IDS = ["linear-family", "tree-family"]


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestBcast:
    @pytest.mark.parametrize("n", SIZES)
    def test_from_root_zero(self, spmd, config, n):
        def main(comm):
            return comm.bcast({"v": 42} if comm.rank == 0 else None)

        assert spmd(n, main, config=config) == [{"v": 42}] * n

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_nonzero_root(self, spmd, config, n):
        def main(comm):
            return comm.bcast("payload" if comm.rank == n - 1 else None, root=n - 1)

        assert spmd(n, main, config=config) == ["payload"] * n

    def test_every_root(self, spmd, config):
        def main(comm):
            out = []
            for root in range(comm.size):
                out.append(comm.bcast(comm.rank if comm.rank == root else None, root=root))
            return out

        for values in spmd(5, main, config=config):
            assert values == list(range(5))


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestGatherScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_gather(self, spmd, config, n):
        def main(comm):
            return comm.gather(comm.rank**2)

        values = spmd(n, main, config=config)
        assert values[0] == [r**2 for r in range(n)]
        assert all(v is None for v in values[1:])

    def test_gather_nonzero_root(self, spmd, config):
        def main(comm):
            return comm.gather(chr(ord("a") + comm.rank), root=2)

        values = spmd(4, main, config=config)
        assert values[2] == ["a", "b", "c", "d"]

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter(self, spmd, config, n):
        def main(comm):
            objs = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs)

        assert spmd(n, main, config=config) == [i * 10 for i in range(n)]

    def test_scatter_wrong_length(self, spmd, config):
        def main(comm):
            comm.scatter([1] if comm.rank == 0 else None)

        with pytest.raises(CollectiveMismatchError):
            spmd(3, main, config=config)

    def test_gather_variable_sizes(self, spmd, config):
        """Object mode gathers heterogeneous payloads (the gatherv case)."""

        def main(comm):
            return comm.gather(list(range(comm.rank)))

        values = spmd(4, main, config=config)
        assert values[0] == [[], [0], [0, 1], [0, 1, 2]]


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestAllgatherAlltoall:
    @pytest.mark.parametrize("n", SIZES)
    def test_allgather(self, spmd, config, n):
        def main(comm):
            return comm.allgather(comm.rank + 1)

        assert spmd(n, main, config=config) == [[r + 1 for r in range(n)]] * n

    @pytest.mark.parametrize("n", [1, 2, 4, 5])
    def test_alltoall(self, spmd, config, n):
        def main(comm):
            objs = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(objs)

        values = spmd(n, main, config=config)
        for r, got in enumerate(values):
            assert got == [f"{s}->{r}" for s in range(n)]

    def test_alltoall_wrong_length(self, spmd, config):
        def main(comm):
            comm.alltoall([1, 2])

        with pytest.raises(CollectiveMismatchError):
            spmd(3, main, config=config)


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestReductions:
    @pytest.mark.parametrize("n", SIZES)
    def test_reduce_sum(self, spmd, config, n):
        def main(comm):
            return comm.reduce(comm.rank + 1, op=SUM)

        values = spmd(n, main, config=config)
        assert values[0] == n * (n + 1) // 2
        assert all(v is None for v in values[1:])

    @pytest.mark.parametrize("n", [2, 3, 7])
    def test_reduce_nonzero_root(self, spmd, config, n):
        def main(comm):
            return comm.reduce(comm.rank, op=MAX, root=1)

        values = spmd(n, main, config=config)
        assert values[1] == n - 1

    @pytest.mark.parametrize("n", SIZES)
    def test_allreduce_sum(self, spmd, config, n):
        def main(comm):
            return comm.allreduce(comm.rank)

        assert spmd(n, main, config=config) == [n * (n - 1) // 2] * n

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 7, 8])
    def test_allreduce_nonpoweroftwo(self, spmd, config, n):
        """Exercises the recursive-doubling fold-in phases."""

        def main(comm):
            return comm.allreduce(2**comm.rank)

        assert spmd(n, main, config=config) == [2**n - 1] * n

    def test_allreduce_min_max(self, spmd, config):
        def main(comm):
            return (comm.allreduce(comm.rank, op=MIN), comm.allreduce(comm.rank, op=MAX))

        assert spmd(5, main, config=config) == [(0, 4)] * 5

    def test_allreduce_arrays(self, spmd, config):
        def main(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=np.int64))

        for arr in spmd(4, main, config=config):
            np.testing.assert_array_equal(arr, [6, 6, 6])

    def test_allreduce_maxloc(self, spmd, config):
        def main(comm):
            value = [3.0, 9.0, 9.0, 1.0][comm.rank]
            return comm.allreduce((value, comm.rank), op=MAXLOC)

        # ties take the smaller rank
        assert spmd(4, main, config=config) == [(9.0, 1)] * 4

    def test_reduce_noncommutative_rank_order(self, spmd, config):
        concat = Op.create(lambda a, b: a + b, name="concat", commutative=False)

        def main(comm):
            return comm.reduce(chr(ord("a") + comm.rank), op=concat)

        assert spmd(5, main, config=config)[0] == "abcde"

    def test_allreduce_noncommutative(self, spmd, config):
        concat = Op.create(lambda a, b: a + b, name="concat", commutative=False)

        def main(comm):
            return comm.allreduce(str(comm.rank), op=concat)

        assert spmd(4, main, config=config) == ["0123"] * 4


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_inclusive_scan(self, spmd, config, n):
        def main(comm):
            return comm.scan(comm.rank + 1)

        assert spmd(n, main, config=config) == [sum(range(1, r + 2)) for r in range(n)]

    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_exscan(self, spmd, config, n):
        def main(comm):
            return comm.exscan(comm.rank + 1)

        values = spmd(n, main, config=config)
        assert values[0] is None
        for r in range(1, n):
            assert values[r] == sum(range(1, r + 1))


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestReduceScatterBarrier:
    @pytest.mark.parametrize("n", [1, 2, 4, 5])
    def test_reduce_scatter(self, spmd, config, n):
        def main(comm):
            # rank r contributes [r*size + slot for slot]
            objs = [comm.rank * comm.size + slot for slot in range(comm.size)]
            return comm.reduce_scatter(objs)

        values = spmd(n, main, config=config)
        for slot, got in enumerate(values):
            assert got == sum(r * n + slot for r in range(n))

    @pytest.mark.parametrize("n", SIZES)
    def test_barrier_orders_side_effects(self, spmd, config, n):
        """After the barrier, every pre-barrier message must have arrived."""

        def main(comm):
            if comm.rank == 0:
                for d in range(1, comm.size):
                    comm.send("pre", d, tag=1)
            comm.barrier()
            if comm.rank != 0:
                st = comm.iprobe(source=0, tag=1)
                assert st is not None, "pre-barrier message missing after barrier"
                return comm.recv(source=0, tag=1)
            return "root"

        values = spmd(n, main, config=config)
        assert values[0] == "root"
        assert all(v == "pre" for v in values[1:])


class TestCollectiveSequencing:
    def test_many_collectives_back_to_back(self, spmd):
        """Tag sequencing must isolate consecutive collectives."""

        def main(comm):
            acc = []
            for i in range(25):
                acc.append(comm.allreduce(i + comm.rank))
            return acc

        n = 4
        values = spmd(n, main)
        expect = [i * n + sum(range(n)) for i in range(25)]
        assert values[0] == expect

    def test_collectives_do_not_eat_user_messages(self, spmd):
        """User p2p with tag 0 must survive interleaved collectives
        (context isolation)."""

        def main(comm):
            if comm.rank == 0:
                comm.send("user", 1, tag=0)
            comm.barrier()
            comm.allreduce(1)
            if comm.rank == 1:
                return comm.recv(source=0, tag=0)
            return None

        assert spmd(2, main)[1] == "user"

    def test_mismatched_collectives_detected(self, spmd):
        """A rank receiving another collective's traffic gets a
        CollectiveMismatchError naming both operations."""

        def main(comm):
            if comm.rank == 0:
                comm.allreduce(1)  # sends to rank 1, then receives
            else:
                comm.bcast(None, root=0)  # receives — the wrong operation

        with pytest.raises(CollectiveMismatchError, match="mismatched collectives"):
            spmd(2, main, config=WorldConfig(deadlock_grace=0.3))

    def test_sendonly_mismatch_deadlocks_and_is_reported(self, spmd):
        """When both mismatched sides only wait, the deadlock detector is
        the reporting mechanism (as in real MPI, nothing errors eagerly)."""
        from repro.errors import DeadlockError

        def main(comm):
            if comm.rank == 0:
                comm.gather("x")  # root: waits for rank 1's contribution
            else:
                comm.bcast(None, root=1)  # waits for... nothing matching

        with pytest.raises((CollectiveMismatchError, DeadlockError)):
            spmd(2, main, config=WorldConfig(deadlock_grace=0.3))


FASTPATH_CONFIGS = [
    WorldConfig(bcast_algorithm="linear", serialization_fastpath=on)
    for on in (True, False)
] + [
    WorldConfig(bcast_algorithm="binomial", serialization_fastpath=on)
    for on in (True, False)
]
FASTPATH_IDS = ["linear-on", "linear-off", "binomial-on", "binomial-off"]


@pytest.mark.parametrize("config", FASTPATH_CONFIGS, ids=FASTPATH_IDS)
class TestBcastMutationIsolation:
    """The pickle-once / relay-forward fast path must preserve the value
    semantics of distributed memory: every rank owns a private result."""

    def test_receiver_mutation_is_private(self, spmd, config):
        def main(comm):
            got = comm.bcast(np.zeros(16) if comm.rank == 0 else None)
            got[:] = float(comm.rank)  # each rank scribbles on its copy
            comm.barrier()
            return got.tolist()

        values = spmd(4, main, config=config)
        for rank, got in enumerate(values):
            assert got == [float(rank)] * 16

    def test_root_mutation_after_bcast_invisible(self, spmd, config):
        def main(comm):
            arr = np.arange(6.0) if comm.rank == 0 else None
            got = comm.bcast(arr)
            if comm.rank == 0:
                arr[:] = -5.0
            comm.barrier()
            return got.tolist() if comm.rank != 0 else None

        values = spmd(4, main, config=config)
        for got in values[1:]:
            assert got == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_buffer_bcast_receivers_private(self, spmd, config):
        def main(comm):
            buf = np.full(8, float(comm.rank)) if comm.rank != 0 else np.arange(8.0)
            comm.Bcast(buf, root=0)
            buf += comm.rank  # mutate the received buffer
            comm.barrier()
            return buf.tolist()

        values = spmd(4, main, config=config)
        for rank, got in enumerate(values):
            assert got == (np.arange(8.0) + rank).tolist()

    def test_nested_objects_stay_private(self, spmd, config):
        def main(comm):
            payload = {"grid": [1, 2, 3]} if comm.rank == 0 else None
            got = comm.bcast(payload)
            got["grid"].append(comm.rank + 10)
            comm.barrier()
            return got["grid"]

        values = spmd(3, main, config=config)
        for rank, grid in enumerate(values):
            assert grid == [1, 2, 3, rank + 10]
