"""Collective tag arithmetic: no collisions between composed phases.

Composed collectives (the ``gather_bcast`` allgather, the
``reduce_bcast`` allreduce, the linear barrier, and ``reduce_scatter``)
run a second phase on ``tag + 1``.  Base tags advance in strides of
``_COLL_TAG_STRIDE`` per collective call, so back-to-back collectives on
one communicator stay disjoint as long as the largest sub-tag offset any
composition uses (``MAX_TAG_OFFSET``) is below the stride.  These tests
pin the inequality and exercise the interleavings that would break first
if it ever regressed.
"""

import numpy as np
import pytest

from repro.mpi import collectives
from repro.mpi.comm import _COLL_TAG_STRIDE
from repro.mpi.world import WorldConfig

#: The two algorithm families the benchmarks ablate; both must survive
#: back-to-back composed collectives.
CONFIGS = {
    "tree": WorldConfig(
        bcast_algorithm="binomial",
        reduce_algorithm="binomial",
        allreduce_algorithm="recursive_doubling",
        allgather_algorithm="ring",
        barrier_algorithm="dissemination",
    ),
    "linear": WorldConfig(
        bcast_algorithm="linear",
        reduce_algorithm="linear",
        allreduce_algorithm="reduce_bcast",
        allgather_algorithm="gather_bcast",
        barrier_algorithm="linear",
    ),
}


def test_max_offset_below_stride():
    """The audited invariant: composed sub-tags can never reach the next
    collective's base tag."""
    assert collectives.MAX_TAG_OFFSET < _COLL_TAG_STRIDE


def test_source_audit_of_tag_offsets():
    """No composition in collectives.py uses an offset beyond the audited
    maximum (catches a future `tag + 2` slipping in unreviewed)."""
    import inspect
    import re

    from repro.mpi import buffer_collectives

    src = inspect.getsource(collectives) + inspect.getsource(
        buffer_collectives
    )
    offsets = [int(m) for m in re.findall(r"tag \+ (\d+)", src)]
    assert offsets, "expected composed collectives to use tag offsets"
    assert max(offsets) <= collectives.MAX_TAG_OFFSET


@pytest.mark.parametrize("name", list(CONFIGS))
class TestBackToBackCollectives:
    """Interleave composed collectives so a tag collision would misroute
    a phase-two message into the next collective."""

    def test_allgather_then_allgather(self, spmd, name):
        def prog(comm):
            a = comm.allgather(("first", comm.rank))
            b = comm.allgather(("second", comm.rank * 10))
            return a, b

        for a, b in spmd(5, prog, config=CONFIGS[name]):
            assert a == [("first", r) for r in range(5)]
            assert b == [("second", r * 10) for r in range(5)]

    def test_allreduce_then_allgather(self, spmd, name):
        def prog(comm):
            total = comm.allreduce(comm.rank + 1)
            gathered = comm.allgather(total)
            return total, gathered

        for total, gathered in spmd(4, prog, config=CONFIGS[name]):
            assert total == 10
            assert gathered == [10, 10, 10, 10]

    def test_reduce_scatter_then_reduce_scatter(self, spmd, name):
        def prog(comm):
            first = comm.reduce_scatter([comm.rank] * comm.size)
            second = comm.reduce_scatter([1] * comm.size)
            return first, second

        for first, second in spmd(4, prog, config=CONFIGS[name]):
            assert first == 6  # sum of ranks 0..3
            assert second == 4

    def test_barrier_sandwich(self, spmd, name):
        def prog(comm):
            comm.barrier()
            total = comm.allreduce(np.arange(3.0) * comm.rank)
            comm.barrier()
            return total.tolist()

        expected = (np.arange(3.0) * sum(range(4))).tolist()
        assert spmd(4, prog, config=CONFIGS[name]) == [expected] * 4

    def test_rapid_mixed_sequence(self, spmd, name):
        """A dense burst of every composed collective back to back."""

        def prog(comm):
            out = []
            for step in range(3):
                out.append(comm.allgather((step, comm.rank)))
                out.append(comm.allreduce(step))
                comm.barrier()
                out.append(comm.reduce_scatter(list(range(comm.size))))
            return out

        results = spmd(3, prog, config=CONFIGS[name])
        for rank, out in enumerate(results):
            for step in range(3):
                assert out[3 * step] == [(step, r) for r in range(3)]
                assert out[3 * step + 1] == step * 3
                assert out[3 * step + 2] == rank * 3
