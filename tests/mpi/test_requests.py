"""Nonblocking requests: isend/irecv, wait/test, cancellation, posting order."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Request, Status


class TestIsend:
    def test_isend_request_completes(self, spmd):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend("nb", 1, tag=2)
                done, value = req.test()
                assert done and value is None
                req.wait()
                return "sent"
            return comm.recv(source=0, tag=2)

        assert spmd(2, main) == ["sent", "nb"]

    def test_many_outstanding_isends(self, spmd):
        def main(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, 1, tag=i) for i in range(20)]
                Request.waitall(reqs)
                return None
            # receive in reverse tag order to prove buffering
            return [comm.recv(source=0, tag=t) for t in reversed(range(20))]

        assert spmd(2, main)[1] == list(reversed(range(20)))


class TestIrecv:
    def test_wait_returns_object(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.send((1, 2), 1, tag=9)
                return None
            req = comm.irecv(source=0, tag=9)
            return req.wait()

        assert spmd(2, main)[1] == (1, 2)

    def test_test_before_arrival(self, spmd):
        def main(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=1)
                done, _ = req.test()
                # tell rank 0 we've posted and tested
                comm.send(done, 0, tag=2)
                return req.wait()
            early_done = comm.recv(source=1, tag=2)
            comm.send("late", 1, tag=1)
            return early_done

        values = spmd(2, main)
        assert values[0] is False  # nothing had arrived at test time
        assert values[1] == "late"

    def test_posted_receive_matching_order(self, spmd):
        """Two posted irecvs must match arrivals in posting order even when
        waited in reverse order (MPI posted-receive semantics)."""

        def main(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag=7)
                comm.send("second", 1, tag=7)
                return None
            req_a = comm.irecv(source=0, tag=7)
            req_b = comm.irecv(source=0, tag=7)
            b = req_b.wait()
            a = req_a.wait()
            return (a, b)

        assert spmd(2, main)[1] == ("first", "second")

    def test_wait_fills_status(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=31)
                return None
            st = Status()
            req = comm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
            req.wait(st)
            return (st.source, st.tag)

        assert spmd(2, main)[1] == (0, 31)

    def test_repeated_wait_idempotent(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.send([9], 1)
                return None
            req = comm.irecv(source=0)
            first = req.wait()
            second = req.wait()
            return first is second

        assert spmd(2, main)[1] is True


class TestCancel:
    def test_cancel_unmatched_receive(self, spmd):
        def main(comm):
            req = comm.irecv(source=comm.rank, tag=99)
            assert req.cancel() is True
            # a later send must not be stolen by the cancelled receive
            comm.send("kept", comm.rank, tag=99)
            return comm.recv(source=comm.rank, tag=99)

        assert spmd(1, main) == ["kept"]

    def test_cancel_matched_receive_fails(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.send("gotcha", 1, tag=5)
                comm.barrier()
                return None
            comm.barrier()  # message has arrived
            req = comm.irecv(source=0, tag=5)
            cancelled = req.cancel()
            return (cancelled, req.wait())

        assert spmd(2, main)[1] == (False, "gotcha")


class TestWaitallTestall:
    def test_waitall_returns_in_order(self, spmd):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i * i, 1, tag=i)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(5)]
            return Request.waitall(reqs)

        assert spmd(2, main)[1] == [0, 1, 4, 9, 16]

    def test_testall_incomplete(self, spmd):
        def main(comm):
            req = comm.irecv(source=comm.rank, tag=1)
            done, values = Request.testall([req])
            req.cancel()
            return (done, values)

        assert spmd(1, main) == [(False, [])]

    def test_testall_complete(self, spmd):
        def main(comm):
            comm.send("a", comm.rank, tag=1)
            comm.send("b", comm.rank, tag=2)
            reqs = [comm.irecv(source=comm.rank, tag=1), comm.irecv(source=comm.rank, tag=2)]
            done, values = Request.testall(reqs)
            return (done, values)

        assert spmd(1, main) == [(True, ["a", "b"])]
