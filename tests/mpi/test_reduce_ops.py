"""Unit tests for reduction operators (repro.mpi.reduce_ops)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.reduce_ops import (
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PREDEFINED,
    PROD,
    SUM,
    Op,
)


class TestScalarOps:
    def test_sum(self):
        assert SUM.reduce([1, 2, 3]) == 6

    def test_prod(self):
        assert PROD.reduce([2, 3, 4]) == 24

    def test_max_min(self):
        assert MAX.reduce([3, 9, 1]) == 9
        assert MIN.reduce([3, 9, 1]) == 1

    def test_logical(self):
        assert LAND.reduce([True, True, False]) is False
        assert LOR.reduce([False, False, True]) is True
        assert LXOR.reduce([True, True, True]) is True
        assert LXOR.reduce([True, True]) is False

    def test_bitwise(self):
        assert BAND.reduce([0b1100, 0b1010]) == 0b1000
        assert BOR.reduce([0b1100, 0b1010]) == 0b1110
        assert BXOR.reduce([0b1100, 0b1010]) == 0b0110

    def test_reduce_empty_rejected(self):
        with pytest.raises(ValueError):
            SUM.reduce([])

    def test_single_contribution_identity(self):
        for op in (SUM, PROD, MAX, MIN):
            assert op.reduce([7]) == 7


class TestArrayOps:
    def test_sum_elementwise(self):
        out = SUM.reduce([np.array([1, 2]), np.array([3, 4])])
        np.testing.assert_array_equal(out, [4, 6])

    def test_max_elementwise(self):
        out = MAX.reduce([np.array([1, 9]), np.array([5, 2])])
        np.testing.assert_array_equal(out, [5, 9])

    def test_min_elementwise(self):
        out = MIN.reduce([np.array([1, 9]), np.array([5, 2])])
        np.testing.assert_array_equal(out, [1, 2])

    def test_logical_elementwise(self):
        out = LAND.reduce([np.array([True, True]), np.array([True, False])])
        np.testing.assert_array_equal(out, [True, False])


class TestLocOps:
    def test_maxloc_picks_larger(self):
        assert MAXLOC.reduce([(3.0, 0), (7.0, 1), (5.0, 2)]) == (7.0, 1)

    def test_maxloc_tie_takes_smaller_location(self):
        # MPI's documented tie-break.
        assert MAXLOC.reduce([(7.0, 2), (7.0, 1)]) == (7.0, 1)

    def test_minloc_picks_smaller(self):
        assert MINLOC.reduce([(3.0, 0), (1.0, 1), (5.0, 2)]) == (1.0, 1)

    def test_minloc_tie_takes_smaller_location(self):
        assert MINLOC.reduce([(1.0, 5), (1.0, 3)]) == (1.0, 3)


class TestUserOps:
    def test_create_noncommutative(self):
        concat = Op.create(lambda a, b: a + b, name="concat")
        assert not concat.commutative
        assert concat.reduce(["a", "b", "c"]) == "abc"

    def test_rank_order_guaranteed(self):
        # Contributions fold strictly left-to-right.
        pairs = Op.create(lambda a, b: (a, b), name="pairs")
        assert pairs.reduce([1, 2, 3]) == ((1, 2), 3)

    def test_predefined_registry(self):
        assert PREDEFINED["SUM"] is SUM
        assert len(PREDEFINED) == 12


class TestOpProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_sum_matches_builtin(self, xs):
        assert SUM.reduce(xs) == sum(xs)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_max_matches_builtin(self, xs):
        assert MAX.reduce(xs) == max(xs)
        assert MIN.reduce(xs) == min(xs)

    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 31)), min_size=1, max_size=16))
    def test_maxloc_invariants(self, pairs):
        value, loc = MAXLOC.reduce(pairs)
        best = max(v for v, _ in pairs)
        assert value == best
        assert loc == min(l for v, l in pairs if v == best)
