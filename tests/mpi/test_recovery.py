"""ULFM-style recovery: rank death, revoke/shrink/agree, MPH rehandshake.

A :class:`SimulatedCrash` kills one rank fail-stop; unlike a user
exception it must NOT abort the world.  Survivors see
:class:`ProcessFailedError` from operations involving the dead rank,
revoke the communicator, shrink it, and continue on the result — the
recovery sequence of MPI's User-Level Failure Mitigation proposal.
"""

import time

import pytest

from repro.errors import AbortError, DeadlockError, ProcessFailedError, RevokedError
from repro.mpi import FaultSchedule, SimulatedCrash, WorldConfig
from repro.mpi.executor import run_world
from repro.mpi.world import World


class TestRankDeath:
    def test_crash_is_survivable_not_abort(self):
        """The whole point: one dead rank must not bring down the job."""

        def main(comm):
            if comm.rank == 1:
                raise SimulatedCrash("die")
            if comm.rank == 0:
                try:
                    comm.recv(source=1, tag=1)
                except ProcessFailedError:
                    pass
            return "survived"

        world = World(3, None)
        results = run_world(world, [main] * 3, timeout=30.0)
        assert isinstance(results[1].exception, SimulatedCrash)
        assert results[0].value == "survived"
        assert results[2].value == "survived"

    def test_recv_from_dead_rank_names_it(self, spmd, progress_engine):
        def main(comm):
            if comm.rank == 1:
                raise SimulatedCrash("die")
            try:
                comm.recv(source=1, tag=1)
            except ProcessFailedError as exc:
                return sorted(exc.failed_ranks)
            return None

        results = spmd(2, main, config=WorldConfig(progress_engine=progress_engine))
        assert results[0] == [1]

    def test_posted_recv_fails_when_source_dies(self, spmd, progress_engine):
        """Death *after* the receive is already parked must still fail it
        (the watchdog failure pulse wakes the victim)."""

        def main(comm):
            if comm.rank == 1:
                time.sleep(0.3)  # let rank 0 park first
                raise SimulatedCrash("late death")
            with pytest.raises(ProcessFailedError):
                comm.recv(source=1, tag=1)
            return "ok"

        results = spmd(2, main, config=WorldConfig(progress_engine=progress_engine))
        assert results[0] == "ok"

    def test_dead_rank_is_not_misdiagnosed_as_deadlock(self, fast_deadlock_config):
        """With an aggressive watchdog, a survivor blocked on a dead rank
        must get ProcessFailedError, never DeadlockError."""

        def main(comm):
            if comm.rank == 1:
                time.sleep(0.1)
                raise SimulatedCrash("die")
            try:
                comm.recv(source=1, tag=1)
            except DeadlockError:  # pragma: no cover - the regression
                return "deadlock"
            except ProcessFailedError:
                return "process-failed"

        def run(n, fn, config):
            world = World(n, config)
            return [r.value for r in run_world(world, [fn] * n, timeout=30.0)]

        assert run(2, main, fast_deadlock_config)[0] == "process-failed"

    def test_world_dies_when_nobody_survives(self):
        def main(comm):
            raise SimulatedCrash(f"rank {comm.rank} dies")

        world = World(2, None)
        with pytest.raises(SimulatedCrash):
            run_world(world, [main] * 2, timeout=30.0)

    def test_sibling_abort_preserves_root_cause(self, spmd):
        """Satellite: an AbortError seen by a sibling rank chains the
        originating rank's real exception via ``__cause__``."""
        captured = []

        def main(comm):
            if comm.rank == 0:
                raise ValueError("root boom")
            try:
                comm.recv(source=0, tag=1)
            except AbortError as exc:
                captured.append(exc.__cause__)
                raise

        with pytest.raises(ValueError, match="root boom"):
            spmd(2, main)
        assert captured and isinstance(captured[0], ValueError)


class TestRevoke:
    def test_revoke_poisons_pending_and_future_ops(self, spmd, progress_engine):
        def main(comm):
            if comm.rank == 1:
                time.sleep(0.2)
                comm.revoke()
                comm.revoke()  # idempotent
            else:
                with pytest.raises(RevokedError):
                    comm.recv(source=1, tag=1)  # parked, then poisoned
            with pytest.raises(RevokedError):
                comm.send("x", (comm.rank + 1) % 2, tag=2)  # future op
            return "reached-recovery-path"

        results = spmd(2, main, config=WorldConfig(progress_engine=progress_engine))
        assert results == ["reached-recovery-path"] * 2

    def test_revoke_is_scoped_to_the_communicator(self, spmd):
        def main(comm):
            sub = comm.dup("side")
            if comm.rank == 0:
                sub.revoke()
            comm.barrier()  # the parent communicator still works
            with pytest.raises(RevokedError):
                sub.barrier()
            return comm.allreduce(1)

        assert spmd(2, main) == [2, 2]


class TestShrinkAgree:
    def test_revoke_shrink_continue(self, spmd, progress_engine):
        """The canonical ULFM recovery sequence after a crash."""

        def main(comm):
            if comm.rank == 2:
                raise SimulatedCrash("die")
            if comm.rank == 0:
                try:
                    comm.recv(source=2, tag=1)
                except ProcessFailedError:
                    comm.revoke()
            else:
                try:
                    comm.recv(source=0, tag=1)
                except RevokedError:
                    pass
            new = comm.shrink("survivors")
            assert new.size == 3
            # Survivors keep their relative rank order.
            assert new.rank == {0: 0, 1: 1, 3: 2}[comm.rank]
            return new.allreduce(comm.rank)

        results = spmd(4, main, config=WorldConfig(progress_engine=progress_engine))
        assert [results[r] for r in (0, 1, 3)] == [4, 4, 4]

    def test_agree_over_dead_ranks(self, spmd):
        def main(comm):
            if comm.rank == 1:
                raise SimulatedCrash("die")
            if comm.rank == 0:
                try:
                    comm.recv(source=1, tag=1)
                except ProcessFailedError:
                    pass
            # Dead ranks simply stop contributing; survivors still agree.
            first = comm.agree(True)
            second = comm.agree(comm.rank != 2)  # one False => AND is False
            return (first, second)

        results = spmd(3, main)
        assert results[0] == (True, False)
        assert results[2] == (True, False)

    def test_schedule_driven_crash_then_shrink(self, spmd):
        """End-to-end with the injection substrate: a FaultSchedule kills
        a rank mid-run and the survivors shrink and finish."""
        sched = FaultSchedule(seed=11).crash_rank(1, at_op=4)

        def main(comm):
            try:
                for i in range(10):
                    comm.send(i, (comm.rank + 1) % comm.size, tag=3)
                    comm.recv(source=(comm.rank - 1) % comm.size, tag=3)
            except (ProcessFailedError, RevokedError):
                comm.revoke()
            new = comm.shrink()
            return new.allreduce(1)

        results = spmd(
            4, main, config=WorldConfig(fault_schedule=sched), timeout=60.0
        )
        assert [results[r] for r in (0, 2, 3)] == [3, 3, 3]


class TestMphShrinkWorld:
    def test_rehandshake_over_survivors(self):
        """MPH-level recovery: a whole component dies; the survivors
        shrink the world, re-handshake, and keep using name-addressed
        messaging with their ORIGINAL global proc ids."""
        from repro import components_setup
        from repro.core.mph import HandshakeError
        from repro.launcher.job import mph_run

        reg = "BEGIN\natmosphere\nocean\nEND"

        def atm(world, env):
            mph = components_setup(world, "atmosphere", env=env)
            original_id = mph.global_proc_id()
            try:
                while True:
                    mph.recv("ocean", 0, tag=7)
            except ProcessFailedError:
                mph.global_world.revoke()
            mph2 = mph.shrink_world()
            assert mph2.dead_components == ("ocean",)
            assert mph2.global_proc_id() == original_id
            peers = mph2.component_comm("atmosphere")
            total = peers.allreduce(1)
            me = mph2.local_proc_id()
            if me == 0:
                mph2.send({"hello": 1}, "atmosphere", 1, tag=9)
            elif me == 1:
                assert mph2.recv("atmosphere", 0, tag=9) == {"hello": 1}
            with pytest.raises(HandshakeError):
                mph2.send("x", "ocean", 0)
            return ("ok", total)

        def ocn(world, env):
            components_setup(world, "ocean", env=env)
            raise SimulatedCrash("ocean dies")

        result = mph_run([(atm, 3), (ocn, 1)], registry=reg, timeout=60.0)
        for r in result.procs[:3]:
            assert r.exception is None, r.exception
            assert r.value == ("ok", 3)
        assert isinstance(result.procs[3].exception, SimulatedCrash)

    def test_messaging_to_dead_rank_of_live_component(self):
        """Partial component death: sends addressed to a dead local rank
        raise a clean ProcessFailedError naming the world rank."""
        from repro import components_setup
        from repro.launcher.job import mph_run

        reg = "BEGIN\natmosphere\nocean\nEND"

        def atm(world, env):
            mph = components_setup(world, "atmosphere", env=env)
            if mph.local_proc_id() == 0:
                raise SimulatedCrash("one atm rank dies")
            return "alive"

        def ocn(world, env):
            mph = components_setup(world, "ocean", env=env)
            with pytest.raises(ProcessFailedError):
                for _ in range(100):
                    mph.send("x", "atmosphere", 0, tag=4)
                    time.sleep(0.01)
            return "clean"

        result = mph_run([(atm, 2), (ocn, 1)], registry=reg, timeout=60.0)
        assert result.procs[1].value == "alive"
        assert result.procs[2].value == "clean"
