"""Topology model and node-aware hierarchical collectives.

``Topology`` maps ranks onto simulated nodes; ``CommHierarchy`` derives
the leader structure any communicator needs for two-level collectives
(intra-node gather to a leader, inter-node exchange among leaders,
intra-node broadcast back — the MPICH-G2 topology-aware scheme the
paper's multi-component coupling assumes).

The correctness bar for the hierarchical algorithms is *bit-identical
results to the flat ones* on every communicator shape: sizes that are
prime, powers of two, smaller than the node count; roots on and off the
leader set; subset communicators that land entirely on one node (where
the hierarchy must disable itself).  The sweep below checks hierarchical
against flat output for every collective on both the object and buffer
paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import WorldConfig, reduce_ops as ops
from repro.mpi.executor import run_spmd
from repro.mpi.reduce_ops import Op
from repro.mpi.topology import CommHierarchy, Topology


# ---------------------------------------------------------------------------
# Topology: rank → node mapping
# ---------------------------------------------------------------------------


class TestTopology:
    def test_single_node_default(self):
        topo = Topology(8)
        assert topo.nnodes == 1
        assert all(topo.node_of(r) == 0 for r in range(8))
        assert topo.same_node(0, 7)

    def test_block_distribution(self):
        topo = Topology(8, nnodes=2)
        assert [topo.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert topo.same_node(1, 3)
        assert not topo.same_node(3, 4)

    def test_uneven_blocks(self):
        topo = Topology(5, nnodes=2)
        nodes = [topo.node_of(r) for r in range(5)]
        assert nodes == sorted(nodes), "block distribution must be contiguous"
        assert set(nodes) == {0, 1}

    def test_nnodes_clamped_to_nprocs(self):
        topo = Topology(3, nnodes=8)
        assert topo.nnodes == 3
        assert [topo.node_of(r) for r in range(3)] == [0, 1, 2]

    def test_node_ranks_partition(self):
        topo = Topology(9, nnodes=3)
        all_ranks = []
        for n in range(topo.nnodes):
            all_ranks.extend(topo.node_ranks(n))
        assert sorted(all_ranks) == list(range(9))

    def test_from_config(self):
        topo = Topology.from_config(6, WorldConfig(nodes=3))
        assert topo.nnodes == 3
        flat = Topology.from_config(6, WorldConfig())
        assert flat.nnodes == 1


# ---------------------------------------------------------------------------
# CommHierarchy: leader structure over a member list
# ---------------------------------------------------------------------------


class TestCommHierarchy:
    def test_leaders_are_lowest_rank_per_node(self):
        topo = Topology(8, nnodes=2)
        h = CommHierarchy.from_topology(topo, list(range(8)))
        assert h.leaders == (0, 4)
        assert h.members(6) == (4, 5, 6, 7)
        assert h.leader(6) == 4
        assert h.local(6) == 2

    def test_subset_comm(self):
        topo = Topology(8, nnodes=2)
        h = CommHierarchy.from_topology(topo, [0, 1, 4, 5])
        assert h.nnodes == 2
        assert h.leaders == (0, 2)  # comm-rank space
        assert h.members(3) == (2, 3)
        assert h.leader(3) == 2
        assert h.local(3) == 1

    def test_effective_leaders_promotes_root(self):
        topo = Topology(8, nnodes=2)
        h = CommHierarchy.from_topology(topo, [0, 1, 4, 5])
        # root already a leader: unchanged
        leaders, pos = h.effective_leaders(0)
        assert (leaders, pos) == ([0, 2], 0)
        # non-leader root replaces its node's leader
        leaders, pos = h.effective_leaders(3)
        assert (leaders, pos) == ([0, 3], 1)

    def test_single_node_comm(self):
        topo = Topology(8, nnodes=2)
        h = CommHierarchy.from_topology(topo, [4, 5, 6])
        assert h.nnodes == 1
        assert h.leaders == (0,)

    def test_same_node_query(self):
        topo = Topology(4, nnodes=2)
        h = CommHierarchy.from_topology(topo, list(range(4)))
        assert h.same_node(0, 1)
        assert not h.same_node(1, 2)


# ---------------------------------------------------------------------------
# Hierarchical vs flat: identical results on the thread backend
# ---------------------------------------------------------------------------


CONCAT = Op(lambda a, b: a + b, "concat", commutative=False)


def _collective_battery(comm):
    """Run every collective shape once; return a comparable result dict."""
    r, n = comm.rank, comm.size
    out = {}
    for root in (0, n - 1, n // 2):
        out[f"bcast_{root}"] = comm.bcast(
            {"root": root, "arr": np.arange(50) * root} if r == root else None,
            root=root,
        )
        out[f"reduce_{root}"] = comm.reduce((r + 1) ** 2, op=ops.SUM, root=root)
        out[f"reduce_max_{root}"] = comm.reduce(
            (r * 7) % n, op=ops.MAX, root=root
        )
        out[f"ncreduce_{root}"] = comm.reduce([r], op=CONCAT, root=root)
    out["allreduce"] = comm.allreduce(r + 1, op=ops.PROD)
    out["allreduce_min"] = comm.allreduce(n - r, op=ops.MIN)
    comm.barrier()
    # buffer path
    rb = np.empty(33)
    comm.Allreduce(np.full(33, float(r + 1)), rb, op=ops.SUM)
    out["Allreduce"] = rb.copy()
    for root in (0, n - 1):
        buf = (
            np.arange(17, dtype=np.int64) * 3
            if r == root
            else np.zeros(17, dtype=np.int64)
        )
        comm.Bcast(buf, root=root)
        out[f"Bcast_{root}"] = buf.copy()
        recv = np.empty(9) if r == root else None
        comm.Reduce(np.full(9, float(r)), recv, op=ops.SUM, root=root)
        out[f"Reduce_{root}"] = None if recv is None else recv.copy()
    comm.barrier()
    # split: a sub-communicator confined to "one node" must still work
    color = 0 if r < (n + 1) // 2 else 1
    sub = comm.split(color, key=r)
    out["sub_allreduce"] = sub.allreduce(r, op=ops.SUM)
    sub.free()
    return out


def _assert_same(flat, hier):
    assert flat.keys() == hier.keys()
    for k in flat:
        f, h = flat[k], hier[k]
        if isinstance(f, np.ndarray):
            np.testing.assert_array_equal(f, h, err_msg=k)
        elif isinstance(f, dict):
            assert f.keys() == h.keys(), k
            for kk in f:
                if isinstance(f[kk], np.ndarray):
                    np.testing.assert_array_equal(f[kk], h[kk], err_msg=k)
                else:
                    assert f[kk] == h[kk], k
        else:
            assert f == h, k


@pytest.mark.parametrize("size", [3, 4, 5, 7, 8])
@pytest.mark.parametrize("nodes", [2, 3])
def test_hierarchical_matches_flat(size, nodes):
    flat_cfg = WorldConfig(nodes=nodes, hierarchical_collectives=False)
    hier_cfg = WorldConfig(nodes=nodes, hierarchical_collectives=True)
    flat = run_spmd(size, _collective_battery, config=flat_cfg, timeout=60)
    hier = run_spmd(size, _collective_battery, config=hier_cfg, timeout=60)
    for f, h in zip(flat, hier):
        _assert_same(f, h)


def test_hierarchy_disabled_on_single_node():
    """nodes=1 (the default) must never engage the two-level paths."""

    def probe(comm):
        return comm._hierarchy()

    assert run_spmd(4, probe, config=WorldConfig(), timeout=30) == [None] * 4


def test_hierarchy_engages_with_nodes():
    def probe(comm):
        h = comm._hierarchy()
        return None if h is None else (h.nnodes, h.leaders)

    got = run_spmd(4, probe, config=WorldConfig(nodes=2), timeout=30)
    assert got == [(2, (0, 2))] * 4


def test_hierarchy_skips_tiny_comms():
    """size <= 2 gains nothing from two-level structure."""

    def probe(comm):
        return comm._hierarchy()

    assert run_spmd(2, probe, config=WorldConfig(nodes=2), timeout=30) == [
        None,
        None,
    ]


def test_single_node_subcomm_goes_flat():
    """A split communicator living on one simulated node must not build
    a hierarchy (its inter-node phase would be empty)."""

    def probe(comm):
        color = 0 if comm.rank < 4 else 1
        sub = comm.split(color, key=comm.rank)
        h = sub._hierarchy()
        result = h is None
        sub.free()
        return result

    got = run_spmd(8, probe, config=WorldConfig(nodes=2), timeout=30)
    assert got == [True] * 8
