"""Buffer-mode (numpy) collectives across both algorithm families."""

import numpy as np
import pytest

from repro.errors import CommError, TruncationError
from repro.mpi import MAX, SUM, Op, WorldConfig

ALGO_CONFIGS = [
    WorldConfig(
        bcast_algorithm="linear",
        reduce_algorithm="linear",
        allreduce_algorithm="reduce_bcast",
        allgather_algorithm="gather_bcast",
    ),
    WorldConfig(
        bcast_algorithm="binomial",
        reduce_algorithm="binomial",
        allreduce_algorithm="recursive_doubling",
        allgather_algorithm="ring",
    ),
]
ALGO_IDS = ["linear-family", "tree-family"]
SIZES = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestBcastBuffer:
    @pytest.mark.parametrize("n", SIZES)
    def test_in_place_broadcast(self, spmd, config, n):
        def main(comm):
            buf = np.arange(6, dtype=float) if comm.rank == 0 else np.zeros(6)
            comm.Bcast(buf, root=0)
            return buf.tolist()

        assert spmd(n, main, config=config) == [list(map(float, range(6)))] * n

    @pytest.mark.parametrize("n", [3, 5])
    def test_nonzero_root(self, spmd, config, n):
        def main(comm):
            buf = np.full(4, 7.0) if comm.rank == n - 1 else np.zeros(4)
            comm.Bcast(buf, root=n - 1)
            return float(buf.sum())

        assert spmd(n, main, config=config) == [28.0] * n

    def test_2d_buffers(self, spmd, config):
        def main(comm):
            buf = np.eye(3) if comm.rank == 0 else np.zeros((3, 3))
            comm.Bcast(buf)
            return float(buf.trace())

        assert spmd(4, main, config=config) == [3.0] * 4

    def test_shape_mismatch_detected(self, spmd, config):
        def main(comm):
            buf = np.zeros(4) if comm.rank == 0 else np.zeros(2)
            comm.Bcast(buf)

        with pytest.raises(TruncationError):
            spmd(2, main, config=config)


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestGatherScatterBuffer:
    @pytest.mark.parametrize("n", SIZES)
    def test_gather_stacks_blocks(self, spmd, config, n):
        def main(comm):
            block = np.full(3, float(comm.rank))
            out = comm.Gather(block)
            return None if out is None else out[:, 0].tolist()

        values = spmd(n, main, config=config)
        assert values[0] == [float(r) for r in range(n)]
        assert all(v is None for v in values[1:])

    def test_gather_into_supplied_recvbuf(self, spmd, config):
        def main(comm):
            block = np.array([comm.rank], dtype=float)
            recv = np.zeros((comm.size, 1)) if comm.rank == 0 else None
            out = comm.Gather(block, recv)
            return None if out is None else (out is recv, out.ravel().tolist())

        assert spmd(3, main, config=config)[0] == (True, [0.0, 1.0, 2.0])

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter(self, spmd, config, n):
        def main(comm):
            send = None
            if comm.rank == 0:
                send = np.arange(comm.size * 2, dtype=float).reshape(comm.size, 2)
            recv = np.zeros(2)
            comm.Scatter(send, recv)
            return recv.tolist()

        values = spmd(n, main, config=config)
        assert values == [[2.0 * r, 2.0 * r + 1] for r in range(n)]

    def test_scatter_requires_sendbuf_at_root(self, spmd, config):
        def main(comm):
            comm.Scatter(None, np.zeros(2))

        with pytest.raises(CommError, match="sendbuf"):
            spmd(2, main, config=config)

    @pytest.mark.parametrize("n", SIZES)
    def test_allgather(self, spmd, config, n):
        def main(comm):
            out = comm.Allgather(np.full(2, float(comm.rank + 1)))
            return out[:, 0].tolist()

        expected = [float(r + 1) for r in range(n)]
        assert spmd(n, main, config=config) == [expected] * n

    def test_gather_scatter_roundtrip(self, spmd, config):
        def main(comm):
            block = np.array([float(comm.rank) * 10.0])
            stacked = comm.Gather(block)
            back = np.zeros(1)
            comm.Scatter(stacked, back)
            return back[0]

        assert spmd(4, main, config=config) == [0.0, 10.0, 20.0, 30.0]


@pytest.mark.parametrize("config", ALGO_CONFIGS, ids=ALGO_IDS)
class TestReductionBuffer:
    @pytest.mark.parametrize("n", SIZES)
    def test_reduce_sum(self, spmd, config, n):
        def main(comm):
            out = comm.Reduce(np.full(3, float(comm.rank + 1)))
            return None if out is None else out.tolist()

        values = spmd(n, main, config=config)
        total = float(n * (n + 1) // 2)
        assert values[0] == [total] * 3

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 7, 8])
    def test_allreduce_nonpoweroftwo(self, spmd, config, n):
        def main(comm):
            out = comm.Allreduce(np.array([2.0**comm.rank]))
            return out[0]

        assert spmd(n, main, config=config) == [float(2**n - 1)] * n

    def test_allreduce_max(self, spmd, config):
        def main(comm):
            out = comm.Allreduce(np.array([float(comm.rank), -float(comm.rank)]), op=MAX)
            return out.tolist()

        assert spmd(5, main, config=config) == [[4.0, 0.0]] * 5

    def test_reduce_into_supplied_recvbuf(self, spmd, config):
        def main(comm):
            recv = np.zeros(2) if comm.rank == 0 else None
            out = comm.Reduce(np.ones(2), recv, op=SUM, root=0)
            if comm.rank == 0:
                return (out is recv, recv.tolist())
            return out

        values = spmd(3, main, config=config)
        assert values[0] == (True, [3.0, 3.0])
        assert values[1] is None

    def test_matches_object_mode(self, spmd, config):
        """Buffer and object allreduce agree bitwise on float data."""

        def main(comm):
            data = np.linspace(0, 1, 16) * (comm.rank + 1)
            obj = comm.allreduce(data)
            buf = comm.Allreduce(data)
            return np.array_equal(obj, buf)

        assert all(spmd(4, main, config=config))

    def test_sendbuf_unchanged(self, spmd, config):
        def main(comm):
            send = np.full(4, float(comm.rank))
            comm.Allreduce(send)
            return send.tolist()

        values = spmd(3, main, config=config)
        assert values == [[float(r)] * 4 for r in range(3)]
