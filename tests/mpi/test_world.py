"""World state machinery: context ids, activity, abort, config
(repro.mpi.world)."""

import pytest

from repro.errors import AbortError
from repro.mpi.world import World, WorldConfig


class TestContextAllocation:
    def test_pairs_distinct_and_above_reserved(self):
        world = World(2)
        seen = set()
        for _ in range(10):
            p2p, coll = world.alloc_context_pair()
            assert p2p >= 2 and coll == p2p + 1  # 0/1 reserved for COMM_WORLD
            assert p2p not in seen and coll not in seen
            seen.update((p2p, coll))


class TestLiveness:
    def test_block_enter_exit(self):
        world = World(3)
        world.block_enter(1, "recv")
        assert world.snapshot()["blocked"] == {1: "recv"}
        world.block_exit(1)
        assert world.snapshot()["blocked"] == {}

    def test_proc_done_removes_from_alive(self):
        world = World(2)
        world.proc_done(0)
        assert world.snapshot()["alive"] == [1]

    def test_proc_done_clears_blocked(self):
        world = World(2)
        world.block_enter(0, "x")
        world.proc_done(0)
        assert world.snapshot()["blocked"] == {}


class TestAbort:
    def test_first_abort_wins(self):
        world = World(2)
        world.abort(AbortError("first", origin_rank=0))
        world.abort(AbortError("second", origin_rank=1))
        with pytest.raises(AbortError, match="first") as info:
            world.check_abort()
        assert info.value.origin_rank == 0

    def test_check_abort_noop_before_abort(self):
        World(1).check_abort()  # must not raise

    def test_aborted_flag(self):
        world = World(1)
        assert not world.aborted
        world.abort(AbortError("x"))
        assert world.aborted


class TestWorldConfig:
    def test_defaults(self):
        cfg = WorldConfig()
        assert cfg.bcast_algorithm == "binomial"
        assert cfg.validate_collectives is True
        assert cfg.deadlock_detection is True
        assert cfg.max_components_per_executable == 10  # the paper's limit

    def test_world_requires_positive_size(self):
        with pytest.raises(ValueError):
            World(-1)

    def test_one_mailbox_per_rank(self):
        world = World(5)
        assert len(world.mailboxes) == 5
        assert [mb.owner for mb in world.mailboxes] == list(range(5))


class TestDeadlockGuards:
    def test_no_detection_when_disabled(self):
        world = World(1, WorldConfig(deadlock_detection=False))
        world.block_enter(0, "stuck")
        world.maybe_detect_deadlock()  # must not raise

    def test_no_detection_while_someone_runs(self):
        world = World(2, WorldConfig(deadlock_grace=0.0))
        world.block_enter(0, "stuck")
        world.maybe_detect_deadlock()  # rank 1 is still running
