"""Point-to-point messaging semantics of the simulated MPI substrate."""

import numpy as np
import pytest

from repro.errors import CommError
from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL, Status


class TestBasicSendRecv:
    def test_simple_message(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        assert spmd(2, main)[1] == {"a": 7, "b": 3.14}

    def test_value_semantics_no_shared_state(self, spmd):
        """Mutating the sent object after send must not affect the receiver
        (pickling enforces distributed-memory copy semantics)."""

        def main(comm):
            if comm.rank == 0:
                data = [1, 2, 3]
                comm.send(data, 1)
                data.append(99)  # must not be visible remotely
                return None
            return comm.recv(source=0)

        assert spmd(2, main)[1] == [1, 2, 3]

    def test_receiver_mutation_does_not_leak_back(self, spmd):
        def main(comm):
            payload = {"x": [0]}
            if comm.rank == 0:
                comm.send(payload, 1)
                comm.barrier()
                return payload["x"]
            got = comm.recv(source=0)
            got["x"].append(42)
            comm.barrier()
            return got["x"]

        values = spmd(2, main)
        assert values[0] == [0]
        assert values[1] == [0, 42]

    def test_ring_exchange(self, spmd):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank * 100, right, tag=3)
            return comm.recv(source=left, tag=3)

        assert spmd(5, main) == [400, 0, 100, 200, 300]

    def test_self_send(self, spmd):
        def main(comm):
            comm.send("me", comm.rank, tag=1)
            return comm.recv(source=comm.rank, tag=1)

        assert spmd(3, main) == ["me"] * 3


class TestMatchingSemantics:
    """Wildcard matching: swept over match-schedule seeds (``mpi_world``)
    so any assertion that silently leaned on arrival order fails loudly
    under a permuting schedule."""

    def test_tag_selective_receive(self, mpi_world):
        def main(comm):
            if comm.rank == 0:
                comm.send("low", 1, tag=1)
                comm.send("high", 1, tag=2)
                return None
            high = comm.recv(source=0, tag=2)
            low = comm.recv(source=0, tag=1)
            return (high, low)

        assert mpi_world(2, main)[1] == ("high", "low")

    def test_any_source(self, mpi_world):
        def main(comm):
            if comm.rank == 2:
                got = sorted(comm.recv(source=ANY_SOURCE, tag=5) for _ in range(2))
                return got
            comm.send(f"from{comm.rank}", 2, tag=5)
            return None

        assert mpi_world(3, main)[2] == ["from0", "from1"]

    def test_any_tag(self, mpi_world):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=77)
                return None
            status = Status()
            obj = comm.recv(source=0, tag=ANY_TAG, status=status)
            return (obj, status.tag)

        assert mpi_world(2, main)[1] == ("x", 77)

    def test_non_overtaking_same_source_tag(self, mpi_world):
        def main(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1, tag=4)
                return None
            return [comm.recv(source=0, tag=4) for _ in range(10)]

        assert mpi_world(2, main)[1] == list(range(10))

    def test_status_fields(self, mpi_world):
        def main(comm):
            if comm.rank == 1:
                comm.send([1, 2, 3], 0, tag=13)
                return None
            status = Status()
            comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            return (status.Get_source(), status.Get_tag(), status.Get_count() > 0)

        assert mpi_world(2, main)[0] == (1, 13, True)


class TestProcNull:
    def test_send_to_proc_null_vanishes(self, spmd):
        def main(comm):
            comm.send("gone", PROC_NULL)
            return "alive"

        assert spmd(1, main) == ["alive"]

    def test_recv_from_proc_null_immediate_none(self, spmd):
        def main(comm):
            status = Status()
            obj = comm.recv(source=PROC_NULL, status=status)
            return (obj, status.source)

        assert spmd(1, main)[0] == (None, PROC_NULL)


class TestSsend:
    def test_ssend_completes_when_matched(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.ssend("sync", 1, tag=8)
                return "sent"
            return comm.recv(source=0, tag=8)

        assert spmd(2, main) == ["sent", "sync"]

    def test_ssend_to_proc_null_returns(self, spmd):
        def main(comm):
            comm.ssend("x", PROC_NULL)
            return True

        assert spmd(1, main) == [True]


class TestProbe:
    def test_probe_does_not_consume(self, mpi_world):
        """Swept: a blocking probe must force-reveal held envelopes and
        its answer must stay claimable by the follow-up recv."""

        def main(comm):
            if comm.rank == 0:
                comm.send("keep", 1, tag=2)
                return None
            st = comm.probe(source=0, tag=2)
            obj = comm.recv(source=st.source, tag=st.tag)
            return (st.source, obj)

        assert mpi_world(2, main)[1] == (0, "keep")

    def test_iprobe_empty(self, spmd):
        def main(comm):
            return comm.iprobe(source=ANY_SOURCE, tag=ANY_TAG)

        assert spmd(1, main) == [None]

    def test_iprobe_sees_pending(self, spmd):
        # Deliberately unswept: a nonblocking iprobe is allowed to miss a
        # schedule-held message (holds model network delay), so this
        # visibility-after-barrier guarantee only exists disarmed.
        def main(comm):
            if comm.rank == 0:
                comm.send("here", 1, tag=6)
                comm.barrier()
                return None
            comm.barrier()  # guarantees the message arrived
            st = comm.iprobe(source=0, tag=6)
            assert st is not None and st.tag == 6
            return comm.recv(source=0, tag=6)

        assert spmd(2, main)[1] == "here"


class TestValidation:
    def test_send_bad_dest(self, spmd):
        def main(comm):
            comm.send("x", 5)

        with pytest.raises(CommError, match="destination rank"):
            spmd(2, main)

    def test_send_negative_tag(self, spmd):
        def main(comm):
            comm.send("x", 0, tag=-3)

        with pytest.raises(CommError, match="invalid send tag"):
            spmd(1, main)

    def test_recv_bad_source(self, spmd):
        def main(comm):
            comm.recv(source=9)

        with pytest.raises(CommError, match="source rank"):
            spmd(2, main)

    def test_wildcard_tag_invalid_for_send(self, spmd):
        def main(comm):
            comm.send("x", 0, tag=ANY_TAG)

        with pytest.raises(CommError, match="invalid send tag"):
            spmd(1, main)


class TestSendrecv:
    def test_pairwise_swap(self, spmd):
        def main(comm):
            partner = comm.rank ^ 1
            return comm.sendrecv(comm.rank, dest=partner, sendtag=1, source=partner, recvtag=1)

        assert spmd(4, main) == [1, 0, 3, 2]


class TestBufferMode:
    def test_send_recv_array(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.float64), 1, tag=7)
                return None
            buf = np.empty(10)
            comm.Recv(buf, source=0, tag=7)
            return buf.tolist()

        assert spmd(2, main)[1] == list(map(float, range(10)))

    def test_sender_may_reuse_buffer(self, spmd):
        def main(comm):
            if comm.rank == 0:
                arr = np.ones(4)
                comm.Send(arr, 1)
                arr[:] = -1  # must not corrupt the in-flight message
                comm.barrier()
                return None
            comm.barrier()
            buf = np.zeros(4)
            comm.Recv(buf, source=0)
            return buf.tolist()

        assert spmd(2, main)[1] == [1.0] * 4

    def test_truncation_error(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10), 1)
                return None
            comm.Recv(np.zeros(4), source=0)

        from repro.errors import TruncationError

        with pytest.raises(TruncationError):
            spmd(2, main)

    def test_smaller_message_into_larger_buffer(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0, 2.0]), 1)
                return None
            buf = np.full(5, -1.0)
            st = Status()
            comm.Recv(buf, source=0, status=st)
            return (buf.tolist(), st.count)

        values = spmd(2, main)
        assert values[1] == ([1.0, 2.0, -1.0, -1.0, -1.0], 2)

    def test_2d_array_through_buffer_path(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6, dtype=float).reshape(2, 3), 1)
                return None
            buf = np.zeros((2, 3))
            comm.Recv(buf, source=0)
            return buf.sum()

        assert spmd(2, main)[1] == 15.0

    def test_object_recv_of_buffer_message(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([5.0, 6.0]), 1)
                return None
            got = comm.recv(source=0)
            return isinstance(got, np.ndarray) and got.tolist() == [5.0, 6.0]

        assert spmd(2, main)[1] is True


class TestZeroCopyMutationIsolation:
    """Value semantics survive the zero-copy array path: mutations on one
    side are never visible on the other, with the fast path on or off."""

    CONFIGS = [
        pytest.param(None, id="fastpath-on"),
        pytest.param("off", id="fastpath-off"),
    ]

    @staticmethod
    def _config(mode):
        from repro.mpi import WorldConfig

        return WorldConfig(serialization_fastpath=(mode is None))

    @pytest.mark.parametrize("mode", CONFIGS)
    def test_sender_mutation_after_isend_invisible(self, spmd, mode):
        def main(comm):
            if comm.rank == 0:
                arr = np.arange(8.0)
                req = comm.isend(arr, dest=1, tag=3)
                arr[:] = -1.0  # mutate immediately after the send
                req.wait()
                comm.barrier()
                return None
            got = comm.recv(source=0, tag=3)
            comm.barrier()
            return got.tolist()

        values = spmd(2, main, config=self._config(mode))
        assert values[1] == list(range(8))

    @pytest.mark.parametrize("mode", CONFIGS)
    def test_receiver_mutation_invisible_to_sender(self, spmd, mode):
        def main(comm):
            if comm.rank == 0:
                arr = np.zeros(4)
                comm.send(arr, dest=1)
                comm.barrier()  # rank 1 mutates its copy before this
                return arr.tolist()
            got = comm.recv(source=0)
            got[:] = 9.0
            comm.barrier()
            return got.tolist()

        values = spmd(2, main, config=self._config(mode))
        assert values[0] == [0.0, 0.0, 0.0, 0.0]
        assert values[1] == [9.0, 9.0, 9.0, 9.0]

    @pytest.mark.parametrize("mode", CONFIGS)
    def test_received_array_is_writable(self, spmd, mode):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.ones(3), dest=1)
                return None
            got = comm.recv(source=0)
            got += 1.0  # must not raise: receivers own their data
            return got.flags.writeable

        assert spmd(2, main, config=self._config(mode))[1] is True

    @pytest.mark.parametrize("mode", CONFIGS)
    def test_noncontiguous_send(self, spmd, mode):
        def main(comm):
            if comm.rank == 0:
                base = np.arange(12.0).reshape(3, 4)
                comm.send(base[:, ::2], dest=1)  # a strided view
                return None
            return comm.recv(source=0).tolist()

        values = spmd(2, main, config=self._config(mode))
        assert values[1] == [[0.0, 2.0], [4.0, 6.0], [8.0, 10.0]]
