"""Variable-size buffer collectives: Gatherv / Scatterv."""

import numpy as np
import pytest

from repro.errors import CommError


class TestGatherv:
    def test_variable_row_blocks(self, spmd):
        def main(comm):
            block = np.full((comm.rank + 1, 2), float(comm.rank))
            out = comm.Gatherv(block)
            if out is None:
                return None
            full, counts = out
            return (full.shape, counts, full[:, 0].tolist())

        values = spmd(3, main)
        shape, counts, col = values[0]
        assert shape == (6, 2)
        assert counts == [1, 2, 3]
        assert col == [0.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        assert values[1] is None and values[2] is None

    def test_nonzero_root(self, spmd):
        def main(comm):
            block = np.array([[float(comm.rank)]])
            out = comm.Gatherv(block, root=1)
            return None if out is None else out[1]

        values = spmd(3, main)
        assert values[1] == [1, 1, 1]

    def test_single_rank(self, spmd):
        def main(comm):
            full, counts = comm.Gatherv(np.ones((4, 3)))
            return (full.shape, counts)

        assert spmd(1, main) == [((4, 3), [4])]


class TestScatterv:
    def test_uneven_split(self, spmd):
        def main(comm):
            send = counts = None
            if comm.rank == 0:
                send = np.arange(12, dtype=float)[:, None]
                counts = [2, 4, 6]
            block = comm.Scatterv(send, counts)
            return block[:, 0].tolist()

        values = spmd(3, main)
        assert values == [[0.0, 1.0], [2.0, 3.0, 4.0, 5.0], [6.0, 7.0, 8.0, 9.0, 10.0, 11.0]]

    def test_zero_count_allowed(self, spmd):
        def main(comm):
            send = counts = None
            if comm.rank == 0:
                send = np.ones((3, 1))
                counts = [3, 0]
            return comm.Scatterv(send, counts).shape[0]

        assert spmd(2, main) == [3, 0]

    def test_counts_sum_validated(self, spmd):
        def main(comm):
            comm.Scatterv(np.ones((5, 1)) if comm.rank == 0 else None,
                          [2, 2] if comm.rank == 0 else None)

        with pytest.raises(CommError, match="counts sum"):
            spmd(2, main)

    def test_counts_length_validated(self, spmd):
        def main(comm):
            comm.Scatterv(np.ones((2, 1)) if comm.rank == 0 else None,
                          [2] if comm.rank == 0 else None)

        with pytest.raises(CommError, match="2 counts"):
            spmd(2, main)

    def test_missing_root_arguments(self, spmd):
        def main(comm):
            comm.Scatterv(None, None)

        with pytest.raises(CommError, match="root must supply"):
            spmd(1, main)


class TestRoundtrip:
    def test_gatherv_scatterv_identity(self, spmd):
        def main(comm):
            block = np.random.default_rng(comm.rank).normal(size=(comm.rank + 2, 3))
            out = comm.Gatherv(block)
            if comm.rank == 0:
                full, counts = out
            else:
                full = counts = None
            back = comm.Scatterv(full, counts)
            return np.array_equal(back, block)

        assert all(spmd(4, main))

    def test_distributed_field_equivalence(self, spmd):
        """Gatherv assembles a latitude-decomposed field exactly like the
        climate fields' gather_global."""
        from repro.climate.fields import DistributedField
        from repro.climate.grid import LatLonGrid

        grid = LatLonGrid(10, 6)

        def main(comm):
            f = DistributedField.from_function(comm, grid, lambda la, lo: la * lo)
            via_field = f.gather_global()
            out = comm.Gatherv(f.data)
            if comm.rank == 0:
                full, _ = out
                return np.array_equal(full, via_field)
            return None

        assert spmd(3, main)[0] is True
