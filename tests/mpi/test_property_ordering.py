"""Property tests for matching-order guarantees under schedule sweeps.

Seeded ``random.Random`` soups (hypothesis is deliberately not a
dependency) generate message mixes over random ``(source, tag)`` pairs;
for *every* swept match seed the substrate must uphold the two MPI
guarantees the schedule is forbidden to break:

* **non-overtaking** — two messages on the same ``(source, tag,
  communicator)`` stream are received in send order, no matter how the
  schedule holds or permutes across streams;
* **no wildcard starvation** — a loop of ``recv(ANY_SOURCE)`` calls
  eventually receives every posted send (ssend completion proves the
  senders were all matched, not parked forever).
"""

import random

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MatchSchedule, Status, WorldConfig, run_spmd


def _soup(seed: int, nsenders: int, nmsgs: int, ntags: int):
    """A reproducible message soup: per-sender [(tag, payload), ...]."""
    rng = random.Random(seed)
    return [
        [(rng.randrange(ntags), (s, i)) for i in range(nmsgs)]
        for s in range(nsenders)
    ]


@pytest.mark.parametrize("soup_seed", [0, 1, 2])
class TestNonOvertaking:
    def test_per_stream_fifo_under_wildcards(self, mpi_world, soup_seed):
        """Receive everything with full wildcards; within each (source,
        tag) stream the payload sequence numbers must be ascending."""
        nsenders, nmsgs = 3, 8
        plan = _soup(soup_seed, nsenders, nmsgs, ntags=2)

        def main(comm):
            if comm.rank > 0:
                for tag, payload in plan[comm.rank - 1]:
                    comm.send(payload, 0, tag=tag)
            comm.barrier()
            if comm.rank > 0:
                return None
            got = []
            st = Status()
            for _ in range(nsenders * nmsgs):
                obj = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st)
                got.append((st.source, st.tag, obj))
            return got

        values = mpi_world(nsenders + 1, main)
        got = values[0]
        assert len(got) == nsenders * nmsgs
        streams = {}
        for source, tag, payload in got:
            streams.setdefault((source, tag), []).append(payload)
        for (source, tag), payloads in streams.items():
            sent = [p for t, p in plan[source - 1] if t == tag]
            assert payloads == sent, (
                f"stream ({source}, {tag}) overtaken: {payloads} != {sent}"
            )

    def test_specific_tag_recv_ignores_held_other_streams(self, mpi_world, soup_seed):
        """Mixed wildcard/specific receives: the specific-tag drain still
        sees its stream in order while other streams are held/permuted."""
        nmsgs = 6
        plan = _soup(soup_seed + 10, 2, nmsgs, ntags=3)

        def main(comm):
            if comm.rank > 0:
                for tag, payload in plan[comm.rank - 1]:
                    comm.send(payload, 0, tag=tag)
            comm.barrier()
            if comm.rank > 0:
                return None
            want = [p for t, p in plan[0] if t == 0]
            got = [comm.recv(source=1, tag=0) for _ in range(len(want))]
            rest = sum(1 for t, _ in plan[0] if t != 0) + nmsgs
            for _ in range(rest):
                comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            return (got, want)

        got, want = mpi_world(3, main)[0]
        assert got == want


class TestNoStarvation:
    def test_any_source_never_starves_a_sender(self, mpi_world):
        """Every ssend completes: the wildcard receiver's schedule may
        permute, but each posted sender is matched eventually."""
        nsenders = 4

        def main(comm):
            if comm.rank > 0:
                comm.ssend(("msg", comm.rank), 0, tag=7)
                return "released"
            for _ in range(nsenders):
                comm.recv(source=ANY_SOURCE, tag=7)
            return "drained"

        values = mpi_world(nsenders + 1, main, timeout=20.0)
        assert values[0] == "drained"
        assert values[1:] == ["released"] * nsenders

    def test_every_message_received_exactly_once(self, mpi_world):
        """Wildcard drain over a multi-sender burst: no loss, no
        duplication, whatever the holds did."""
        nsenders, nmsgs = 3, 10

        def main(comm):
            if comm.rank > 0:
                for i in range(nmsgs):
                    comm.send((comm.rank, i), 0, tag=1)
            comm.barrier()
            if comm.rank > 0:
                return None
            got = [
                comm.recv(source=ANY_SOURCE, tag=1)
                for _ in range(nsenders * nmsgs)
            ]
            return sorted(got)

        values = mpi_world(nsenders + 1, main)
        expected = sorted((s, i) for s in range(1, nsenders + 1) for i in range(nmsgs))
        assert values[0] == expected
