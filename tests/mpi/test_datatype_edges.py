"""Payload-type edge cases of the messaging layer."""

import numpy as np
import pytest

from repro.errors import HandshakeError, TruncationError


class TestBufferDtypes:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float32, np.float64, np.complex128])
    def test_dtype_preserved_matching_buffers(self, spmd, dtype):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6).astype(dtype), 1)
                return None
            buf = np.zeros(6, dtype=dtype)
            comm.Recv(buf, source=0)
            return (buf.dtype == dtype, buf.tolist())

        ok, values = spmd(2, main)[1]
        assert ok and values == list(range(6))

    def test_recv_casts_into_differently_typed_buffer(self, spmd):
        """Like MPI with mismatched datatypes, the receive copies with a
        cast — numpy's assignment semantics, documented behaviour."""

        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.9, 2.9]), 1)
                return None
            buf = np.zeros(2, dtype=np.int64)
            comm.Recv(buf, source=0)
            return buf.tolist()

        assert spmd(2, main)[1] == [1, 2]

    def test_object_path_preserves_dtype_and_shape(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.ones((2, 3, 4), dtype=np.float32), 1)
                return None
            got = comm.recv(source=0)
            return (got.dtype == np.float32, got.shape)

        assert spmd(2, main)[1] == (True, (2, 3, 4))

    def test_noncontiguous_view_sent_correctly(self, spmd):
        def main(comm):
            if comm.rank == 0:
                base = np.arange(12, dtype=float).reshape(3, 4)
                comm.Send(base[:, ::2], 1)  # strided view
                return None
            buf = np.zeros((3, 2))
            comm.Recv(buf, source=0)
            return buf.tolist()

        assert spmd(2, main)[1] == [[0.0, 2.0], [4.0, 6.0], [8.0, 10.0]]

    def test_zero_length_array(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(0), 1)
                return None
            buf = np.zeros(0)
            comm.Recv(buf, source=0)
            return buf.size

        assert spmd(2, main)[1] == 0

    def test_object_message_into_buffer_recv_must_be_array(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.send({"not": "an array"}, 1)
                return None
            comm.Recv(np.zeros(3), source=0)

        with pytest.raises(TruncationError, match="object-mode message"):
            spmd(2, main)


class TestMimeAmbiguity:
    def test_two_executables_same_prefix_rejected(self):
        """Two multi-instance executables declaring the same prefix cannot
        be told apart: the handshake merges them into one declaration
        group and the size check rejects the launch (documented
        limitation — use distinct prefixes)."""
        from repro import mph_run, multi_instance

        registry = """
BEGIN
Multi_Instance_Begin
Run1 0 0
Multi_Instance_End
Multi_Instance_Begin
Run2 0 0
Multi_Instance_End
END
"""

        def ocean(world, env):
            multi_instance(world, "Run", env=env)

        with pytest.raises(HandshakeError):
            mph_run([(ocean, 1), (ocean, 1)], registry=registry)
