"""Unit tests for MPI process groups (repro.mpi.group)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.constants import UNDEFINED
from repro.mpi.group import Group


class TestConstruction:
    def test_members_preserved_in_order(self):
        g = Group([3, 1, 7])
        assert g.members == (3, 1, 7)

    def test_size(self):
        assert Group(range(5)).size == 5

    def test_len(self):
        assert len(Group([2, 4])) == 2

    def test_empty_group_allowed(self):
        assert Group([]).size == 0

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Group([1, 2, 1])

    def test_negative_members_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Group([0, -1])


class TestRankMapping:
    def test_rank_of_member(self):
        g = Group([5, 2, 9])
        assert g.rank_of(2) == 1

    def test_rank_of_nonmember_is_undefined(self):
        assert Group([5, 2]).rank_of(7) == UNDEFINED

    def test_world_id_of_rank(self):
        g = Group([5, 2, 9])
        assert g.world_id(2) == 9

    def test_world_id_out_of_range(self):
        with pytest.raises(IndexError):
            Group([1]).world_id(1)

    def test_contains(self):
        g = Group([4, 6])
        assert 4 in g and 5 not in g


class TestDerivation:
    def test_incl_selects_and_reorders(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([3, 0]).members == (40, 10)

    def test_excl_removes(self):
        g = Group([10, 20, 30])
        assert g.excl([1]).members == (10, 30)

    def test_excl_out_of_range(self):
        with pytest.raises(IndexError):
            Group([10]).excl([3])

    def test_range_incl_forward(self):
        g = Group(range(10))
        # MPI semantics: last is inclusive.
        assert g.range_incl([(0, 6, 2)]).members == (0, 2, 4, 6)

    def test_range_incl_backward(self):
        g = Group(range(10))
        assert g.range_incl([(4, 0, -2)]).members == (4, 2, 0)

    def test_range_incl_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            Group(range(4)).range_incl([(0, 3, 0)])


class TestSetAlgebra:
    def test_union_order(self):
        a, b = Group([1, 2, 3]), Group([3, 4, 1])
        # MPI: a's members first, then b's not already present, in b order.
        assert a.union(b).members == (1, 2, 3, 4)

    def test_intersection_keeps_first_order(self):
        a, b = Group([5, 1, 3]), Group([3, 5])
        assert a.intersection(b).members == (5, 3)

    def test_difference(self):
        a, b = Group([1, 2, 3, 4]), Group([2, 4])
        assert a.difference(b).members == (1, 3)

    def test_translate_ranks(self):
        a, b = Group([10, 20, 30]), Group([30, 10])
        assert a.translate_ranks([0, 1, 2], b) == [1, UNDEFINED, 0]

    def test_equality_and_hash(self):
        assert Group([1, 2]) == Group([1, 2])
        assert Group([1, 2]) != Group([2, 1])
        assert hash(Group([1, 2])) == hash(Group([1, 2]))


# -- property-based: the MPI group algebra laws -----------------------------

members = st.lists(st.integers(min_value=0, max_value=50), unique=True, max_size=12)


class TestGroupProperties:
    @given(members, members)
    def test_union_contains_both(self, xs, ys):
        u = Group(xs).union(Group(ys))
        assert set(u.members) == set(xs) | set(ys)

    @given(members, members)
    def test_intersection_is_common_subset(self, xs, ys):
        i = Group(xs).intersection(Group(ys))
        assert set(i.members) == set(xs) & set(ys)
        # order follows the first group
        assert list(i.members) == [x for x in xs if x in set(ys)]

    @given(members, members)
    def test_difference_disjoint_from_second(self, xs, ys):
        d = Group(xs).difference(Group(ys))
        assert set(d.members) == set(xs) - set(ys)

    @given(members)
    def test_rank_world_id_roundtrip(self, xs):
        g = Group(xs)
        for r in range(g.size):
            assert g.rank_of(g.world_id(r)) == r

    @given(members, members)
    def test_translate_roundtrip_on_intersection(self, xs, ys):
        a, b = Group(xs), Group(ys)
        ranks = list(range(a.size))
        translated = a.translate_ranks(ranks, b)
        for r, t in zip(ranks, translated):
            if t != UNDEFINED:
                assert b.world_id(t) == a.world_id(r)
