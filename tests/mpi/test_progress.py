"""The progress engine: completion tokens, waitsets, the lazy watchdog,
and the wakeup/blocked-time ledger (repro.mpi.progress).

The load-bearing claims under test:

* an idle blocked rank records **O(1) wakeups** in event mode (woken by
  delivery only) versus one wakeup per wait slice under polling;
* abort propagation reaches ranks parked mid-``waitany`` and
  mid-collective in **both** engine modes;
* deadlock detection still fires in both modes — including for ranks
  parked in ``waitany``, which the polling engine's busy-poll never even
  registered as blocked;
* misuse (duplicate handles in a wait list, waiting on a cancelled
  receive, an invalid engine name) raises instead of hanging.
"""

import time

import pytest

from repro.errors import AbortError, CommError, DeadlockError
from repro.mpi import Completion, World, WorldConfig, run_spmd
from repro.mpi.executor import run_world
from repro.mpi.progress import blocked_bucket
from repro.mpi.request import Request


class TestCompletion:
    def test_signal_is_idempotent(self):
        c = Completion()
        assert not c.done
        c.signal()
        c.signal()
        assert c.done and c.is_set()

    def test_event_style_aliases(self):
        c = Completion()
        assert not c.wait(timeout=0.01)
        c.set()
        assert c.wait(timeout=0.01)

    def test_engine_wait_returns_immediately_when_done(self):
        world = World(1)
        c = Completion()
        c.signal()
        fired = world.progress.wait((c,), 0, "pre-signalled")
        assert fired == [c]

    def test_engine_wait_rejects_empty_list(self):
        world = World(1)
        with pytest.raises(CommError):
            world.progress.wait((), 0, "nothing to wait on")


class TestConfigValidation:
    def test_invalid_engine_name_rejected(self):
        with pytest.raises(ValueError, match="progress_engine"):
            WorldConfig(progress_engine="busywait")

    def test_both_engine_names_accepted(self):
        assert WorldConfig(progress_engine="event").progress_engine == "event"
        assert WorldConfig(progress_engine="polling").progress_engine == "polling"


class TestBlockedBuckets:
    def test_bucket_edges(self):
        assert blocked_bucket(0.0001) == "<1ms"
        assert blocked_bucket(0.005) == "1-10ms"
        assert blocked_bucket(0.05) == "10-100ms"
        assert blocked_bucket(0.5) == "100ms-1s"
        assert blocked_bucket(5.0) == ">=1s"


class TestWakeupCeilings:
    """The measurable heart of the refactor: parked means *parked*."""

    def _blocked_recv_world(self, config: WorldConfig, idle: float) -> World:
        world = World(2, config)

        def receiver(comm):
            return comm.recv(source=1, tag=1)

        def sender(comm):
            # Event hook, not a blind sleep: only start the idle window
            # once the receiver is *provably* parked, so the asserted
            # blocked time is a guaranteed floor, not a race against
            # thread startup.
            assert world.wait_until_blocked([0], timeout=10.0)
            time.sleep(idle)
            comm.send("late", 0, tag=1)

        run_world(world, [receiver, sender], timeout=20)
        return world

    def test_event_mode_idle_rank_has_constant_wakeups(self):
        world = self._blocked_recv_world(WorldConfig(progress_engine="event"), idle=0.35)
        stats = world.progress_stats(0)
        assert stats.episodes >= 1
        assert stats.blocked_seconds > 0.3
        # Woken by the delivery (plus at most a spurious cond wakeup) —
        # never once per wait slice.
        assert stats.wakeups <= 3

    def test_polling_mode_idle_rank_pays_per_slice(self):
        world = self._blocked_recv_world(
            WorldConfig(progress_engine="polling", wait_slice=0.02), idle=0.35
        )
        stats = world.progress_stats(0)
        # ~17 slices of guaranteed blocked time; demand half to stay
        # timing-proof.
        assert stats.wakeups >= 8

    def test_traffic_stats_carry_the_blocking_ledger(self):
        world = self._blocked_recv_world(WorldConfig(progress_engine="event"), idle=0.25)
        traffic = world.traffic_snapshot()
        assert traffic.blocked_seconds > 0.2
        assert sum(traffic.blocked_hist.values()) >= 1
        delta = world.traffic_snapshot().since(traffic)
        assert delta.blocked_seconds == 0.0 and delta.blocked_hist == {}

    def test_ssend_parks_once_in_event_mode(self):
        world = World(2, WorldConfig(progress_engine="event"))

        def sender(comm):
            comm.ssend("sync", 1, tag=3)

        def receiver(comm):
            # Recv only once the ssend is provably parked (was a 0.3 s
            # sleep and a hope).
            assert world.wait_until_blocked([0], timeout=10.0)
            return comm.recv(source=0, tag=3)

        run_world(world, [sender, receiver], timeout=20)
        stats = world.progress_stats(0)
        assert stats.episodes >= 1
        assert stats.wakeups <= 3


class TestAbortMidWaitany:
    def test_abort_unwinds_parked_waitany(self, progress_engine):
        def main(comm):
            if comm.rank == 0:
                time.sleep(0.2)
                raise RuntimeError("mid-waitany abort")
            reqs = [comm.irecv(source=0, tag=t) for t in (1, 2, 3)]
            Request.waitany(reqs)

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="mid-waitany abort"):
            run_spmd(3, main, config=WorldConfig(progress_engine=progress_engine), timeout=20)
        assert time.monotonic() - start < 5.0

    def test_abort_unwinds_waitsome_of_sends_and_recvs(self, progress_engine):
        """A mixed list whose only incomplete entries are receives must
        still observe the abort (and an all-send list completes eagerly)."""

        def main(comm):
            if comm.rank == 0:
                time.sleep(0.2)
                raise RuntimeError("mixed-list abort")
            reqs = [comm.isend("x", 0, tag=9), comm.irecv(source=0, tag=8)]
            while True:
                done = Request.waitsome(reqs)
                if len(done) == len(reqs):
                    return
                time.sleep(0.01)

        with pytest.raises(RuntimeError, match="mixed-list abort"):
            run_spmd(2, main, config=WorldConfig(progress_engine=progress_engine), timeout=20)


class TestAbortMidCollective:
    def test_abort_during_collective_storm(self, progress_engine):
        """Stress: repeated collectives with one rank failing mid-stream;
        everyone must unwind with the user exception as root cause."""

        def main(comm):
            for i in range(5):
                comm.allreduce(comm.rank + i)
                comm.barrier()
            if comm.rank == 1:
                raise RuntimeError("died between collectives")
            comm.allreduce(0)
            comm.barrier()

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="died between collectives"):
            run_spmd(4, main, config=WorldConfig(progress_engine=progress_engine), timeout=20)
        assert time.monotonic() - start < 10.0


class TestDeadlockThroughWaitsets:
    def test_waitany_cycle_detected_in_event_mode(self):
        """Ranks parked in waitany count as blocked for the watchdog — a
        coverage *gain* over the polling busy-poll, which never registered
        them."""

        def main(comm):
            req = comm.irecv(source=(comm.rank + 1) % comm.size, tag=7)
            Request.waitany([req])

        config = WorldConfig(progress_engine="event", deadlock_grace=0.3)
        with pytest.raises(DeadlockError) as info:
            run_spmd(2, main, config=config, timeout=20)
        assert "waitany" in str(info.value)

    def test_watchdog_detects_recv_cycle_quickly(self):
        config = WorldConfig(
            progress_engine="event", deadlock_grace=0.3, watchdog_period=0.02
        )

        def main(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=1)

        start = time.monotonic()
        with pytest.raises(DeadlockError):
            run_spmd(3, main, config=config, timeout=20)
        # grace 0.3 s + a few watchdog periods, not a poll-slice cascade
        assert time.monotonic() - start < 5.0

    def test_watchdog_retires_after_the_job(self):
        world = World(2, WorldConfig(progress_engine="event"))

        def main(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=1)
            # Send only after rank 0 is parked, so the watchdog provably
            # started watching something before the job drains.
            assert world.wait_until_blocked([0], timeout=10.0)
            comm.send("x", 0, tag=1)

        run_world(world, [main, main], timeout=20)
        # Event hook instead of the old _wd_running poll loop.
        assert world.progress.join_watchdog(timeout=3.0)
        assert not world.progress._wd_running


class TestRequestMisuse:
    def test_duplicate_handle_in_waitany_raises(self):
        def main(comm):
            req = comm.irecv(source=0, tag=5)
            with pytest.raises(CommError, match="duplicate"):
                Request.waitany([req, req])
            assert req.cancel()
            return "ok"

        assert run_spmd(1, main) == ["ok"]

    def test_duplicate_handle_in_waitsome_raises(self):
        def main(comm):
            req = comm.irecv(source=0, tag=5)
            with pytest.raises(CommError, match="duplicate"):
                Request.waitsome([req, req])
            assert req.cancel()
            return "ok"

        assert run_spmd(1, main) == ["ok"]

    def test_wait_after_cancel_raises_instead_of_hanging(self, progress_engine):
        def main(comm):
            req = comm.irecv(source=0, tag=5)
            assert req.cancel()
            with pytest.raises(CommError, match="cancelled"):
                req.wait()
            with pytest.raises(CommError, match="cancelled"):
                req.test()
            return "ok"

        config = WorldConfig(progress_engine=progress_engine)
        assert run_spmd(1, main, config=config) == ["ok"]
