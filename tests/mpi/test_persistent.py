"""Persistent communication requests (repro.mpi.persistent)."""

import numpy as np
import pytest

from repro.errors import CommError, TruncationError
from repro.mpi import PROC_NULL
from repro.mpi.persistent import Prequest


class TestCycle:
    def test_repeated_start_wait(self, spmd):
        """The canonical pattern: bind once, cycle many times."""

        def main(comm):
            out = []
            if comm.rank == 0:
                buf = np.zeros(3)
                send = comm.Send_init(buf, dest=1, tag=4)
                for i in range(5):
                    buf[:] = i  # contents snapshotted at start
                    send.start()
                    send.wait()
                return None
            buf = np.zeros(3)
            recv = comm.Recv_init(buf, source=0, tag=4)
            for i in range(5):
                recv.start()
                recv.wait()
                out.append(float(buf[0]))
            return out

        assert spmd(2, main)[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_matches_plain_halo_exchange(self, spmd):
        """A persistent-request halo exchange produces the same halos as
        the plain Send/Recv version."""

        def main(comm):
            data = np.full(4, float(comm.rank))
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            halo = np.zeros(4)
            send = comm.Send_init(data, right, tag=9)
            recv = comm.Recv_init(halo, left, tag=9)
            results = []
            for step in range(3):
                data[:] = comm.rank * 10 + step
                Prequest.startall([send, recv])
                send.wait()
                recv.wait()
                results.append(float(halo[0]))
            expected = [((comm.rank - 1) % comm.size) * 10 + s for s in range(3)]
            return results == [float(e) for e in expected]

        assert all(spmd(4, main))

    def test_status_filled(self, spmd):
        from repro.mpi import Status

        def main(comm):
            if comm.rank == 0:
                comm.Send(np.ones(2), 1, tag=7)
                return None
            buf = np.zeros(2)
            recv = comm.Recv_init(buf, source=0, tag=7).start()
            st = Status()
            recv.wait(st)
            return (st.source, st.tag, st.count)

        assert spmd(2, main)[1] == (0, 7, 2)

    def test_test_method(self, spmd):
        def main(comm):
            if comm.rank == 1:
                buf = np.zeros(1)
                recv = comm.Recv_init(buf, source=0, tag=2).start()
                early, _ = recv.test()
                comm.send(early, 0, tag=3)  # tell sender we probed too early
                done = False
                while not done:
                    done, _ = recv.test()
                return (early, float(buf[0]))
            comm.recv(source=1, tag=3)
            comm.Send(np.array([5.0]), 1, tag=2)
            return None

        early, value = spmd(2, main)[1]
        assert early is False and value == 5.0


class TestMisuse:
    def test_double_start_rejected(self, spmd):
        def main(comm):
            recv = comm.Recv_init(np.zeros(1), source=0, tag=1).start()
            recv.start()

        with pytest.raises(CommError, match="already active"):
            spmd(1, main)

    def test_wait_before_start_rejected(self, spmd):
        def main(comm):
            comm.Recv_init(np.zeros(1), source=0, tag=1).wait()

        with pytest.raises(CommError, match="inactive"):
            spmd(1, main)

    def test_truncation_checked(self, spmd):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(9), 1, tag=1)
                return None
            comm.Recv_init(np.zeros(2), source=0, tag=1).start().wait()

        with pytest.raises(TruncationError):
            spmd(2, main)

    def test_send_to_proc_null_cycles(self, spmd):
        def main(comm):
            send = comm.Send_init(np.zeros(2), PROC_NULL, tag=1)
            for _ in range(3):
                send.start()
                send.wait()
            return True

        assert spmd(1, main) == [True]

    def test_bad_tag_rejected_at_init(self, spmd):
        def main(comm):
            comm.Recv_init(np.zeros(1), source=0, tag=-5)

        with pytest.raises(CommError, match="invalid receive tag"):
            spmd(1, main)


class TestStartallRollback:
    def test_partial_startall_rolls_back(self, spmd):
        """When startall fails partway, already-started requests are
        deactivated again — none is left half-armed."""

        def main(comm):
            first = comm.Recv_init(np.zeros(1), source=0, tag=1)
            second = comm.Recv_init(np.zeros(1), source=0, tag=2).start()
            with pytest.raises(CommError, match="already active"):
                Prequest.startall([first, second])
            # ``first`` was started then rolled back; ``second`` was the
            # culprit and keeps its original active cycle.
            assert not first._active and second._active
            assert second.cancel()
            return "rolled back"

        assert spmd(1, main) == ["rolled back"]

    def test_rollback_does_not_swallow_messages(self, spmd):
        """A posted receive cancelled by the rollback must not consume a
        message sent later — a fresh start() still matches it."""

        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=3)  # wait until rollback happened
                comm.Send(np.array([7.0]), 1, tag=1)
                return None
            buf = np.zeros(1)
            recv = comm.Recv_init(buf, source=0, tag=1)
            bad = comm.Recv_init(np.zeros(1), source=0, tag=2).start()
            with pytest.raises(CommError, match="already active"):
                Prequest.startall([recv, bad])
            comm.send("rolled back", 0, tag=3)
            recv.start().wait()  # the re-armed cycle gets the message
            assert bad.cancel()
            return float(buf[0])

        assert spmd(2, main)[1] == 7.0
