"""Chaos suite: randomized fault schedules must always end cleanly.

Every injected fault has to land in one of three acceptable outcomes —
a clean :class:`ProcessFailedError` on the survivors, a successful
revoke/shrink/continue, or a checkpoint-driven restart — with zero hangs
and zero misdiagnosed :class:`DeadlockError`.  Seeding comes from the
schedule-sweep plugin's ``fault_seed`` fixture: seeds 0..4 locally, one
seed per CI job via ``CHAOS_SEED`` or ``--mpi-fault-seed=J``.

Replaying a failure: run the one-line ``PYTHONPATH=src python -m pytest
... --mpi-fault-seed=J`` command the plugin prints in the failure
report.  The schedule is reconstructible via ``random_schedule(seed,
nprocs, ...)`` and can be minimized with ``FaultSchedule.shrink()``.
"""

import numpy as np
import pytest

from repro.errors import DeadlockError, ProcessFailedError, RevokedError
from repro.mpi import FaultSchedule, SimulatedCrash, WorldConfig, random_schedule, run_spmd


class TestChaosOutcomes:
    def test_unrecovered_crash_is_clean_pfe(self, fault_seed):
        """No recovery attempted: the job must die with a clean
        ProcessFailedError (never a hang, never a DeadlockError)."""
        sched = random_schedule(fault_seed, 6, crashes=1, max_op=20)

        def main(comm):
            for i in range(40):
                comm.send(i, (comm.rank + 1) % comm.size, tag=1)
                comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
            return "done"

        try:
            run_spmd(6, main, config=WorldConfig(fault_schedule=sched), timeout=60.0)
        except ProcessFailedError:
            pass  # the acceptable terminal outcome
        except DeadlockError as exc:  # pragma: no cover - the regression
            pytest.fail(f"dead rank misdiagnosed as deadlock: {exc}")
        assert any(f.startswith("crash") for f in sched.fired())

    def test_revoke_shrink_continue(self, fault_seed):
        """Full recovery: survivors revoke, shrink, and finish a
        collective over the shrunken world."""
        nprocs = 8
        sched = random_schedule(fault_seed, nprocs, crashes=2, max_op=30)
        scheduled_dead = {c["rank"] for c in sched.to_spec()["crashes"]}

        def main(comm):
            try:
                for i in range(40):
                    comm.send(i, (comm.rank + 1) % comm.size, tag=3)
                    comm.recv(source=(comm.rank - 1) % comm.size, tag=3)
            except (ProcessFailedError, RevokedError):
                comm.revoke()
            new = comm.shrink("chaos-survivors")
            return (new.size, new.allreduce(1))

        results = run_spmd(
            nprocs, main, config=WorldConfig(fault_schedule=sched), timeout=60.0
        )
        # A second scheduled crash may never fire (the first one breaks the
        # ring before the victim reaches its op count) — go by who actually
        # died, which is exactly the ranks with no return value.
        dead = {r for r in range(nprocs) if results[r] is None}
        assert dead and dead <= scheduled_dead
        live = nprocs - len(dead)
        for r in range(nprocs):
            if r not in dead:
                assert results[r] == (live, live)

    def test_checkpoint_restart_is_bitwise(self, fault_seed, tmp_path):
        """In-job component crash + checkpoint restore: the recovered run
        must be bitwise identical to an uninterrupted one."""
        from repro.climate.ccsm import CCSMConfig, run_ccsm

        kind = ("ocean", "land", "ice", "atmosphere")[fault_seed % 4]
        step = 2 + fault_seed % 3  # crash somewhere mid-run
        base = dict(nsteps=6, coupler_mode="serial", exchange="p2p")
        clean = run_ccsm(
            "scme",
            CCSMConfig(**base, checkpoint_dir=str(tmp_path / "clean"), checkpoint_every=2),
        )
        crashed = run_ccsm(
            "scme",
            CCSMConfig(
                **base,
                checkpoint_dir=str(tmp_path / "crashed"),
                checkpoint_every=2,
                crash_at=(kind, step),
            ),
        )
        for k in ("atmosphere", "ocean", "land", "ice"):
            np.testing.assert_array_equal(
                clean[k]["final_field"], crashed[k]["final_field"]
            )
            assert clean[k]["mean_T"] == crashed[k]["mean_T"]


# --- the MIME degradation demo -----------------------------------------------

ENSEMBLE_REG = """
BEGIN
Multi_Instance_Begin
Run1 0 1
Run2 2 3
Run3 4 5
Run4 6 7
Multi_Instance_End
stats
END
"""

STEPS = 10


def test_ensemble_kills_one_of_four_and_degrades(fault_seed):
    """Kill one of K=4 MIME instances mid-run: the remaining three finish
    and the collector reports the degraded mean over the survivors."""
    victim = fault_seed % 4
    from repro import components_setup, multi_instance
    from repro.core.ensemble import EnsembleCollector, EnsembleMember
    from repro.launcher.job import mph_run

    def run(world, env):
        mph = multi_instance(world, "Run", env=env)
        member = EnsembleMember(mph, "stats")
        scale = float(mph.comp_name()[-1])
        try:
            for step in range(STEPS):
                member.report(step, np.full(4, scale * (step + 1)))
                member.receive_control()
        except ProcessFailedError:
            return "orphaned"  # sibling rank of the dead reporter
        return "done"

    def stats(world, env):
        mph = components_setup(world, "stats", env=env)
        collector = EnsembleCollector.for_prefix(mph, "Run")
        means = []
        for step in range(STEPS):
            summary = collector.collect(step)
            means.append(float(summary.mean[0]))
            collector.broadcast_same_control({})
        return means, list(collector.degraded_instances)

    dead_rank = 2 * victim  # the instance's reporter (local rank 0)
    dead_name = f"Run{victim + 1}"
    sched = FaultSchedule(seed=1).crash_rank(dead_rank, at_op=20)

    result = mph_run(
        [(run, 8), (stats, 1)],
        registry=ENSEMBLE_REG,
        config=WorldConfig(fault_schedule=sched),
        timeout=60.0,
    )
    means, degraded = result.by_executable(1)[0]
    assert degraded == [dead_name]

    # Degraded mean: over all 4 scales early, over the 3 survivors late.
    scales = [s for s in (1.0, 2.0, 3.0, 4.0)]
    full_mean = sum(scales) / 4
    partial_mean = (sum(scales) - (victim + 1)) / 3
    assert means[0] == pytest.approx(full_mean * 1)
    assert means[-1] == pytest.approx(partial_mean * STEPS)

    crashed = [r.rank for r in result.procs if isinstance(r.exception, SimulatedCrash)]
    assert crashed == [dead_rank]
    values = {r.rank: r.value for r in result.procs if r.exception is None}
    assert values[dead_rank + 1] == "orphaned"
    done = [r for r in range(8) if r not in (dead_rank, dead_rank + 1)]
    assert all(values[r] == "done" for r in done)
