"""Scale smoke tests: larger worlds and component counts than the unit
tests use — paper-sized configurations must hold together end to end.

Deflake audit: no wall-clock sleeps here — every test is rendezvous-
synchronized by its own collectives, so nothing to convert to the
``World.wait_until_blocked`` event hook."""

import numpy as np
import pytest

from repro import components_setup, mph_run, multi_instance
from repro.mpi import run_spmd


class TestSubstrateScale:
    def test_64_rank_collectives(self):
        def main(comm):
            total = comm.allreduce(comm.rank)
            gathered = comm.allgather(comm.rank % 7)
            comm.barrier()
            sub = comm.split(comm.rank % 4, key=comm.rank)
            return (total, len(gathered), sub.size)

        values = run_spmd(64, main, timeout=120)
        assert values[0] == (2016, 64, 16)
        assert len(set(values)) == 1

    def test_deep_split_tree(self):
        """Five generations of splits: 32 -> 16 -> 8 -> 4 -> 2 -> 1."""

        def main(comm):
            current = comm
            sizes = []
            while current.size > 1:
                current = current.split(current.rank % 2, key=current.rank)
                sizes.append(current.size)
            return sizes

        values = run_spmd(32, main, timeout=120)
        assert values[0] == [16, 8, 4, 2, 1]


class TestInitScale:
    """The ``init-scale`` CI smoke: both bootstrap schemes must complete
    a 512-rank address exchange (simulated ranks — one thread each over
    real Unix sockets).  Every simulated rank verifies it got the full
    peer map, so this asserts protocol correctness at width; timings
    from shared runners are noise, and the flat-vs-tree scaling curve is
    ``benchmarks/bench_init.py``'s job."""

    @pytest.mark.parametrize("scheme", ["flat", "tree"])
    def test_bootstrap_512_ranks(self, scheme):
        from benchmarks.bench_init import bootstrap_seconds

        assert bootstrap_seconds(scheme, 512) > 0.0


class TestHandshakeScale:
    def test_paper_scale_mcme(self):
        """A CCSM-sized job: 36 + 32 + 4 processes, 6 components, overlap —
        the paper's §4.2/§4.3 sizes combined."""
        registry = """
BEGIN
Multi_Component_Begin
atmosphere 0 15
land       0 15
chemistry  16 35
Multi_Component_End
Multi_Component_Begin
ocean 0 15
ice   16 31
Multi_Component_End
Multi_Component_Begin
coupler 0 1
io      2 3
Multi_Component_End
END
"""

        def exe(*names):
            def program(world, env):
                mph = components_setup(world, *names, env=env)
                return (mph.comp_names(), mph.total_components())

            program.__name__ = names[0]
            return program

        result = mph_run(
            [
                (exe("atmosphere", "land", "chemistry"), 36),
                (exe("ocean", "ice"), 32),
                (exe("coupler", "io"), 4),
            ],
            registry=registry,
            timeout=120,
        )
        assert result.values()[0] == (("atmosphere", "land"), 7)
        assert result.values()[70] == (("io",), 7)

    def test_many_single_component_executables(self):
        """16 executables of 3 processes: the world_split fast path at
        width."""
        names = [f"model{i:02d}" for i in range(16)]
        registry = "BEGIN\n" + "\n".join(names) + "\nEND"

        def make(name):
            def program(world, env):
                mph = components_setup(world, name, env=env)
                return (mph.comp_name(), mph.component_comm().size, mph.strategy)

            program.__name__ = name
            return program

        result = mph_run([(make(n), 3) for n in names], registry=registry, timeout=120)
        for i, name in enumerate(names):
            assert result.by_executable(i) == [(name, 3, "world_split")] * 3

    def test_large_ensemble(self):
        """A 12-instance MIME ensemble plus statistics."""
        lines = "\n".join(f"Run{i + 1:02d} {2 * i} {2 * i + 1}" for i in range(12))
        registry = f"BEGIN\nMulti_Instance_Begin\n{lines}\nMulti_Instance_End\nstats\nEND"

        def run(world, env):
            mph = multi_instance(world, "Run", env=env)
            if mph.local_proc_id() == 0:
                mph.send(mph.comp_name(), "stats", 0, tag=3)
            return mph.comp_name()

        def stats(world, env):
            mph = components_setup(world, "stats", env=env)
            got = sorted(mph.recv_any(tag=3)[0] for _ in range(12))
            return got

        result = mph_run([(run, 24), (stats, 1)], registry=registry, timeout=120)
        assert result.by_executable(1)[0] == sorted(f"Run{i + 1:02d}" for i in range(12))
        assert result.by_executable(0)[23] == "Run12"
