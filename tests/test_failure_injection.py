"""Failure injection across layers: things going wrong mid-job must fail
fast, loudly, and with the right diagnosis — never hang."""

import time

import numpy as np
import pytest

from repro import components_setup, mph_run
from repro.errors import AbortError, DeadlockError, ReproError, TimeoutError_
from repro.grid import ClusterSpec, grid_setup, run_grid
from repro.mpi import WorldConfig

FAST = WorldConfig(deadlock_grace=0.3)


class TestMidCouplingFailures:
    REG = "BEGIN\natm\nocn\nEND"

    def test_component_dies_mid_exchange(self):
        """A crash after some successful coupled steps still surfaces the
        original exception, and the partner unwinds."""

        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            for step in range(5):
                mph.send(step, "ocn", 0, tag=1)
                if step == 2:
                    raise RuntimeError("atmosphere blew up at step 2")
                mph.recv("ocn", 0, tag=2)
            return None

        def ocn(world, env):
            mph = components_setup(world, "ocn", env=env)
            for step in range(5):
                mph.recv("atm", 0, tag=1)
                mph.send(step, "atm", 0, tag=2)
            return None

        with pytest.raises(RuntimeError, match="step 2"):
            mph_run([(atm, 1), (ocn, 1)], registry=self.REG, config=FAST, timeout=20)

    def test_protocol_desync_detected_as_deadlock(self):
        """One side skips a message: the job deadlocks and the watchdog
        names both blocked calls."""

        def atm(world, env):
            mph = components_setup(world, "atm", env=env)
            mph.recv("ocn", 0, tag=9)  # ocn never sends tag 9

        def ocn(world, env):
            mph = components_setup(world, "ocn", env=env)
            mph.recv("atm", 0, tag=9)

        with pytest.raises(DeadlockError) as info:
            mph_run([(atm, 1), (ocn, 1)], registry=self.REG, config=FAST, timeout=20)
        assert "tag=9" in str(info.value)

    def test_slow_component_hits_job_timeout(self):
        def atm(world, env):
            components_setup(world, "atm", env=env)
            time.sleep(30)

        def ocn(world, env):
            mph = components_setup(world, "ocn", env=env)
            mph.recv("atm", 0, tag=1)

        config = WorldConfig(deadlock_detection=False)
        with pytest.raises(TimeoutError_):
            mph_run([(atm, 1), (ocn, 1)], registry=self.REG, config=config, timeout=1.0)


class TestGridFailures:
    def test_remote_cluster_dies_before_directory_exchange(self):
        """A site failing before grid_setup leaves the healthy site's
        directory collect to time out with a clear message, and the
        session reports the root cause."""

        def healthy(world, env):
            mph = components_setup(world, "a", env=env)
            grid_setup(mph, env.grid_cluster, env.grid_channel)
            return True

        def dead_site(world, env):
            raise RuntimeError("site power loss")

        with pytest.raises((RuntimeError, ReproError)):
            run_grid(
                [
                    ClusterSpec("east", [(healthy, 1)], registry="BEGIN\na\nEND"),
                    ClusterSpec("west", [(dead_site, 1)], registry="BEGIN\nb\nEND"),
                ],
                timeout=15,
            )

    def test_cross_site_receive_timeout_names_the_address(self):
        def waiting(world, env):
            mph = components_setup(world, "a", env=env)
            gmph = grid_setup(mph, env.grid_cluster, env.grid_channel)
            gmph.recv(tag=5, timeout=0.3)

        def silent(world, env):
            mph = components_setup(world, "b", env=env)
            grid_setup(mph, env.grid_cluster, env.grid_channel)
            return True

        with pytest.raises(ReproError, match=r"\(east, a, 0, tag=5\)"):
            run_grid(
                [
                    ClusterSpec("east", [(waiting, 1)], registry="BEGIN\na\nEND"),
                    ClusterSpec("west", [(silent, 1)], registry="BEGIN\nb\nEND"),
                ],
                timeout=15,
            )


class TestStateCorruption:
    def test_truncated_checkpoint_rejected(self, tmp_path, spmd):
        from repro.climate import checkpoint
        from repro.climate.components import OceanModel
        from repro.climate.grid import LatLonGrid

        grid = LatLonGrid(6, 8)

        def save(comm):
            m = OceanModel(comm, grid, OceanModel.default_params())
            checkpoint.save(m, tmp_path, "ocean")
            return None

        spmd(1, save)
        victim = tmp_path / "ocean.ckpt.npz"
        victim.write_bytes(victim.read_bytes()[:40])  # corrupt the archive

        def load(comm):
            m = OceanModel(comm, grid, OceanModel.default_params())
            checkpoint.restore(m, tmp_path, "ocean")

        with pytest.raises(Exception):  # zipfile/numpy surface the corruption
            spmd(1, load)

    def test_registry_unreadable_at_root(self, tmp_path):
        """Only world rank 0 reads the file (§6); its failure must fail
        the whole job, not hang the broadcast."""

        def program(world, env):
            mph = components_setup(world, "solo", env=env)
            return mph.comp_name()

        missing = tmp_path / "never_written.in"
        with pytest.raises((ReproError, OSError)):
            mph_run(
                [(program, 3)], registry=missing, config=FAST, timeout=20
            )


class TestEnsembleFailures:
    REG = """
BEGIN
Multi_Instance_Begin
Run1 0 0
Run2 1 1
Multi_Instance_End
stats
END
"""

    def test_member_death_fails_collection(self):
        from repro.core.ensemble import EnsembleCollector, EnsembleMember

        def run(world, env):
            from repro import multi_instance

            mph = multi_instance(world, "Run", env=env)
            member = EnsembleMember(mph, "stats")
            if mph.comp_name() == "Run2":
                raise ValueError("member diverged (NaN)")
            member.report(0, np.zeros(2))
            return None

        def stats(world, env):
            mph = components_setup(world, "stats", env=env)
            collector = EnsembleCollector.for_prefix(mph, "Run")
            collector.collect(0)

        with pytest.raises(ValueError, match="diverged"):
            mph_run([(run, 2), (stats, 1)], registry=self.REG, config=FAST, timeout=20)
