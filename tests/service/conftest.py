"""Shared fixtures for the service-level suite: a small program catalog
following the service convention (``env.program`` is the component name
from the job document) and document factories.

The programs are module-level functions on purpose: the process backend
forks, and fork inheritance is what carries the closures across — a
lambda defined inside a test body works too, but module level keeps the
catalog importable from every test file.
"""

from __future__ import annotations

import time

import pytest

from repro import components_setup
from repro.core.session import components_session

#: Iterations of the chaos program's barrier loop — comfortably past the
#: ``max_op`` ceiling the chaos suite draws crash operations from, so a
#: scheduled crash always fires before the job finishes.
CHAOS_OPS = 40


def model(comm, env):
    """A two-component coupled exchange (components ``atm`` and ``ocn``).

    Deterministic per rank and argv, independent of backend: ``atm``
    ranks compute a forcing from ``--co2`` and their local id, send it
    to the matching ``ocn`` rank, and get a proportional uptake back —
    the values the conformance suite compares bitwise across backends.
    """
    mph = components_setup(comm, env.program, env=env)
    co2 = float(env.argv[env.argv.index("--co2") + 1]) if "--co2" in env.argv else 1.0
    me = mph.local_proc_id()
    if mph.comp_name() == "atm":
        forcing = 3.7 * (co2 - 1.0) + me
        mph.send(forcing, "ocn", me, tag=11)
        uptake = mph.recv("ocn", me, tag=12)
        return {"component": "atm", "rank": me, "forcing": forcing, "uptake": uptake}
    forcing = mph.recv("atm", me, tag=11)
    uptake = round(0.9 * forcing, 6)
    mph.send(uptake, "atm", me, tag=12)
    return {"component": "ocn", "rank": me, "uptake": uptake}


def solo(comm, env):
    """A single-component program: pure function of its env."""
    mph = components_setup(comm, env.program, env=env)
    return {
        "component": mph.comp_name(),
        "rank": mph.local_proc_id(),
        "argv": list(env.argv),
    }


def chaotic(comm, env):
    """The chaos target: a long barrier loop, so any crash scheduled at
    an operation count up to :data:`CHAOS_OPS` fires mid-job.

    Survivors follow the repo's ULFM idiom — a barrier involving the
    dead rank raises :class:`ProcessFailedError`, which they catch and
    degrade on.  That leaves the injected :class:`SimulatedCrash` as the
    job's *only* per-rank failure, so ``JobResult.failures()`` names
    exactly the crashed component.
    """
    from repro.errors import ProcessFailedError

    try:
        components_setup(comm, env.program, env=env)
        acc = 0
        for i in range(CHAOS_OPS):
            comm.barrier()
            acc += i
    except ProcessFailedError:
        return {"component": env.program, "degraded": True}
    return {"component": env.program, "acc": acc}


def crasher(comm, env):
    """Raises a plain user exception when told to — exercises the
    resident world's poison path without a fault schedule (those are
    thread-backend-only by document validation)."""
    components_setup(comm, env.program, env=env)
    if "--boom" in env.argv:
        raise ValueError(f"boom from {env.program}")
    return {"component": env.program, "ok": True}


def sleeper(comm, env):
    """Sleeps for ``--seconds S`` — admission/cancellation tests use it
    to hold a worker busy deterministically."""
    components_setup(comm, env.program, env=env)
    seconds = float(env.argv[env.argv.index("--seconds") + 1])
    time.sleep(seconds)
    return {"component": env.program, "slept": seconds}


def releaser(comm, env):
    """An active component that immediately dismisses the reserve pool."""
    s = components_session(comm, env.program, env=env)
    s.release_pool()
    return {"component": env.program, "released": True}


def grower(comm, env):
    """An active component that admits one reserve rank into itself,
    then dismisses the rest."""
    s = components_session(comm, env.program, env=env)
    s.grow(env.program, 1)
    s.release_pool()
    return {"component": env.program, "size": s.pset(env.program).size}


#: The service catalog every suite binds documents against.
PROGRAMS = {
    "model": model,
    "solo": solo,
    "chaotic": chaotic,
    "crasher": crasher,
    "sleeper": sleeper,
    "releaser": releaser,
    "grower": grower,
}


@pytest.fixture
def service_programs():
    return dict(PROGRAMS)


def coupled_doc(backend: str, *, transport: str = "auto", co2: float = 2.0, **extra) -> dict:
    """The conformance suite's canonical document: the same coupled
    ``atm``/``ocn`` job, parametrized only by backend selection."""
    runtime = {"backend": backend, "timeout": 60.0}
    if backend == "process":
        runtime["transport"] = transport
    runtime.update(extra.pop("runtime", {}))
    spec = {
        "mph_job": 1,
        "name": "conformance-coupled",
        "components": [
            {"name": "atm", "nprocs": 2, "program": "model",
             "argv": ["--co2", str(co2)]},
            {"name": "ocn", "nprocs": 2, "program": "model",
             "argv": ["--co2", str(co2)]},
        ],
        "runtime": runtime,
        "output": {"save": ["values", "document"]},
    }
    spec.update(extra)
    return spec


@pytest.fixture
def make_coupled_doc():
    return coupled_doc
