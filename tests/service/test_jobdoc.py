"""Property/fuzz tests for the job-document spec layer.

Two properties, hunted with a seeded generator (no hypothesis
dependency — the container may not have it, and a seeded ``random.Random``
makes every failure replayable by its printed seed):

* **Round-trip stability** — for every generated valid document,
  ``from_spec(to_spec(d))`` reproduces ``d`` exactly and
  ``canonical_json()`` is bitwise stable across the round-trip.
* **Typed rejection** — for every mutated/truncated/wrong-typed input,
  validation either accepts it or raises
  :class:`~repro.errors.JobSpecError` carrying a ``$``-rooted path to
  the offending field.  A raw ``KeyError``/``TypeError``/``IndexError``
  escaping ``from_spec`` is the bug this file exists to catch.
"""

from __future__ import annotations

import copy
import json
import random

import pytest

from repro.errors import JobSpecError
from repro.mpi.faults import random_schedule
from repro.service.jobdoc import SCHEMA_VERSION, JobDocument

#: Component-name pool (all legal per ``validate_name``).
_NAMES = ["atm", "ocn", "land", "ice", "cpl", "chem.v2", "bio-geo"]


def gen_valid_spec(rng: random.Random) -> dict:
    """One pseudo-random *valid* job-document spec."""
    names = rng.sample(_NAMES, rng.randint(1, 4))
    components = []
    for name in names:
        comp = {"name": name, "nprocs": rng.randint(1, 4)}
        if rng.random() < 0.5:
            comp["program"] = rng.choice(["model", "solo", name])
        if rng.random() < 0.5:
            comp["argv"] = [f"--flag{i}" for i in range(rng.randint(0, 3))]
        components.append(comp)
    spec: dict = {"name": f"fuzz-{rng.randrange(10**6)}", "components": components}
    if rng.random() < 0.5:
        spec["mph_job"] = SCHEMA_VERSION

    backend = "thread"
    if rng.random() < 0.7:
        runtime: dict = {"backend": rng.choice(["thread", "process"])}
        backend = runtime["backend"]
        if backend == "process" and rng.random() < 0.5:
            runtime["transport"] = rng.choice(["auto", "unix", "tcp", "shm"])
        if rng.random() < 0.3:
            runtime["rank_policy"] = rng.choice(["block", "round_robin"])
        if rng.random() < 0.3:
            runtime["pool"] = rng.randint(0, 2)
        if rng.random() < 0.3:
            runtime["reuse_world"] = rng.choice([True, False])
        if rng.random() < 0.3:
            runtime["timeout"] = rng.choice([5.0, 30.0, 120.5])
        if rng.random() < 0.2:
            runtime["nodes"] = rng.randint(1, 3)
        spec["runtime"] = runtime

    if backend == "thread" and rng.random() < 0.4:
        seeds: dict = {}
        if rng.random() < 0.7:
            nprocs = sum(c["nprocs"] for c in components)
            seeds["fault"] = random_schedule(rng.randrange(100), nprocs + 1).to_spec()
        if rng.random() < 0.5:
            seeds["match"] = rng.randrange(10**4)
        if seeds:
            spec["seeds"] = seeds

    if rng.random() < 0.3:
        registered = names + rng.sample([n for n in _NAMES if n not in names],
                                        rng.randint(0, 2))
        spec["registry"] = "BEGIN\n" + "\n".join(registered) + "\nEND\n"

    if rng.random() < 0.5:
        save = rng.sample(["values", "document", "traffic"], rng.randint(1, 3))
        if backend == "process" and rng.random() < 0.3:
            save.append("logs")
        output: dict = {"save": save}
        if rng.random() < 0.3:
            output["format"] = rng.choice(["json", "pickle"])
        spec["output"] = output
    return spec


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(150))
def test_round_trip_is_bitwise_stable(seed):
    rng = random.Random(seed)
    spec = gen_valid_spec(rng)
    doc = JobDocument.from_spec(spec)
    again = JobDocument.from_spec(doc.to_spec())
    assert again == doc, f"seed {seed}: round-trip changed the document"
    assert again.canonical_json() == doc.canonical_json(), f"seed {seed}"
    assert again.to_spec() == doc.to_spec(), f"seed {seed}"
    # And through actual JSON text, the wire format.
    assert JobDocument.from_json(doc.canonical_json()) == doc, f"seed {seed}"


@pytest.mark.parametrize("seed", range(50))
def test_layout_key_ignores_argv_seeds_output(seed):
    """Two documents differing only in entry args / seeds / output spec
    share a layout key (so they share cached layouts and worker worlds);
    changing the processor map changes it."""
    rng = random.Random(seed)
    spec = gen_valid_spec(rng)
    doc = JobDocument.from_spec(spec)

    varied = copy.deepcopy(spec)
    varied["components"] = copy.deepcopy(varied["components"])
    varied["components"][0]["argv"] = ["--other", "args"]
    varied["name"] = "renamed"
    varied["output"] = {"save": ["values"]}
    assert JobDocument.from_spec(varied).layout_key() == doc.layout_key()

    resized = copy.deepcopy(spec)
    resized["components"][0]["nprocs"] = doc.components[0].nprocs + 1
    assert JobDocument.from_spec(resized).layout_key() != doc.layout_key()


def test_defaults_materialize():
    doc = JobDocument.from_spec(
        {"components": [{"name": "atm", "nprocs": 1}]}
    )
    spec = doc.to_spec()
    assert spec["mph_job"] == SCHEMA_VERSION
    assert spec["runtime"]["backend"] == "thread"
    assert spec["runtime"]["timeout"] == 60.0
    assert spec["output"] == {"save": ["values"], "format": "json"}
    assert doc.registry_text() == "BEGIN\natm\nEND\n"
    assert doc.world_size == 1


# ---------------------------------------------------------------------------
# Typed rejection: the curated corpus
# ---------------------------------------------------------------------------


def _valid_base() -> dict:
    """A rich valid spec the mutation corpus perturbs."""
    return {
        "mph_job": SCHEMA_VERSION,
        "name": "base",
        "components": [
            {"name": "atm", "nprocs": 2, "program": "model", "argv": ["--co2", "2"]},
            {"name": "ocn", "nprocs": 1},
        ],
        "registry": "BEGIN\natm\nocn\nEND\n",
        "runtime": {"backend": "thread", "timeout": 30.0},
        "seeds": {"match": 7},
        "output": {"save": ["values", "document"], "format": "json"},
    }


def _mut(path_fragment):
    """Tag a mutator with the path fragment its rejection must name."""

    def wrap(fn):
        fn.expected_fragment = path_fragment
        return fn

    return wrap


def _set(spec, dotted, value):
    """``_set(s, "runtime.backend", "x")`` — tiny path helper."""
    *parents, last = dotted.split(".")
    node = spec
    for key in parents:
        node = node[int(key)] if key.isdigit() else node[key]
    node[int(last) if last.isdigit() else last] = value
    return spec


_CORPUS = [
    ("not-a-mapping", "$", lambda s: 42),
    ("list-document", "$", lambda s: [s]),
    ("unknown-top-key", "$", lambda s: {**s, "nope": 1}),
    ("bad-version", "mph_job", lambda s: _set(s, "mph_job", 2)),
    ("empty-name", "name", lambda s: _set(s, "name", "")),
    ("int-name", "name", lambda s: _set(s, "name", 7)),
    ("no-components", "components", lambda s: _set(s, "components", [])),
    ("string-components", "components", lambda s: _set(s, "components", "atm")),
    ("component-not-mapping", "components[0]", lambda s: _set(s, "components.0", "atm")),
    ("component-unknown-key", "components[1]",
     lambda s: _set(s, "components.1", {"name": "ocn", "nprocs": 1, "np": 2})),
    ("component-missing-name", "components[0]",
     lambda s: _set(s, "components.0", {"nprocs": 2})),
    ("component-missing-nprocs", "components[0]",
     lambda s: _set(s, "components.0", {"name": "atm"})),
    ("nprocs-zero", "components[0].nprocs", lambda s: _set(s, "components.0.nprocs", 0)),
    ("nprocs-bool", "components[0].nprocs", lambda s: _set(s, "components.0.nprocs", True)),
    ("nprocs-string", "components[0].nprocs", lambda s: _set(s, "components.0.nprocs", "2")),
    ("argv-string", "components[0].argv", lambda s: _set(s, "components.0.argv", "--x")),
    ("argv-int-item", "components[0].argv[1]",
     lambda s: _set(s, "components.0.argv", ["--x", 3])),
    ("bad-component-name", "components[0].name",
     lambda s: _set(s, "components.0.name", "2fast")),
    ("keyword-component-name", "components[0].name",
     lambda s: _set(s, "components.0.name", "BEGIN")),
    ("duplicate-component", "components",
     lambda s: _set(s, "components.1", dict(s["components"][0]))),
    ("registry-int", "registry", lambda s: _set(s, "registry", 7)),
    ("registry-blank", "registry", lambda s: _set(s, "registry", "   ")),
    ("registry-unparseable", "registry", lambda s: _set(s, "registry", "atm ocn")),
    ("registry-missing-component", "components[1].name",
     lambda s: _set(s, "registry", "BEGIN\natm\nEND\n")),
    ("runtime-not-mapping", "runtime", lambda s: _set(s, "runtime", "thread")),
    ("runtime-unknown-key", "runtime",
     lambda s: _set(s, "runtime", {"backend": "thread", "nproc": 4})),
    ("bad-backend", "runtime.backend",
     lambda s: _set(s, "runtime", {"backend": "mpi"})),
    ("bad-transport", "runtime.transport",
     lambda s: _set(s, "runtime", {"backend": "process", "transport": "pigeon"})),
    ("thread-with-shm", "runtime.transport",
     lambda s: _set(s, "runtime", {"backend": "thread", "transport": "shm"})),
    ("nodes-zero", "runtime.nodes",
     lambda s: _set(s, "runtime", {"backend": "thread", "nodes": 0})),
    ("nodes-bool", "runtime.nodes",
     lambda s: _set(s, "runtime", {"backend": "thread", "nodes": True})),
    ("bad-rank-policy", "runtime.rank_policy",
     lambda s: _set(s, "runtime", {"rank_policy": "spiral"})),
    ("pool-negative", "runtime.pool", lambda s: _set(s, "runtime", {"pool": -1})),
    ("pool-bool", "runtime.pool", lambda s: _set(s, "runtime", {"pool": True})),
    ("reuse-world-string", "runtime.reuse_world",
     lambda s: _set(s, "runtime", {"reuse_world": "yes"})),
    ("timeout-zero", "runtime.timeout", lambda s: _set(s, "runtime", {"timeout": 0})),
    ("timeout-string", "runtime.timeout",
     lambda s: _set(s, "runtime", {"timeout": "fast"})),
    ("seeds-not-mapping", "seeds", lambda s: _set(s, "seeds", 7)),
    ("seeds-unknown-key", "seeds", lambda s: _set(s, "seeds", {"chaos": 1})),
    ("fault-not-mapping", "seeds.fault", lambda s: _set(s, "seeds", {"fault": 3})),
    ("fault-garbage-spec", "seeds.fault",
     lambda s: _set(s, "seeds", {"fault": {"seed": 1, "crashes": [{"rank": "x"}]}})),
    ("match-bool", "seeds.match", lambda s: _set(s, "seeds", {"match": True})),
    ("match-string", "seeds.match", lambda s: _set(s, "seeds", {"match": "7"})),
    ("fault-on-process", "seeds.fault",
     lambda s: _set(_set(s, "runtime", {"backend": "process"}),
                    "seeds", {"fault": random_schedule(1, 3).to_spec()})),
    ("match-on-process", "seeds.match",
     lambda s: _set(_set(s, "runtime", {"backend": "process"}), "seeds", {"match": 3})),
    ("output-not-mapping", "output", lambda s: _set(s, "output", "values")),
    ("output-unknown-key", "output", lambda s: _set(s, "output", {"keep": []})),
    ("save-string", "output.save", lambda s: _set(s, "output", {"save": "values"})),
    ("save-unknown-kind", "output.save[0]",
     lambda s: _set(s, "output", {"save": ["blobs"]})),
    ("save-duplicate", "output.save[1]",
     lambda s: _set(s, "output", {"save": ["values", "values"]})),
    ("bad-format", "output.format", lambda s: _set(s, "output", {"format": "xml"})),
    ("logs-on-thread", "output.save",
     lambda s: _set(s, "output", {"save": ["logs"]})),
]


@pytest.mark.parametrize("label,fragment,mutate", _CORPUS,
                         ids=[c[0] for c in _CORPUS])
def test_corpus_rejections_are_typed_and_name_the_path(label, fragment, mutate):
    mutated = mutate(copy.deepcopy(_valid_base()))
    with pytest.raises(JobSpecError) as err:
        JobDocument.from_spec(mutated)
    exc = err.value
    assert isinstance(exc.path, str) and exc.path.startswith("$"), exc.path
    # The rejection points at (or into) the field the mutation broke.
    want = "$" if fragment == "$" else f"$.{fragment}"
    assert exc.path.startswith(want) or want.startswith(exc.path), (
        f"{label}: rejection path {exc.path!r} does not name {want!r}: {exc}"
    )
    assert str(exc), "rejection must carry a message"


# ---------------------------------------------------------------------------
# Typed rejection: random mutations and truncation
# ---------------------------------------------------------------------------


_JUNK = [None, True, False, -1, 0, 3.5, "", "x", [], {}, [1, 2], {"a": 1}, float("nan")]


def _sites(node, prefix=()):
    """Every (container, key) assignment site in a JSON tree."""
    out = []
    if isinstance(node, dict):
        for key, value in node.items():
            out.append((node, key))
            out.extend(_sites(value, prefix + (key,)))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.append((node, i))
            out.extend(_sites(value, prefix + (i,)))
    return out


@pytest.mark.parametrize("seed", range(300))
def test_random_mutation_never_raises_raw_exceptions(seed):
    """The core fuzz property: an arbitrary single-site mutation of a
    valid document either validates or fails with a pathed
    ``JobSpecError`` — never a raw ``KeyError``/``TypeError``."""
    rng = random.Random(10_000 + seed)
    spec = gen_valid_spec(rng)
    sites = _sites(spec)
    container, key = rng.choice(sites)
    action = rng.random()
    if action < 0.25 and isinstance(container, dict):
        del container[key]
    elif action < 0.5 and isinstance(container, dict):
        container[f"k{rng.randrange(100)}"] = rng.choice(_JUNK)
    else:
        container[key] = rng.choice(_JUNK)
    try:
        doc = JobDocument.from_spec(spec)
    except JobSpecError as exc:
        assert isinstance(exc.path, str) and exc.path.startswith("$"), (
            f"seed {seed}: JobSpecError without a $-rooted path: {exc}"
        )
    except Exception as exc:  # noqa: BLE001 - the property under test
        pytest.fail(
            f"seed {seed}: raw {type(exc).__name__} escaped validation: {exc!r}\n"
            f"spec: {spec!r}"
        )
    else:
        assert isinstance(doc, JobDocument)


@pytest.mark.parametrize("seed", range(40))
def test_truncated_json_is_a_typed_rejection(seed):
    """Every strict prefix of a serialized document is invalid JSON, and
    must come back as ``JobSpecError`` at ``$`` — not ``JSONDecodeError``."""
    rng = random.Random(20_000 + seed)
    text = JobDocument.from_spec(gen_valid_spec(rng)).canonical_json()
    cut = rng.randrange(len(text))
    with pytest.raises(JobSpecError) as err:
        JobDocument.from_json(text[:cut])
    assert err.value.path == "$"


@pytest.mark.parametrize(
    "text", ["", "null", "[]", '"job"', "true", "{", "{}{}"],
    ids=["empty", "null", "list", "string", "bool", "open-brace", "two-objects"],
)
def test_non_object_json_is_a_typed_rejection(text):
    with pytest.raises(JobSpecError):
        JobDocument.from_json(text)


def test_json_with_wrong_key_types_is_typed():
    # json.loads can't produce non-string keys, but from_spec accepts
    # plain mappings, where it can happen.
    with pytest.raises(JobSpecError) as err:
        JobDocument.from_spec({1: "x", "components": [{"name": "atm", "nprocs": 1}]})
    assert err.value.path == "$"


def test_error_message_carries_the_path():
    try:
        JobDocument.from_spec(
            {"components": [{"name": "atm", "nprocs": 2},
                            {"name": "ocn", "nprocs": "two"}]}
        )
    except JobSpecError as exc:
        assert exc.path == "$.components[1].nprocs"
        assert "$.components[1].nprocs" in str(exc)
    else:
        pytest.fail("expected a rejection")


def test_fault_seed_spec_is_normalized():
    """A valid fault spec is stored in its canonical ``to_spec`` form,
    so the document round-trip stays a fixed point."""
    schedule = random_schedule(9, 4)
    doc = JobDocument.from_spec(
        {
            "components": [{"name": "atm", "nprocs": 4}],
            "seeds": {"fault": json.loads(json.dumps(schedule.to_spec()))},
        }
    )
    assert doc.seeds.fault == schedule.to_spec()
