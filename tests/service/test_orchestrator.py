"""Front-end behavior: admission control, the job lifecycle, cancellation,
warm-path accounting, and staging guarantees.

Complements the conformance and chaos suites: here the subject is the
service loop itself — what ``submit`` promises, which states a handle
can reach, and how the runtime's resident worlds and layout cache are
accounted — not the computed results.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service import (
    JobDocument,
    JobRuntime,
    JobState,
    LayoutCache,
    Orchestrator,
    ResultStager,
)

from tests.service.conftest import PROGRAMS


def _solo_spec(name="solo-job", **runtime) -> dict:
    runtime.setdefault("backend", "thread")
    return {
        "name": name,
        "components": [{"name": "solo", "nprocs": 1}],
        "runtime": runtime,
    }


def _sleep_spec(seconds: float) -> dict:
    return {
        "name": "sleepy",
        "components": [
            {"name": "sleeper", "nprocs": 1, "argv": ["--seconds", str(seconds)]}
        ],
        "runtime": {"backend": "thread", "timeout": 30.0},
    }


def _run(coro):
    return asyncio.run(coro)


class TestSubmission:
    def test_invalid_document_rejects_without_raising(self):
        async def go():
            async with Orchestrator(PROGRAMS) as orch:
                handle = await orch.submit({"components": [], "nope": 1})
                return handle

        handle = _run(go())
        assert handle.state == JobState.REJECTED
        assert handle.finished
        assert handle.error and handle.error.startswith("$")
        assert handle.outcome is None

    def test_unknown_program_fails_in_staging(self):
        async def go():
            async with Orchestrator(PROGRAMS) as orch:
                spec = _solo_spec()
                spec["components"][0]["program"] = "nonexistent"
                handle = await orch.submit(spec)
                return await handle.wait()

        handle = _run(go())
        assert handle.state == JobState.FAILED
        assert "nonexistent" in handle.error and "catalog" in handle.error

    def test_submit_accepts_document_mapping_and_json(self):
        async def go():
            async with Orchestrator(PROGRAMS) as orch:
                doc = JobDocument.from_spec(_solo_spec())
                handles = [
                    await orch.submit(doc),
                    await orch.submit(_solo_spec()),
                    await orch.submit(doc.canonical_json()),
                ]
                return [await h.wait() for h in handles]

        handles = _run(go())
        assert [h.state for h in handles] == [JobState.DONE] * 3
        assert len({h.job_id for h in handles}) == 3

    def test_submit_before_start_and_after_shutdown_raise(self):
        async def go():
            orch = Orchestrator(PROGRAMS)
            with pytest.raises(AdmissionError, match="not started"):
                await orch.submit(_solo_spec())
            await orch.start()
            handle = await orch.submit(_solo_spec())
            await handle.wait()
            await orch.shutdown()
            with pytest.raises(AdmissionError):
                await orch.submit(_solo_spec())
            return handle

        assert _run(go()).state == JobState.DONE

    def test_queue_full_raises_admission_error(self):
        async def go():
            async with Orchestrator(PROGRAMS, max_workers=1, max_queued=1) as orch:
                gate = await orch.submit(_sleep_spec(1.0))
                # Wait for the single worker to claim the sleeper off
                # the queue, so exactly one queue slot is free.
                while gate.state == JobState.QUEUED:
                    await asyncio.sleep(0.01)
                queued = await orch.submit(_solo_spec("fills-the-queue"))
                with pytest.raises(AdmissionError, match="full"):
                    await orch.submit(_solo_spec("bounced"))
                await gate.wait()
                await queued.wait()
                return gate, queued, orch.counts()

        gate, queued, counts = _run(go())
        assert gate.state == JobState.DONE
        assert queued.state == JobState.DONE
        assert counts == {JobState.DONE: 2}


class TestCancellation:
    def test_cancel_queued_job(self):
        async def go():
            async with Orchestrator(PROGRAMS, max_workers=1) as orch:
                gate = await orch.submit(_sleep_spec(0.8))
                while gate.state == JobState.QUEUED:
                    await asyncio.sleep(0.01)
                victim = await orch.submit(_solo_spec("to-cancel"))
                assert await orch.cancel(victim.job_id) is True
                # Cancelling a claimed/running job refuses.
                assert await orch.cancel(gate.job_id) is False
                assert await orch.cancel("job99999") is False
                await gate.wait()
                await victim.wait()
                return gate, victim

        gate, victim = _run(go())
        assert gate.state == JobState.DONE
        assert victim.state == JobState.CANCELLED
        assert victim.outcome is None

    def test_shutdown_without_drain_cancels_backlog(self):
        async def go():
            orch = await Orchestrator(PROGRAMS, max_workers=1).start()
            gate = await orch.submit(_sleep_spec(0.5))
            while gate.state == JobState.QUEUED:
                await asyncio.sleep(0.01)
            backlog = [await orch.submit(_solo_spec(f"backlog-{i}")) for i in range(3)]
            await orch.shutdown(drain=False)
            return gate, backlog

        gate, backlog = _run(go())
        assert gate.state == JobState.DONE  # in flight: runs to completion
        assert all(h.state == JobState.CANCELLED for h in backlog)


class TestWarmPath:
    def test_resident_world_reuse_is_accounted(self):
        runtime = JobRuntime(PROGRAMS, max_resident=2)
        doc = JobDocument.from_spec(_solo_spec(backend="process", timeout=60.0))
        with runtime:
            outcomes = [runtime.execute(doc, f"warm-{i}") for i in range(3)]
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert [o.warm for o in outcomes] == [False, True, True]
        assert runtime.stats["worlds_built"] == 1
        # The counters match the per-outcome warm flag: the first job
        # paid the world build (cold), the next two rode it warm.
        assert runtime.stats["warm"] == 2 and runtime.stats["cold"] == 1
        assert runtime.layouts.misses == 1 and runtime.layouts.hits == 2

    def test_opt_out_reuse_world_stays_cold(self):
        runtime = JobRuntime(PROGRAMS, max_resident=2)
        doc = JobDocument.from_spec(
            _solo_spec(backend="process", timeout=60.0, reuse_world=False)
        )
        with runtime:
            outcomes = [runtime.execute(doc, f"cold-{i}") for i in range(2)]
        assert all(o.ok and not o.warm for o in outcomes)
        assert runtime.stats["worlds_built"] == 0
        assert runtime.stats["cold"] == 2

    def test_traffic_request_forces_isolated_path(self):
        """A resident world never collects wire counters, so an explicit
        ``"traffic"`` request must route to the isolated path instead of
        silently staging without traffic.json."""
        runtime = JobRuntime(PROGRAMS, max_resident=2)
        spec = _solo_spec(backend="process", timeout=60.0)
        spec["output"] = {"save": ["values", "traffic"]}
        doc = JobDocument.from_spec(spec)
        with runtime:
            outcome = runtime.execute(doc, "traffic-iso")
        assert outcome.ok and not outcome.warm
        assert outcome.traffic is not None
        assert runtime.stats["worlds_built"] == 0

    def test_max_resident_zero_disables_the_warm_path(self):
        runtime = JobRuntime(PROGRAMS, max_resident=0)
        doc = JobDocument.from_spec(_solo_spec(backend="process", timeout=60.0))
        with runtime:
            outcome = runtime.execute(doc, "no-warm")
        assert outcome.ok and not outcome.warm
        assert runtime.stats["worlds_built"] == 0

    def test_lru_eviction_beyond_max_resident(self):
        runtime = JobRuntime(PROGRAMS, max_resident=1)
        small = JobDocument.from_spec(_solo_spec(backend="process", timeout=60.0))
        big = JobDocument.from_spec(
            {
                "name": "bigger",
                "components": [{"name": "solo", "nprocs": 2}],
                "runtime": {"backend": "process", "timeout": 60.0},
            }
        )
        with runtime:
            assert runtime.execute(small, "lru-a").ok
            assert runtime.execute(big, "lru-b").ok  # evicts small's world
            assert runtime.execute(small, "lru-c").ok  # rebuilt
        assert runtime.stats["worlds_built"] == 3
        assert len(runtime._resident) <= 1


class TestLayoutCache:
    def test_get_or_build_reports_per_call_verdict(self):
        """The hit flag is this call's own, not inferred from the shared
        counters (which concurrent resolves of other keys advance)."""
        cache = LayoutCache()
        sentinel = object()
        layout, hit = cache.get_or_build("k", lambda: sentinel)
        assert layout is sentinel and hit is False
        layout, hit = cache.get_or_build("k", lambda: object())
        assert layout is sentinel and hit is True
        assert (cache.hits, cache.misses) == (1, 1)


class TestStaging:
    def test_staged_layout_and_atomicity(self, tmp_path):
        async def go():
            async with Orchestrator(
                PROGRAMS, output_dir=tmp_path, max_workers=1
            ) as orch:
                spec = _solo_spec()
                spec["output"] = {"save": ["values", "document"]}
                handle = await orch.submit(spec)
                return await handle.wait()

        handle = _run(go())
        assert handle.state == JobState.DONE
        files = sorted(p.name for p in handle.staged.iterdir())
        assert files == ["document.json", "meta.json", "result.json"]
        assert not [p for p in handle.staged.iterdir() if p.name.endswith(".tmp")]

    def test_logs_job_stages_into_precreated_dir(self, tmp_path):
        """Regression: a ``"logs"`` job streams per-process log files
        into ``<job_id>/logs/`` *while running*, so the job directory
        already exists when the outcome reaches the stager — staging
        must tolerate that instead of failing the (successful) job."""

        async def go():
            async with Orchestrator(
                PROGRAMS, output_dir=tmp_path, max_workers=1
            ) as orch:
                spec = _solo_spec("logs-job", backend="process", timeout=60.0)
                spec["output"] = {"save": ["values", "logs"]}
                handle = await orch.submit(spec)
                return await handle.wait()

        handle = _run(go())
        assert handle.state == JobState.DONE, handle.error
        assert (handle.staged / "result.json").exists()
        assert list((handle.staged / "logs").iterdir())

    def test_duplicate_job_id_refuses_to_overwrite(self, tmp_path):
        runtime = JobRuntime(PROGRAMS, max_resident=0)
        stager = ResultStager(tmp_path)
        doc = JobDocument.from_spec(_solo_spec())
        outcome = runtime.execute(doc, "dup")
        stager.stage(outcome, doc)
        with pytest.raises(ServiceError, match="already staged"):
            stager.stage(outcome, doc)
        assert stager.read_result("dup")["ok"] is True

    def test_failed_job_still_stages(self, tmp_path):
        async def go():
            async with Orchestrator(PROGRAMS, output_dir=tmp_path) as orch:
                spec = {
                    "name": "boom-staged",
                    "components": [
                        {"name": "crasher", "nprocs": 1, "argv": ["--boom"]}
                    ],
                    "runtime": {"backend": "thread", "timeout": 30.0},
                }
                handle = await orch.submit(spec)
                return await handle.wait()

        handle = _run(go())
        assert handle.state == JobState.FAILED
        # The failed outcome is still a staged, readable artifact.
        result = ResultStager(handle.staged.parent).read_result(handle.job_id)
        assert result["ok"] is False


class TestConcurrencyIsolation:
    def test_concurrent_jobs_are_independent(self):
        """Many concurrent thread-backend jobs through a wide worker
        pool: results must be each job's own (no cross-talk between
        per-job worlds)."""

        async def go():
            async with Orchestrator(PROGRAMS, max_workers=4, max_queued=32) as orch:
                handles = []
                for i in range(8):
                    spec = _solo_spec(f"iso-{i}")
                    spec["components"][0]["argv"] = ["--job", str(i)]
                    handles.append(await orch.submit(spec))
                return [await h.wait() for h in handles]

        handles = _run(go())
        for i, handle in enumerate(handles):
            assert handle.state == JobState.DONE, (handle.state, handle.error)
            assert handle.outcome.values["solo"][0]["argv"] == ["--job", str(i)]

    def test_blocking_runtime_runs_off_the_event_loop(self):
        """While a job runs in a worker thread, the event loop stays
        responsive (submit/introspect don't block behind it)."""

        async def go():
            async with Orchestrator(PROGRAMS, max_workers=1) as orch:
                gate = await orch.submit(_sleep_spec(0.6))
                ticks = 0
                while gate.state != JobState.DONE:
                    orch.counts()  # event loop is alive and serving
                    ticks += 1
                    await asyncio.sleep(0.02)
                return ticks

        assert _run(go()) >= 5


def test_runtime_usable_from_plain_threads():
    """The runtime (not the asyncio front-end) is thread-safe for
    concurrent execute calls — what the orchestrator's to_thread workers
    rely on."""
    runtime = JobRuntime(PROGRAMS, max_resident=0)
    doc = JobDocument.from_spec(_solo_spec())
    results = {}

    def work(tag):
        results[tag] = runtime.execute(doc, f"thread-{tag}")

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert len(results) == 4 and all(o.ok for o in results.values())
