"""Service-level conformance: the same job document produces the same
staged result on every backend.

``result.json`` is the conformance artifact — canonical JSON of the job
name, success flag, failures, and per-component values, with everything
backend-dependent (timings, traffic, warm flag) exiled to sidecar files.
The headline test runs one document on the thread backend, the process
backend over unix sockets, and the process backend over shared memory,
and compares the staged bytes; the parametrized tests ride the repo's
``--mpi-backend``/``--mpi-transport`` matrix.  The autouse session
fixture in ``tests.plugins.backend_select`` additionally asserts no shm
segment outlives the run.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.launcher.job import POOL_PROGRAM
from repro.mpi.shm import list_segments
from repro.service import JobDocument, JobRuntime, ResultStager

from tests.service.conftest import PROGRAMS, coupled_doc


def _run_and_stage(spec: dict, tmp_path, tag: str) -> bytes:
    """Execute *spec* on a fresh runtime, stage it, return the
    ``result.json`` bytes."""
    runtime = JobRuntime(PROGRAMS, max_resident=0)
    stager = ResultStager(tmp_path / tag)
    document = JobDocument.from_spec(spec)
    with runtime:
        outcome = runtime.execute(document, job_id="conf")
    assert outcome.ok, (outcome.error, outcome.failures)
    staged = stager.stage(outcome, document)
    return (staged / "result.json").read_bytes()


class TestCrossBackendBitwise:
    def test_same_document_same_bytes_on_all_three_legs(self, tmp_path):
        """thread == process+unix == process+shm, byte for byte."""
        legs = [
            ("thread", coupled_doc("thread")),
            ("process-unix", coupled_doc("process", transport="unix")),
            ("process-shm", coupled_doc("process", transport="shm")),
        ]
        results = {
            tag: _run_and_stage(spec, tmp_path, tag) for tag, spec in legs
        }
        reference = results["thread"]
        for tag, blob in results.items():
            assert blob == reference, (
                f"{tag} staged different result bytes than the thread backend"
            )
        # And the artifact actually carries the coupled values.
        parsed = json.loads(reference)
        assert parsed["ok"] is True
        assert parsed["components"]["atm"][0]["uptake"] == round(0.9 * 3.7, 6)
        assert not list_segments("repro-mpi-"), "leaked shm segments"

    def test_document_artifact_is_canonical_on_every_leg(self, tmp_path):
        """The staged ``document.json`` replay artifact is the canonical
        serialization — identical for equal submitted documents."""
        spec = coupled_doc("thread")
        document = JobDocument.from_spec(spec)
        runtime = JobRuntime(PROGRAMS, max_resident=0)
        stager = ResultStager(tmp_path)
        with runtime:
            outcome = runtime.execute(document, job_id="doc-art")
        staged = stager.stage(outcome, document)
        text = (staged / "document.json").read_text()
        assert text == document.canonical_json() + "\n"
        assert JobDocument.from_json(text) == document


class TestBackendMatrix:
    """Rides the repo-wide backend matrix (``--mpi-backend``,
    ``--mpi-transport``, ``--mpi-nodes``)."""

    @pytest.fixture
    def matrix_runtime_section(self, mpi_backend, pytestconfig):
        section = {"backend": mpi_backend, "timeout": 60.0}
        if mpi_backend == "process":
            section["transport"] = pytestconfig.getoption("--mpi-transport")
        nodes = pytestconfig.getoption("--mpi-nodes")
        if nodes is not None:
            section["nodes"] = nodes
        return section

    def test_coupled_values_are_exact(self, matrix_runtime_section, tmp_path):
        spec = coupled_doc("thread", co2=3.0)
        spec["runtime"] = matrix_runtime_section
        blob = _run_and_stage(spec, tmp_path, "matrix")
        parsed = json.loads(blob)
        assert parsed["name"] == "conformance-coupled"
        assert parsed["failures"] == []
        # Exact expected physics, independent of backend and transport.
        for rank in range(2):
            forcing = 3.7 * 2.0 + rank
            atm = parsed["components"]["atm"][rank]
            ocn = parsed["components"]["ocn"][rank]
            assert atm == {
                "component": "atm", "rank": rank,
                "forcing": forcing, "uptake": round(0.9 * forcing, 6),
            }
            assert ocn == {
                "component": "ocn", "rank": rank, "uptake": round(0.9 * forcing, 6),
            }

    def test_rank_policy_changes_placement_not_results(
        self, matrix_runtime_section, tmp_path
    ):
        """block vs round_robin placement is invisible in the conformance
        artifact (values are in component-local rank order either way)."""
        blobs = {}
        for policy in ("block", "round_robin"):
            spec = coupled_doc("thread")
            spec["runtime"] = dict(matrix_runtime_section, rank_policy=policy)
            blobs[policy] = _run_and_stage(spec, tmp_path, f"policy-{policy}")
        assert blobs["block"] == blobs["round_robin"]

    def test_single_component_document(self, matrix_runtime_section, tmp_path):
        spec = {
            "name": "solo-job",
            "components": [
                {"name": "solo", "nprocs": 3, "argv": ["--n", "3"]}
            ],
            "runtime": matrix_runtime_section,
        }
        parsed = json.loads(_run_and_stage(spec, tmp_path, "solo"))
        assert parsed["components"]["solo"] == [
            {"component": "solo", "rank": r, "argv": ["--n", "3"]} for r in range(3)
        ]


class TestReservePoolMapping:
    """Regression for the ``mphrun --pool N`` feature (PR 8): a job
    document requesting a reserve pool maps onto real pool ranks."""

    def test_pool_request_maps_onto_pool_ranks(self):
        document = JobDocument.from_spec(
            {
                "name": "pooled",
                "components": [{"name": "atm", "nprocs": 2, "program": "releaser"}],
                "runtime": {"backend": "thread", "pool": 2},
            }
        )
        assert document.world_size == 4
        runtime = JobRuntime(PROGRAMS)
        resolved = runtime.resolve(document)
        label, fn, nprocs, argv = resolved.executables[-1]
        assert label == POOL_PROGRAM and nprocs == 2
        assert resolved.world_size == 4
        # A pool job is never warm-eligible: its reserve ranks park in
        # await_assignment and cannot serve a resident loop.
        assert not runtime._warm_eligible(resolved)

        outcome = runtime.execute_resolved(resolved, "pool-job")
        assert outcome.ok, (outcome.error, outcome.failures)
        assert outcome.pool == [{"pool": "released"}, {"pool": "released"}]
        assert outcome.values["atm"] == [
            {"component": "atm", "released": True} for _ in range(2)
        ]

    def test_pool_rank_admitted_by_grow(self):
        document = JobDocument.from_spec(
            {
                "name": "grown",
                "components": [{"name": "atm", "nprocs": 2, "program": "grower"}],
                "runtime": {"backend": "thread", "pool": 2},
            }
        )
        outcome = JobRuntime(PROGRAMS).execute(document, "grow-job")
        assert outcome.ok, (outcome.error, outcome.failures)
        # One reserve rank was admitted into atm, the other dismissed.
        statuses = sorted(entry["pool"] for entry in outcome.pool)
        assert statuses == ["assigned", "released"]
        assigned = next(e for e in outcome.pool if e["pool"] == "assigned")
        assert list(assigned["components"]) == ["atm"]
        assert outcome.values["atm"] == [
            {"component": "atm", "size": 3} for _ in range(2)
        ]

    def test_pool_is_staged_in_the_conformance_artifact(self, tmp_path):
        document = JobDocument.from_spec(
            {
                "name": "pooled-staged",
                "components": [{"name": "atm", "nprocs": 1, "program": "releaser"}],
                "runtime": {"backend": "thread", "pool": 1},
            }
        )
        runtime = JobRuntime(PROGRAMS)
        outcome = runtime.execute(document, "pool-staged")
        staged = ResultStager(tmp_path).stage(outcome, document)
        parsed = json.loads((staged / "result.json").read_text())
        assert parsed["pool"] == [{"pool": "released"}]


class TestLayoutReuse:
    def test_shared_layout_key_hits_the_cache(self):
        runtime = JobRuntime(PROGRAMS, max_resident=0)
        base = coupled_doc("thread")
        varied = copy.deepcopy(base)
        varied["components"][0]["argv"] = ["--co2", "4.0"]
        varied["components"][1]["argv"] = ["--co2", "4.0"]
        varied["name"] = "same-layout-different-args"
        with runtime:
            first = runtime.execute(JobDocument.from_spec(base), "reuse-a")
            second = runtime.execute(JobDocument.from_spec(varied), "reuse-b")
        assert first.ok and second.ok
        assert runtime.layouts.misses == 1
        assert runtime.layouts.hits == 1
        # The varied args actually took effect through the shared layout.
        assert second.values["atm"][0]["forcing"] == 3.7 * 3.0
