"""Service-level chaos: concurrent jobs, some seeded to crash, one
orchestrator.

The property under test is the service's per-job isolation: a job whose
fault schedule kills a rank fails *alone*.  Every concurrent healthy job
completes with exact values, and the worker pool keeps serving jobs
afterwards.  The suite is sharded on the repo's ``fault_seed`` sweep
fixture (``--mpi-fault-seed=J`` / ``CHAOS_SEED`` replay a shard
bit-for-bit), and every job document carries its own wall-clock timeout
as the hang guard — CI adds pytest-timeout on top, but the suite must
not require it (the package is optional).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.mpi.faults import random_schedule
from repro.service import JobDocument, JobRuntime, Orchestrator

from tests.service.conftest import PROGRAMS

#: Components of every chaos job (world size 4, program ``chaotic``).
_COMPONENTS = [
    {"name": "left", "nprocs": 2, "program": "chaotic"},
    {"name": "right", "nprocs": 2, "program": "chaotic"},
]
_WORLD = sum(c["nprocs"] for c in _COMPONENTS)

#: Expected value of one healthy chaotic rank (CHAOS_OPS barrier loop).
from tests.service.conftest import CHAOS_OPS

_HEALTHY_ACC = sum(range(CHAOS_OPS))


def _chaos_spec(index: int, fault_seed: int | None) -> dict:
    """One chaos job document; *fault_seed* ``None`` means healthy."""
    spec = {
        "name": f"chaos-{index}" + ("-faulty" if fault_seed is not None else ""),
        "components": _COMPONENTS,
        "runtime": {"backend": "thread", "timeout": 30.0},
    }
    if fault_seed is not None:
        # Crash operations are drawn below CHAOS_OPS, so the scheduled
        # rank always dies inside the barrier loop.
        spec["seeds"] = {
            "fault": random_schedule(
                fault_seed, _WORLD, crashes=1, max_op=CHAOS_OPS - 10
            ).to_spec()
        }
    return spec


def _run(coro):
    return asyncio.run(coro)


class TestChaosWave:
    def test_faulty_jobs_fail_alone(self, fault_seed):
        """Six concurrent jobs — indices 1 and 4 carry seeded crash
        schedules — through one orchestrator with three workers."""
        faulty = {1, 4}

        async def wave():
            async with Orchestrator(PROGRAMS, max_workers=3, max_queued=16) as orch:
                handles = [
                    await orch.submit(
                        _chaos_spec(
                            i,
                            (1000 * fault_seed + i) if i in faulty else None,
                        )
                    )
                    for i in range(6)
                ]
                for handle in handles:
                    await handle.wait()

                # After the wave, the same orchestrator must still serve:
                # the crashed worlds were per-job, the workers survive.
                after = await orch.submit(_chaos_spec(99, None))
                await after.wait()
                return handles, after

        handles, after = _run(wave())

        for i, handle in enumerate(handles):
            if i in faulty:
                assert handle.state == "failed", (
                    f"seed {fault_seed}: job {i} should have failed: {handle.state}"
                )
                outcome = handle.outcome
                assert outcome is not None and not outcome.ok
                # Survivors degrade (ULFM idiom), so the failure list is
                # exactly the crashed rank, naming its component.
                schedule = handle.document.seeds.fault
                crashed_rank = schedule["crashes"][0]["rank"]
                crashed_component = "left" if crashed_rank < 2 else "right"
                assert outcome.failed_components() == (crashed_component,), (
                    f"seed {fault_seed}: crash of rank {crashed_rank} "
                    f"({crashed_component}) misnamed: {outcome.failures}"
                )
                assert handle.error and crashed_component in handle.error
            else:
                assert handle.state == "done", (
                    f"seed {fault_seed}: healthy job {i} was collateral damage: "
                    f"{handle.state}: {handle.error}"
                )
                for comp in ("left", "right"):
                    assert handle.outcome.values[comp] == [
                        {"component": comp, "acc": _HEALTHY_ACC},
                        {"component": comp, "acc": _HEALTHY_ACC},
                    ], f"seed {fault_seed}: job {i} values drifted"

        assert after.state == "done", (after.state, after.error)

    def test_failures_list_names_rank_and_exception(self, fault_seed):
        """The outcome's failures carry ``(world_rank, component, exc)``
        with the injected crash identifiable by type name."""
        document = JobDocument.from_spec(_chaos_spec(0, fault_seed + 500))
        with JobRuntime(PROGRAMS) as runtime:
            outcome = runtime.execute(document, f"direct-{fault_seed}")
        assert not outcome.ok
        crashed_rank = document.seeds.fault["crashes"][0]["rank"]
        assert [rank for rank, _, _ in outcome.failures] == [crashed_rank], (
            f"seed {fault_seed}: expected exactly rank {crashed_rank} failed: "
            f"{outcome.failures}"
        )
        exc = outcome.failures[0][2]
        assert type(exc).__name__ == "SimulatedCrash"


class TestResidentWorldChaos:
    """The process-backend analogue: a crashing job poisons only its own
    resident world; the next same-layout job gets a fresh one."""

    @staticmethod
    def _crasher_spec(index: int, boom: bool) -> dict:
        return {
            "name": f"resident-{index}",
            "components": [
                {"name": "atm", "nprocs": 2, "program": "crasher",
                 "argv": ["--boom"] if boom else []},
            ],
            "runtime": {"backend": "process", "timeout": 60.0},
        }

    def test_poisoned_world_is_rebuilt_not_reused(self):
        runtime = JobRuntime(PROGRAMS, max_resident=2)
        with runtime:
            healthy = runtime.execute(
                JobDocument.from_spec(self._crasher_spec(0, False)), "res-0"
            )
            assert healthy.ok, (healthy.error, healthy.failures)

            boom = runtime.execute(
                JobDocument.from_spec(self._crasher_spec(1, True)), "res-1"
            )
            assert not boom.ok
            assert boom.failed_components() == ("atm",)
            assert any("boom from atm" in str(exc) for _, _, exc in boom.failures)

            again = runtime.execute(
                JobDocument.from_spec(self._crasher_spec(2, False)), "res-2"
            )
            assert again.ok, (again.error, again.failures)
        assert runtime.stats["worlds_poisoned"] >= 1
        # The rebuild is visible: more than one world was constructed
        # for a single layout key.
        assert runtime.stats["worlds_built"] >= 2

    def test_concurrent_mixed_wave_on_process_backend(self):
        """Crashing and healthy process-backend jobs concurrently: the
        healthy ones (a different layout) never notice."""

        async def wave():
            async with Orchestrator(PROGRAMS, max_workers=3, max_queued=16) as orch:
                mixed = []
                for i in range(4):
                    boom = i % 2 == 1
                    mixed.append(await orch.submit(self._crasher_spec(i, boom)))
                    solo = {
                        "name": f"solo-{i}",
                        "components": [{"name": "solo", "nprocs": 1}],
                        "runtime": {"backend": "process", "timeout": 60.0},
                    }
                    mixed.append(await orch.submit(solo))
                for handle in mixed:
                    await handle.wait()
                return mixed

        handles = _run(wave())
        for handle in handles:
            if handle.document.name.startswith("solo-"):
                assert handle.state == "done", (handle.state, handle.error)
            elif "--boom" in handle.document.components[0].argv:
                assert handle.state == "failed"
                # Per-rank attribution on the resident path; a fallback
                # to the isolated path can only report the whole-job
                # abort text — either way the error is the job's own.
                outcome = handle.outcome
                named = outcome.failed_components() if outcome else ()
                assert "atm" in named or "boom" in (handle.error or ""), (
                    named, handle.error
                )
            else:
                assert handle.state == "done", (handle.state, handle.error)
