"""Shared test fixtures and helpers.

Most tests run small simulated-MPI jobs; ``spmd`` wraps
:func:`repro.mpi.run_spmd` with a tight default timeout so a regression
that deadlocks fails in seconds, not minutes (the substrate's deadlock
detector usually fires first and reports *what* each rank was blocked on).
"""

from __future__ import annotations

import pytest

from repro.mpi.executor import run_spmd
from repro.mpi.world import WorldConfig


@pytest.fixture
def spmd():
    """Run ``fn(comm)`` on *n* fresh ranks; returns per-rank values."""

    def runner(n, fn, *, config: WorldConfig | None = None, timeout: float = 30.0, **kw):
        return run_spmd(n, fn, config=config, timeout=timeout, **kw)

    return runner


@pytest.fixture(params=["event", "polling"])
def progress_engine(request):
    """Both progress-engine modes, so safety-net tests cover the event
    engine's watchdog and the legacy polling loops alike."""
    return request.param


@pytest.fixture
def fast_deadlock_config(progress_engine):
    """A world config with a short deadlock grace for failure tests,
    parametrized over both progress-engine modes."""
    return WorldConfig(deadlock_grace=0.3, progress_engine=progress_engine)
