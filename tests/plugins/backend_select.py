"""Pytest plugin: parametrize tests over the execution backend.

The conformance suite (``tests/mpi/test_conformance.py``) runs every MPI
semantics case on both the thread and the process backend.  This plugin
provides the knobs:

``--mpi-backend {thread,process,both}``
    Which backend(s) the ``mpi_backend`` fixture yields (default
    ``both``).  CI's backend matrix runs one job per value, so a process
    backend hang can't mask thread results (and vice versa).

``mpi_backend``
    A parametrized fixture naming the backend of the current test.

``backend_config``
    A fresh :class:`~repro.mpi.world.WorldConfig` for that backend.

``backend_spmd``
    ``runner(n, fn, **kw)`` — :func:`repro.mpi.run_spmd` against the
    selected backend with a test-friendly timeout.  Process-backend runs
    get a larger default budget (real fork + socket bootstrap per rank).
"""

from __future__ import annotations

import pytest

from repro.mpi.executor import run_spmd
from repro.mpi.world import WorldConfig

_BACKENDS = ("thread", "process")


def pytest_addoption(parser):
    group = parser.getgroup("mpi-backend")
    group.addoption(
        "--mpi-backend",
        action="store",
        default="both",
        choices=_BACKENDS + ("both",),
        help="execution backend(s) for backend-parametrized tests "
        "(default: both)",
    )


def pytest_generate_tests(metafunc):
    if "mpi_backend" in metafunc.fixturenames:
        choice = metafunc.config.getoption("--mpi-backend")
        backends = _BACKENDS if choice == "both" else (choice,)
        metafunc.parametrize("mpi_backend", backends, indirect=True)


@pytest.fixture
def mpi_backend(request):
    """The execution backend of the current parametrization."""
    return request.param


@pytest.fixture
def backend_config(mpi_backend):
    """A fresh world config for the selected backend."""
    return WorldConfig(backend=mpi_backend)


@pytest.fixture
def backend_spmd(mpi_backend):
    """SPMD runner against the selected backend."""

    def runner(n, fn, *, config=None, timeout=None, **kw):
        if config is None:
            config = WorldConfig(backend=mpi_backend)
        if timeout is None:
            timeout = 60.0 if mpi_backend == "process" else 30.0
        return run_spmd(n, fn, config=config, timeout=timeout, **kw)

    runner.backend = mpi_backend
    return runner
