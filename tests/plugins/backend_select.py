"""Pytest plugin: parametrize tests over the execution backend.

The conformance suite (``tests/mpi/test_conformance.py``) runs every MPI
semantics case on both the thread and the process backend.  This plugin
provides the knobs:

``--mpi-backend {thread,process,both}``
    Which backend(s) the ``mpi_backend`` fixture yields (default
    ``both``).  CI's backend matrix runs one job per value, so a process
    backend hang can't mask thread results (and vice versa).

``--mpi-transport {auto,unix,tcp,shm}``
    Wire transport for process-backend runs (default ``auto``).  CI adds
    a ``process`` + ``shm`` leg so the shared-memory rings and page pool
    face the full conformance and chaos suites, not just their unit
    tests.  Thread-backend parametrizations ignore this (the thread
    transport is the only valid choice there).

``--mpi-nodes N``
    Simulated node count for the world topology (default: unset, one
    node).  With ``N >= 2`` the hierarchical collectives engage and, for
    ``shm``/``auto`` transports, cross-node pairs fall back to sockets.

``mpi_backend``
    A parametrized fixture naming the backend of the current test.

``backend_config``
    A fresh :class:`~repro.mpi.world.WorldConfig` for that backend,
    carrying the transport and node options.

``backend_spmd``
    ``runner(n, fn, **kw)`` — :func:`repro.mpi.run_spmd` against the
    selected backend with a test-friendly timeout.  Process-backend runs
    get a larger default budget (real fork + socket bootstrap per rank).

An autouse session fixture also asserts that no shm segments survive the
run: a leaked ``/dev/shm`` mapping is a correctness bug (the rendezvous
sweep must remove segments on every exit path, crashes included).
"""

from __future__ import annotations

import pytest

from repro.mpi.executor import run_spmd
from repro.mpi.world import WorldConfig

_BACKENDS = ("thread", "process")
_TRANSPORTS = ("auto", "unix", "tcp", "shm")


def pytest_addoption(parser):
    group = parser.getgroup("mpi-backend")
    group.addoption(
        "--mpi-backend",
        action="store",
        default="both",
        choices=_BACKENDS + ("both",),
        help="execution backend(s) for backend-parametrized tests "
        "(default: both)",
    )
    group.addoption(
        "--mpi-transport",
        action="store",
        default="auto",
        choices=_TRANSPORTS,
        help="wire transport for process-backend runs (default: auto)",
    )
    group.addoption(
        "--mpi-nodes",
        action="store",
        type=int,
        default=None,
        help="simulated node count for the world topology "
        "(default: single node)",
    )


def pytest_generate_tests(metafunc):
    if "mpi_backend" in metafunc.fixturenames:
        choice = metafunc.config.getoption("--mpi-backend")
        backends = _BACKENDS if choice == "both" else (choice,)
        metafunc.parametrize("mpi_backend", backends, indirect=True)


def _make_config(mpi_backend, pytestconfig):
    kw = {"backend": mpi_backend}
    if mpi_backend == "process":
        kw["transport"] = pytestconfig.getoption("--mpi-transport")
    nodes = pytestconfig.getoption("--mpi-nodes")
    if nodes is not None:
        kw["nodes"] = nodes
    return WorldConfig(**kw)


@pytest.fixture
def mpi_backend(request):
    """The execution backend of the current parametrization."""
    return request.param


@pytest.fixture
def backend_config(mpi_backend, pytestconfig):
    """A fresh world config for the selected backend."""
    return _make_config(mpi_backend, pytestconfig)


@pytest.fixture
def backend_spmd(mpi_backend, pytestconfig):
    """SPMD runner against the selected backend."""

    def runner(n, fn, *, config=None, timeout=None, **kw):
        if config is None:
            config = _make_config(mpi_backend, pytestconfig)
        if timeout is None:
            timeout = 60.0 if mpi_backend == "process" else 30.0
        return run_spmd(n, fn, config=config, timeout=timeout, **kw)

    runner.backend = mpi_backend
    return runner


@pytest.fixture(autouse=True, scope="session")
def _no_shm_segment_leaks():
    """Every shm segment must be unlinked by the time the session ends.

    Segments are namespaced by the rendezvous directory name (prefix
    ``repro-mpi-``), so concurrent unrelated processes don't trip this.
    """
    from repro.mpi.shm import list_segments

    yield
    leaked = list_segments("repro-mpi-")
    assert not leaked, f"leaked shm segments: {leaked}"
