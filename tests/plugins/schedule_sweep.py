"""Schedule-sweep pytest plugin: run schedule-sensitive tests under many
match-order seeds and print a one-line reproduction command on failure.

Any test that names the ``match_seed`` fixture (directly, or through the
``mpi_world`` runner / ``sweep_config`` factory) is automatically
parametrized over a sweep of :class:`repro.mpi.sched.MatchSchedule`
seeds; any test naming ``fault_seed`` sweeps
:class:`repro.mpi.faults.FaultSchedule` seeds the same way.  Knobs:

``--mpi-schedules=N``
    Sweep width (default 5 seeds).  ``--mpi-schedules=1`` turns a sweep
    into a single deterministic run for quick iteration.
``--mpi-match-seed=K`` / ``--mpi-fault-seed=J``
    Pin the sweep to exactly one seed — what the printed repro command
    uses to replay a failure bit-for-bit.
``--mpi-engine={event,polling}``
    Force one progress-engine mode across the swept runs (CI matrixes
    seeds × engines).
``--mpi-trace-dir=DIR``
    Where failing runs dump their schedule + trace specs (default
    ``.schedule-traces``; CI uploads it as an artifact).

The ``@pytest.mark.schedule_sweep(n)`` marker overrides the sweep width
for one test.  On failure the report gains a ``schedule sweep repro``
section carrying the exact ``PYTHONPATH=src python -m pytest ...
--mpi-match-seed=K`` command (see
:func:`repro.mpi.sched.repro_command`) plus the trace-spec path.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re

import pytest

from repro.mpi.executor import run_spmd
from repro.mpi.sched import MatchSchedule, repro_command
from repro.mpi.world import WorldConfig

#: Default sweep width when neither ``--mpi-schedules`` nor the
#: ``schedule_sweep`` marker says otherwise.
DEFAULT_SWEEP = 5

#: Default fault-seed sweep width (matches the historical chaos matrix).
DEFAULT_FAULT_SWEEP = 5


def pytest_addoption(parser):
    group = parser.getgroup("mpi schedule sweep")
    group.addoption(
        "--mpi-schedules",
        type=int,
        default=None,
        metavar="N",
        help="sweep schedule-sensitive tests over N match seeds "
        f"(default {DEFAULT_SWEEP})",
    )
    group.addoption(
        "--mpi-match-seed",
        type=int,
        default=None,
        metavar="K",
        help="pin the match-schedule sweep to exactly seed K (replay)",
    )
    group.addoption(
        "--mpi-fault-seed",
        type=int,
        default=None,
        metavar="J",
        help="pin the fault-schedule sweep to exactly seed J (replay)",
    )
    group.addoption(
        "--mpi-engine",
        choices=("event", "polling"),
        default=None,
        help="force one progress-engine mode for swept runs",
    )
    group.addoption(
        "--mpi-trace-dir",
        default=".schedule-traces",
        metavar="DIR",
        help="directory for failing-run schedule/trace dumps",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "schedule_sweep(n): sweep this test over n match-schedule seeds "
        "(overrides --mpi-schedules)",
    )


def pytest_generate_tests(metafunc):
    if "match_seed" in metafunc.fixturenames:
        forced = metafunc.config.getoption("--mpi-match-seed")
        if forced is not None:
            seeds = [forced]
        else:
            marker = metafunc.definition.get_closest_marker("schedule_sweep")
            if marker is not None and marker.args:
                n = int(marker.args[0])
            else:
                n = metafunc.config.getoption("--mpi-schedules") or DEFAULT_SWEEP
            seeds = list(range(n))
        metafunc.parametrize(
            "match_seed", seeds, indirect=True, ids=[f"mseed{s}" for s in seeds]
        )
    if "fault_seed" in metafunc.fixturenames:
        forced = metafunc.config.getoption("--mpi-fault-seed")
        if forced is None and os.environ.get("CHAOS_SEED"):
            forced = int(os.environ["CHAOS_SEED"])
        seeds = [forced] if forced is not None else list(range(DEFAULT_FAULT_SWEEP))
        metafunc.parametrize(
            "fault_seed", seeds, indirect=True, ids=[f"fseed{s}" for s in seeds]
        )


@pytest.fixture
def match_seed(request):
    """The match-schedule seed of this swept run (0 when unswept)."""
    seed = getattr(request, "param", 0)
    _sweep_state(request.node)["match_seed"] = seed
    return seed


@pytest.fixture
def fault_seed(request):
    """The fault-schedule seed of this swept run (0 when unswept)."""
    seed = getattr(request, "param", 0)
    _sweep_state(request.node)["fault_seed"] = seed
    return seed


def _sweep_state(node) -> dict:
    state = getattr(node, "_sched_sweep_state", None)
    if state is None:
        state = {"match_seed": None, "fault_seed": None, "schedules": []}
        node._sched_sweep_state = state
    return state


def _armed_config(request, state, config: WorldConfig | None) -> WorldConfig:
    """*config* with a fresh schedule for this run's seed (and the forced
    engine, when ``--mpi-engine`` is set) armed on it."""
    schedule = MatchSchedule(seed=state["match_seed"] or 0)
    state["schedules"].append(schedule)
    fields = {"match_schedule": schedule}
    engine = request.config.getoption("--mpi-engine")
    if engine is not None:
        fields["progress_engine"] = engine
    base = config if config is not None else WorldConfig()
    return dataclasses.replace(base, **fields)


@pytest.fixture
def mpi_world(request, match_seed):
    """Like the ``spmd`` runner, but every run is armed with a fresh
    ``MatchSchedule(seed=match_seed)`` — the swept-test entry point for
    plain SPMD programs.  Two runs inside one test get identical
    schedules (same seed, fresh counters), keeping the whole test a
    function of its seed."""
    state = _sweep_state(request.node)

    def runner(n, fn, *, config: WorldConfig | None = None, timeout: float = 30.0, **kw):
        return run_spmd(
            n, fn, config=_armed_config(request, state, config), timeout=timeout, **kw
        )

    return runner


@pytest.fixture
def sweep_config(request, match_seed):
    """Factory building a ``WorldConfig`` armed for this run's seed, for
    tests that drive ``mph_run``/``run_world`` themselves::

        result = mph_run(jobs, registry=REG, config=sweep_config())
    """
    state = _sweep_state(request.node)

    def factory(config: WorldConfig | None = None) -> WorldConfig:
        return _armed_config(request, state, config)

    return factory


def _trace_path(config, nodeid: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", nodeid).strip("_")
    trace_dir = config.getoption("--mpi-trace-dir")
    os.makedirs(trace_dir, exist_ok=True)
    return os.path.join(trace_dir, f"{safe}.json")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    state = getattr(item, "_sched_sweep_state", None)
    if state is None:
        return
    lines = [
        repro_command(
            item.nodeid,
            match_seed=state["match_seed"],
            fault_seed=state["fault_seed"],
        )
    ]
    if state["schedules"]:
        path = _trace_path(item.config, item.nodeid)
        try:
            with open(path, "w") as fh:
                json.dump(
                    {
                        "nodeid": item.nodeid,
                        "match_seed": state["match_seed"],
                        "fault_seed": state["fault_seed"],
                        "schedules": [s.to_spec() for s in state["schedules"]],
                        "traces": [s.trace().to_spec() for s in state["schedules"]],
                    },
                    fh,
                    indent=1,
                )
        except OSError as exc:  # unwritable trace dir: keep the repro line
            lines.append(f"(trace dump failed: {exc})")
        else:
            lines.append(f"trace spec: {path}")
    report.sections.append(("schedule sweep repro", "\n".join(lines)))
