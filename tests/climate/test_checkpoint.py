"""Checkpoint/restart: restart chains must be bitwise-exact
(repro.climate.checkpoint)."""

import numpy as np
import pytest

from repro.climate import checkpoint
from repro.climate.ccsm import MODEL_KINDS, CCSMConfig, run_ccsm
from repro.climate.components import OceanModel, SeaIceModel
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError
from repro.mpi import run_spmd

GRID = LatLonGrid(8, 12)


class TestComponentRoundtrip:
    def test_save_restore_same_proc_count(self, tmp_path, spmd):
        def run_and_save(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            for _ in range(3):
                m.step(3600.0)
            checkpoint.save(m, tmp_path, "ocean")
            return m.temperature.gather_global(root=0)

        def restore_and_check(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            steps = checkpoint.restore(m, tmp_path, "ocean")
            return (steps, m.temperature.gather_global(root=0))

        saved = spmd(2, run_and_save)[0]
        steps, restored = spmd(2, restore_and_check)[0]
        assert steps == 3
        np.testing.assert_array_equal(saved, restored)

    def test_restart_across_different_proc_counts(self, tmp_path, spmd):
        """A checkpoint written by 2 processes restarts exactly on 4."""

        def save2(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            m.step(3600.0)
            checkpoint.save(m, tmp_path, "ocean")
            return None

        def continue_on(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            checkpoint.restore(m, tmp_path, "ocean")
            m.step(3600.0)
            return m.temperature.gather_global(root=0)

        def straight(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            m.step(3600.0)
            m.step(3600.0)
            return m.temperature.gather_global(root=0)

        spmd(2, save2)
        chained = spmd(4, continue_on)[0]
        reference = spmd(1, straight)[0]
        np.testing.assert_array_equal(chained, reference)

    def test_budget_accumulators_survive(self, tmp_path, spmd):
        def save(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            for _ in range(4):
                m.step(3600.0)
            checkpoint.save(m, tmp_path, "ocean")
            return m.budget.solar_in

        def load(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            checkpoint.restore(m, tmp_path, "ocean")
            return m.budget.solar_in

        assert spmd(2, save)[0] == spmd(2, load)[0]

    def test_seaice_thickness_roundtrip(self, tmp_path, spmd):
        def save(comm):
            m = SeaIceModel(comm, GRID, SeaIceModel.default_params())
            for _ in range(3):
                m.step(3600.0)
            checkpoint.save(m, tmp_path, "ice")
            return m.mean_thickness()

        def load(comm):
            m = SeaIceModel(comm, GRID, SeaIceModel.default_params())
            checkpoint.restore(m, tmp_path, "ice")
            return m.mean_thickness()

        assert spmd(2, save)[0] == spmd(2, load)[0]


class TestRestoreValidation:
    def test_missing_file(self, tmp_path, spmd):
        def load(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            checkpoint.restore(m, tmp_path, "ghost")

        with pytest.raises(ReproError, match="no checkpoint"):
            spmd(1, load)

    def test_kind_mismatch(self, tmp_path, spmd):
        def save(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            checkpoint.save(m, tmp_path, "state")
            return None

        def load_wrong(comm):
            m = SeaIceModel(comm, GRID, SeaIceModel.default_params())
            checkpoint.restore(m, tmp_path, "state")

        spmd(1, save)
        with pytest.raises(ReproError, match="'ocean' component"):
            spmd(1, load_wrong)

    def test_grid_mismatch(self, tmp_path, spmd):
        def save(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            checkpoint.save(m, tmp_path, "state")
            return None

        def load_wrong(comm):
            m = OceanModel(comm, LatLonGrid(4, 6), OceanModel.default_params())
            checkpoint.restore(m, tmp_path, "state")

        spmd(1, save)
        with pytest.raises(ReproError, match="grid"):
            spmd(1, load_wrong)


class TestCoupledRestart:
    def test_chained_run_matches_straight_run(self, tmp_path):
        """The headline: 3+3 steps with a restart equals 6 straight steps,
        bitwise, through the full coupled system."""
        straight = run_ccsm("scme", CCSMConfig(nsteps=6))

        first = CCSMConfig(nsteps=3, checkpoint_dir=str(tmp_path))
        run_ccsm("scme", first)
        second = CCSMConfig(nsteps=3, restart_dir=str(tmp_path))
        chained = run_ccsm("scme", second)

        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                chained[kind]["final_field"], straight[kind]["final_field"]
            )

    def test_restart_crosses_execution_modes(self, tmp_path):
        """Checkpoint under SCME, restart under MCSE: still exact — the
        state format is mode-independent."""
        straight = run_ccsm("scme", CCSMConfig(nsteps=4))
        run_ccsm("scme", CCSMConfig(nsteps=2, checkpoint_dir=str(tmp_path)))
        chained = run_ccsm("mcse", CCSMConfig(nsteps=2, restart_dir=str(tmp_path)))
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                chained[kind]["final_field"], straight[kind]["final_field"]
            )

    def test_steps_counter_continues(self, tmp_path):
        run_ccsm("scme", CCSMConfig(nsteps=2, checkpoint_dir=str(tmp_path)))
        diags = run_ccsm(
            "scme", CCSMConfig(nsteps=1, restart_dir=str(tmp_path), checkpoint_dir=str(tmp_path))
        )
        # Re-saved checkpoint now carries 3 steps.
        with np.load(tmp_path / "ocean.ckpt.npz") as data:
            assert int(data["steps_taken"]) == 3
