"""Grids and decomposition (repro.climate.grid)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.climate.grid import Decomposition, LatLonGrid
from repro.errors import ReproError


class TestLatLonGrid:
    def test_shape_and_cells(self):
        g = LatLonGrid(8, 16)
        assert g.shape == (8, 16)
        assert g.ncells == 128

    def test_lat_edges_span_poles(self):
        g = LatLonGrid(4, 8)
        assert g.lat_edges[0] == -90.0 and g.lat_edges[-1] == 90.0
        assert len(g.lat_edges) == 5

    def test_centers_between_edges(self):
        g = LatLonGrid(6, 12)
        assert np.all(g.lat_centers > g.lat_edges[:-1])
        assert np.all(g.lat_centers < g.lat_edges[1:])
        assert len(g.lon_centers) == 12

    def test_area_weights_sum_to_one(self):
        for nlat, nlon in [(1, 1), (4, 8), (17, 5)]:
            g = LatLonGrid(nlat, nlon)
            assert g.area_weights.sum() == pytest.approx(1.0)

    def test_area_weights_peak_at_equator(self):
        g = LatLonGrid(9, 4)
        band = g.area_weights[:, 0]
        assert band[4] == max(band)  # middle band is equatorial
        assert band[0] == pytest.approx(band[-1])  # symmetric poles

    def test_area_mean_constant_field(self):
        g = LatLonGrid(7, 9)
        assert g.area_mean(np.full(g.shape, 3.5)) == pytest.approx(3.5)

    def test_area_mean_shape_checked(self):
        g = LatLonGrid(4, 4)
        with pytest.raises(ReproError, match="shape"):
            g.area_mean(np.zeros((3, 4)))

    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            LatLonGrid(0, 8)

    def test_equality_by_value(self):
        assert LatLonGrid(4, 8, "a") == LatLonGrid(4, 8, "a")
        assert LatLonGrid(4, 8, "a") != LatLonGrid(4, 8, "b")


class TestDecomposition:
    def test_even_rows(self):
        d = Decomposition(LatLonGrid(8, 4), 4)
        assert [d.rows(r) for r in range(4)] == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_rows_lead(self):
        d = Decomposition(LatLonGrid(10, 4), 3)
        assert [d.nrows(r) for r in range(3)] == [4, 3, 3]

    def test_owner_of_row(self):
        d = Decomposition(LatLonGrid(10, 4), 3)
        assert d.owner_of_row(0) == 0
        assert d.owner_of_row(4) == 1
        assert d.owner_of_row(9) == 2

    def test_local_shape(self):
        d = Decomposition(LatLonGrid(10, 6), 3)
        assert d.local_shape(0) == (4, 6)

    def test_too_many_procs_rejected(self):
        with pytest.raises(ReproError, match="at least one row"):
            Decomposition(LatLonGrid(2, 4), 3)

    def test_rank_bounds(self):
        d = Decomposition(LatLonGrid(4, 4), 2)
        with pytest.raises(ReproError):
            d.rows(2)

    @given(
        nlat=st.integers(1, 40),
        size_frac=st.integers(1, 40),
    )
    def test_partition_property(self, nlat, size_frac):
        size = min(size_frac, nlat)
        d = Decomposition(LatLonGrid(nlat, 3), size)
        spans = [d.rows(r) for r in range(size)]
        assert spans[0][0] == 0 and spans[-1][1] == nlat
        for (a, b), (c, e) in zip(spans, spans[1:]):
            assert b == c
        assert all(b > a for a, b in spans)
