"""The coupled system under seasonal and greenhouse forcing."""

import numpy as np
import pytest

from repro.climate.ccsm import MODEL_KINDS, CCSMConfig, run_ccsm
from repro.climate.diagnostics import energy_report
from repro.climate.forcing import YEAR_SECONDS, CO2Scenario, SeasonalForcing


class TestSeasonallyForcedCoupledRun:
    def test_runs_and_books_close(self):
        cfg = CCSMConfig(nsteps=4, forcing=SeasonalForcing())
        diags = run_ccsm("scme", cfg)
        report = energy_report(diags)
        assert report.relative_unexplained() < 1e-10
        assert diags["coupler"]["max_exchange_residual"] < 1e-10

    def test_forced_differs_from_unforced(self):
        base = run_ccsm("scme", CCSMConfig(nsteps=4))
        # Start a quarter-year in so the declination is at solstice.
        forced_cfg = CCSMConfig(nsteps=4, forcing=SeasonalForcing())
        forced = run_ccsm("scme", forced_cfg)
        assert not np.array_equal(
            base["ocean"]["final_field"], forced["ocean"]["final_field"]
        )

    def test_forced_modes_still_identical(self):
        cfg = CCSMConfig(nsteps=3, forcing=SeasonalForcing(), co2=CO2Scenario(rate_per_year=0.01))
        a = run_ccsm("scme", cfg)
        b = run_ccsm("mcme", cfg)
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(a[kind]["final_field"], b[kind]["final_field"])

    def test_co2_warms_the_coupled_system(self):
        """A strong CO2 ramp warms the atmosphere relative to the control
        over the same window (the coupled analogue of the E4 scenarios)."""
        steps = 30
        dt = 86400.0  # daily steps keep the explicit schemes stable
        base = run_ccsm("scme", CCSMConfig(nsteps=steps, dt=dt))
        ramped = run_ccsm(
            "scme",
            CCSMConfig(nsteps=steps, dt=dt, co2=CO2Scenario(rate_per_year=1.0)),
        )
        base_T = base["atmosphere"]["mean_T"][-1]
        ramp_T = ramped["atmosphere"]["mean_T"][-1]
        assert ramp_T > base_T

    def test_forced_restart_is_exact(self, tmp_path):
        """Checkpoint/restart preserves model time, so the seasonal phase
        continues exactly."""
        forcing = SeasonalForcing()
        dt = YEAR_SECONDS / 73
        straight = run_ccsm("scme", CCSMConfig(nsteps=6, dt=dt, forcing=forcing))
        run_ccsm(
            "scme",
            CCSMConfig(nsteps=3, dt=dt, forcing=forcing, checkpoint_dir=str(tmp_path)),
        )
        chained = run_ccsm(
            "scme",
            CCSMConfig(nsteps=3, dt=dt, forcing=forcing, restart_dir=str(tmp_path)),
        )
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                chained[kind]["final_field"], straight[kind]["final_field"]
            )
