"""CCSM fault tolerance: in-job checkpoint restart and surface drop.

Two recovery modes, mirroring what an MPH coupled system needs on a
machine where ranks can die:

* **in-job restart** — a component raises mid-step, restores its last
  periodic checkpoint, replays the logged fluxes, and the run finishes
  bitwise identical to an uninterrupted one;
* **degradation** — a whole surface component dies fail-stop and the
  coupler drops it, finishing the run over the survivors.
"""

import numpy as np
import pytest

from repro.climate.ccsm import CCSMConfig, run_ccsm
from repro.climate.coupler import FluxCoupler
from repro.climate.grid import LatLonGrid
from repro.errors import ProcessFailedError, ReproError
from repro.mpi import FaultSchedule, WorldConfig

ATM = LatLonGrid(10, 20, "atm")
OCN = LatLonGrid(8, 16, "ocn")
LND = LatLonGrid(5, 10, "lnd")


class TestConfigValidation:
    def test_checkpoint_every_needs_dir(self):
        with pytest.raises(ReproError):
            CCSMConfig(checkpoint_every=2)

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ReproError):
            CCSMConfig(checkpoint_every=-1)

    def test_crash_at_needs_checkpointing(self):
        with pytest.raises(ReproError):
            CCSMConfig(crash_at=("ocean", 3))

    def test_crash_at_needs_p2p_exchange(self, tmp_path):
        with pytest.raises(ReproError):
            CCSMConfig(
                checkpoint_dir=str(tmp_path),
                checkpoint_every=2,
                crash_at=("ocean", 3),
                exchange="join",
            )


class TestCheckpointRestart:
    def _run(self, tmp_path, name, **extra):
        return run_ccsm(
            "scme",
            CCSMConfig(
                nsteps=6,
                coupler_mode="serial",
                exchange="p2p",
                checkpoint_dir=str(tmp_path / name),
                checkpoint_every=2,
                **extra,
            ),
        )

    @pytest.mark.parametrize("victim", ["ocean", "atmosphere", "ice"])
    def test_mid_run_crash_recovers_bitwise(self, tmp_path, victim):
        clean = self._run(tmp_path, "clean")
        crashed = self._run(tmp_path, f"crash-{victim}", crash_at=(victim, 3))
        for kind in ("atmosphere", "ocean", "land", "ice"):
            np.testing.assert_array_equal(
                clean[kind]["final_field"], crashed[kind]["final_field"]
            )
            assert clean[kind]["mean_T"] == crashed[kind]["mean_T"]
            assert clean[kind]["energy"] == crashed[kind]["energy"]

    def test_crash_on_uncheckpointed_step_recovers(self, tmp_path):
        """Crash on a step NOT aligned with checkpoint_every: recovery
        must replay the flux log forward from the last checkpoint."""
        clean = self._run(tmp_path, "clean")
        crashed = self._run(tmp_path, "crash-odd", crash_at=("land", 5))
        for kind in ("atmosphere", "ocean", "land", "ice"):
            assert clean[kind]["mean_T"] == crashed[kind]["mean_T"]

    def test_no_crash_means_no_behavior_change(self, tmp_path):
        """Checkpointing alone must not perturb the physics."""
        plain = run_ccsm(
            "scme", CCSMConfig(nsteps=6, coupler_mode="serial", exchange="p2p")
        )
        ckpt = self._run(tmp_path, "ckpt-only")
        for kind in ("atmosphere", "ocean", "land", "ice"):
            assert plain[kind]["mean_T"] == ckpt[kind]["mean_T"]


class TestDropSurface:
    def _coupler(self):
        return FluxCoupler(ATM, {"ocean": OCN, "land": LND}, {"ocean": 20.0, "land": 15.0})

    def test_drop_removes_the_surface(self):
        c = self._coupler()
        c.drop_surface("land")
        assert sorted(c.surface_grids) == ["ocean"]
        assert sorted(c.coupling_coeff) == ["ocean"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown surface"):
            self._coupler().drop_surface("ice")

    def test_last_surface_cannot_be_dropped(self):
        c = self._coupler()
        c.drop_surface("land")
        with pytest.raises(ReproError):
            c.drop_surface("ocean")


class TestFailStopDegradation:
    def test_dead_land_component_is_dropped(self):
        """Kill both land ranks (world ranks 6-7 under scme's block
        layout) mid-run: the coupler drops the land surface and the
        survivors finish with diagnostics tagged degraded."""
        sched = FaultSchedule(seed=3)
        sched.crash_rank(6, at_op=30)
        sched.crash_rank(7, at_op=30)
        try:
            out = run_ccsm(
                "scme",
                CCSMConfig(nsteps=6),
                config=WorldConfig(fault_schedule=sched),
                timeout=90.0,
            )
        except ProcessFailedError:
            # Acceptable fallback outcome: a peer stalled on land before
            # the coupler could drop it, and the failure surfaced cleanly.
            return
        assert out["coupler"]["dropped_components"] == ["land"]
        assert "degraded" not in out["atmosphere"] or out["atmosphere"]["degraded"]
        # The other components ran to completion.
        for kind in ("atmosphere", "ocean", "ice", "coupler"):
            assert kind in out
