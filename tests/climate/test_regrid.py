"""Conservative regridding (repro.climate.regrid): the coupler's core
numerical guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.climate.grid import LatLonGrid
from repro.climate.regrid import ConservativeRegridder, overlap_matrix, regrid
from repro.errors import ReproError


class TestOverlapMatrix:
    def test_identity_on_same_edges(self):
        edges = np.linspace(0, 1, 5)
        np.testing.assert_allclose(overlap_matrix(edges, edges), np.eye(4), atol=1e-15)

    def test_rows_sum_to_one(self):
        m = overlap_matrix(np.linspace(0, 1, 7), np.linspace(0, 1, 4))
        np.testing.assert_allclose(m.sum(axis=1), 1.0)

    def test_coarsen_averages(self):
        m = overlap_matrix(np.linspace(0, 1, 5), np.linspace(0, 1, 3))
        dst = m @ np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_allclose(dst, [2.0, 6.0])

    def test_refine_is_injection(self):
        m = overlap_matrix(np.linspace(0, 1, 3), np.linspace(0, 1, 5))
        dst = m @ np.array([2.0, 8.0])
        np.testing.assert_allclose(dst, [2.0, 2.0, 8.0, 8.0][:4])

    def test_non_monotone_rejected(self):
        with pytest.raises(ReproError, match="increasing"):
            overlap_matrix(np.array([0.0, 2.0, 1.0]), np.linspace(0, 2, 3))

    def test_mismatched_span_rejected(self):
        with pytest.raises(ReproError, match="span"):
            overlap_matrix(np.linspace(0, 1, 3), np.linspace(0, 2, 3))


class TestConservativeRegridder:
    def test_constant_field_preserved(self):
        r = ConservativeRegridder(LatLonGrid(8, 16), LatLonGrid(5, 7))
        out = r(np.full((8, 16), 4.2))
        np.testing.assert_allclose(out, 4.2)

    def test_shape_checked(self):
        r = ConservativeRegridder(LatLonGrid(8, 16), LatLonGrid(4, 8))
        with pytest.raises(ReproError, match="shape"):
            r(np.zeros((4, 8)))

    def test_roundtrip_coarsen_refine_smooths(self):
        """Coarsen-then-refine is a projection: applying it twice equals
        applying it once."""
        fine, coarse = LatLonGrid(12, 24), LatLonGrid(4, 8)
        down = ConservativeRegridder(fine, coarse)
        up = ConservativeRegridder(coarse, fine)
        rng = np.random.default_rng(3)
        f = rng.normal(size=fine.shape)
        once = up(down(f))
        twice = up(down(once))
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @pytest.mark.parametrize(
        "src_shape,dst_shape",
        [((8, 16), (4, 8)), ((4, 8), (8, 16)), ((6, 12), (9, 7)), ((16, 32), (12, 24))],
    )
    def test_conservation(self, src_shape, dst_shape):
        """The headline property: area integrals are preserved exactly."""
        src, dst = LatLonGrid(*src_shape), LatLonGrid(*dst_shape)
        r = ConservativeRegridder(src, dst)
        rng = np.random.default_rng(11)
        f = rng.normal(loc=280.0, scale=30.0, size=src.shape)
        assert r.conservation_error(f) < 1e-12

    @given(
        nlat_s=st.integers(2, 10),
        nlon_s=st.integers(2, 10),
        nlat_d=st.integers(2, 10),
        nlon_d=st.integers(2, 10),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, nlat_s, nlon_s, nlat_d, nlon_d, seed):
        src, dst = LatLonGrid(nlat_s, nlon_s), LatLonGrid(nlat_d, nlon_d)
        rng = np.random.default_rng(seed)
        f = rng.uniform(-50, 50, size=src.shape)
        r = ConservativeRegridder(src, dst)
        assert r.conservation_error(f) < 1e-10

    @given(
        nlat=st.integers(2, 8),
        nlon=st.integers(2, 8),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_linearity_property(self, nlat, nlon, seed):
        src, dst = LatLonGrid(nlat, nlon), LatLonGrid(5, 5)
        rng = np.random.default_rng(seed)
        f, g = rng.normal(size=(2, *src.shape))
        r = ConservativeRegridder(src, dst)
        np.testing.assert_allclose(r(f + 2.0 * g), r(f) + 2.0 * r(g), atol=1e-10)

    def test_bounds_preserved(self):
        """Conservative piecewise-constant remap cannot overshoot."""
        src, dst = LatLonGrid(10, 10), LatLonGrid(7, 3)
        rng = np.random.default_rng(5)
        f = rng.uniform(250.0, 300.0, size=src.shape)
        out = ConservativeRegridder(src, dst)(f)
        assert out.min() >= f.min() - 1e-9
        assert out.max() <= f.max() + 1e-9


class TestRegridHelper:
    def test_identity_for_equal_grids(self):
        g = LatLonGrid(4, 8, "same")
        f = np.arange(32, dtype=float).reshape(4, 8)
        np.testing.assert_array_equal(regrid(f, g, g), f)

    def test_cached_regridders_reused(self):
        a, b = LatLonGrid(6, 6, "a"), LatLonGrid(3, 3, "b")
        f = np.ones(a.shape)
        first = regrid(f, a, b)
        second = regrid(f, a, b)
        np.testing.assert_array_equal(first, second)
