"""Regional nesting (repro.climate.nesting): grids, interpolation,
boundary relaxation, and the MPH-coupled nest."""

import numpy as np
import pytest

from repro import components_setup, mph_run
from repro.climate.components import AtmosphereModel, PhysicsParams
from repro.climate.grid import LatLonGrid
from repro.climate.nesting import RegionSpec, RegionalGrid, RegionalModel
from repro.errors import ReproError

PARENT = LatLonGrid(12, 24, name="global")
SPEC = RegionSpec(row0=4, row1=8, col0=6, col1=12, refinement=3)


class TestRegionSpec:
    def test_valid(self):
        SPEC.validate(PARENT)

    def test_rows_outside_parent(self):
        with pytest.raises(ReproError, match="rows"):
            RegionSpec(4, 20, 0, 4).validate(PARENT)

    def test_bad_refinement(self):
        with pytest.raises(ReproError, match="refinement"):
            RegionSpec(0, 2, 0, 2, refinement=0).validate(PARENT)


class TestRegionalGrid:
    def test_shape(self):
        r = RegionalGrid(PARENT, SPEC)
        assert r.shape == (12, 18)  # 4 rows x3, 6 cols x3

    def test_edges_align_with_parent(self):
        r = RegionalGrid(PARENT, SPEC)
        # every 3rd regional edge is a parent edge
        np.testing.assert_allclose(r.lat_edges[::3], PARENT.lat_edges[4:9])
        parent_lon_edges = np.arange(6, 13) * (360.0 / 24)
        np.testing.assert_allclose(r.lon_edges[::3], parent_lon_edges)

    def test_centers_inside_region(self):
        r = RegionalGrid(PARENT, SPEC)
        assert r.lat_centers.min() > PARENT.lat_edges[4]
        assert r.lat_centers.max() < PARENT.lat_edges[8]

    def test_area_weights_normalised(self):
        r = RegionalGrid(PARENT, SPEC)
        assert r.area_weights.sum() == pytest.approx(1.0)

    def test_area_mean_constant(self):
        r = RegionalGrid(PARENT, SPEC)
        assert r.area_mean(np.full(r.shape, 5.0)) == pytest.approx(5.0)


class TestParentInterpolation:
    def test_constant_preserved(self):
        r = RegionalGrid(PARENT, SPEC)
        out = r.from_parent(np.full(PARENT.shape, 7.5))
        np.testing.assert_allclose(out, 7.5)

    def test_refinement_is_injection_for_parent_cells(self):
        """Each parent cell's value fills its refinement x refinement
        regional children exactly (piecewise-constant conservative map on
        aligned edges)."""
        r = RegionalGrid(PARENT, SPEC)
        parent = np.arange(PARENT.ncells, dtype=float).reshape(PARENT.shape)
        out = r.from_parent(parent)
        for i in range(4):
            for j in range(6):
                cell = parent[4 + i, 6 + j]
                np.testing.assert_allclose(
                    out[3 * i : 3 * i + 3, 3 * j : 3 * j + 3], cell
                )

    def test_region_mean_conserved(self):
        r = RegionalGrid(PARENT, SPEC)
        rng = np.random.default_rng(9)
        parent = rng.normal(280, 10, PARENT.shape)
        out = r.from_parent(parent)
        # region mean of result equals area-weighted mean of the parent
        # cells covering the region
        sub = parent[4:8, 6:12]
        w = np.sin(np.deg2rad(PARENT.lat_edges[5:9])) - np.sin(np.deg2rad(PARENT.lat_edges[4:8]))
        expect = float((sub * w[:, None]).sum() / (w.sum() * 6))
        assert r.area_mean(out) == pytest.approx(expect, rel=1e-12)

    def test_shape_validated(self):
        r = RegionalGrid(PARENT, SPEC)
        with pytest.raises(ReproError, match="parent field"):
            r.from_parent(np.zeros((2, 2)))


def quiet_params():
    return PhysicsParams(
        heat_capacity=1e7, diffusivity=1e-6, solar_constant=0.0, olr_a=0.0, olr_b=0.0
    )


class TestRegionalModel:
    def test_relaxation_mask_shape(self, spmd):
        def main(comm):
            m = RegionalModel(comm, RegionalGrid(PARENT, SPEC), quiet_params(), relax_width=2)
            mask = m.relaxation_mask()
            return (mask.shape == m.data.shape, float(mask.max()), mask.min() >= 0.0)

        values = spmd(3, main)
        assert all(v[0] and v[2] for v in values)
        # some rank owns an outermost ring cell with strength 1
        assert max(v[1] for v in values) == 1.0

    def test_interior_unrelaxed(self, spmd):
        def main(comm):
            m = RegionalModel(comm, RegionalGrid(PARENT, SPEC), quiet_params(), relax_width=2)
            mask = m.relaxation_mask()
            start, stop = m.rows_range
            interior = [
                mask[i - start, 9]
                for i in range(max(start, 5), min(stop, 7))
            ]
            return interior

        values = [x for v in spmd(2, main) for x in v]
        assert all(x == 0.0 for x in values)

    def test_boundary_pins_to_frame(self, spmd):
        """With full relaxation, the boundary ring equals the frame after
        one step (quiet physics)."""

        def main(comm):
            rgrid = RegionalGrid(PARENT, SPEC)
            m = RegionalModel(comm, rgrid, quiet_params(), relax_width=1, relax_rate=1.0)
            frame = np.full(rgrid.shape, 300.0)
            m.set_frame(frame if comm.rank == 0 else None)
            m.step(10.0)
            full = m.gather_global()
            if comm.rank == 0:
                edge = np.concatenate([full[0], full[-1], full[:, 0], full[:, -1]])
                return (np.allclose(edge, 300.0), abs(full[5, 9] - 300.0) > 1.0)
            return None

        pinned, interior_free = spmd(2, main)[0]
        assert pinned and interior_free

    def test_decomposition_independence(self, spmd):
        def main(comm):
            rgrid = RegionalGrid(PARENT, SPEC)
            m = RegionalModel(
                comm,
                rgrid,
                quiet_params(),
                t_init=lambda la, lo: 280.0 + la + 0.1 * lo,
            )
            m.set_frame(np.full(rgrid.shape, 290.0) if comm.rank == 0 else None)
            for _ in range(4):
                m.step(3600.0)
            return m.gather_global()

        reference = spmd(1, main)[0]
        for n in (2, 4):
            np.testing.assert_array_equal(spmd(n, main)[0], reference)

    def test_validation(self, spmd):
        def too_many(comm):
            RegionalModel(comm, RegionalGrid(PARENT, RegionSpec(0, 1, 0, 1, 2)), quiet_params())

        with pytest.raises(ReproError, match="decompose"):
            spmd(3, too_many)


class TestNestedCoupling:
    """The full WRF/MM5 pattern: a global model drives the nest over MPH."""

    REG = "BEGIN\nglobal_atm\nnest\nEND"

    def run_nested(self, nsteps=4, substeps=3):
        spec = SPEC

        def global_atm(world, env):
            mph = components_setup(world, "global_atm", env=env)
            model = AtmosphereModel(
                mph.component_comm(), PARENT, AtmosphereModel.default_params()
            )
            for step in range(nsteps):
                model.step(3600.0)
                full = model.temperature.gather_global(root=0)
                if mph.local_proc_id() == 0:
                    mph.send((step, full), "nest", 0, tag=61)
            return model.mean_temperature()

        def nest(world, env):
            mph = components_setup(world, "nest", env=env)
            comm = mph.component_comm()
            rgrid = RegionalGrid(PARENT, spec)
            model = RegionalModel(
                comm,
                rgrid,
                AtmosphereModel.default_params(),
                relax_width=2,
                relax_rate=0.3,
                t_init=lambda la, lo: np.full_like(la, 288.0),
            )
            means = []
            for step in range(nsteps):
                frame = None
                if comm.rank == 0:
                    got_step, parent_full = mph.recv("global_atm", 0, tag=61)
                    assert got_step == step
                    frame = rgrid.from_parent(parent_full)
                model.set_frame(frame)
                for _ in range(substeps):  # finer time step in the nest
                    model.step(3600.0 / substeps)
                means.append(model.mean_temperature())
            return means

        return mph_run([(global_atm, 2), (nest, 2)], registry=self.REG)

    def test_nest_runs_and_tracks_parent(self):
        result = self.run_nested()
        nest_means = result.by_executable(1)[0]
        assert len(nest_means) == 4
        # The nest starts at 288 K and is pulled toward the (warmer)
        # parent region by the boundary forcing.
        assert nest_means[-1] > nest_means[0]

    def test_one_way_nesting_leaves_parent_untouched(self):
        """The global model's result is identical with or without a nest
        attached (one-way coupling)."""

        def solo(world, env):
            mph = components_setup(world, "global_atm", env=env)
            model = AtmosphereModel(
                mph.component_comm(), PARENT, AtmosphereModel.default_params()
            )
            for _ in range(4):
                model.step(3600.0)
            return model.mean_temperature()

        nested = self.run_nested()
        solo_result = mph_run([(solo, 2)], registry="BEGIN\nglobal_atm\nEND")
        assert nested.by_executable(0)[0] == solo_result.values()[0]
