"""E11: the assembled coupled system — identical physics in every mode,
conservation, and both exchange transports."""

import numpy as np
import pytest

from repro.climate.ccsm import (
    MODEL_KINDS,
    CCSMConfig,
    build_executables,
    build_registry,
    run_ccsm,
    total_energy_series,
)
from repro.climate.diagnostics import energy_report
from repro.errors import ReproError

FAST = dict(nsteps=3)


@pytest.fixture(scope="module")
def scme_reference():
    """One SCME run shared by the equivalence tests."""
    return run_ccsm("scme", CCSMConfig(**FAST))


class TestBasicRun:
    def test_all_components_report(self, scme_reference):
        assert set(scme_reference) == set(MODEL_KINDS) | {"coupler"}

    def test_histories_have_initial_state(self, scme_reference):
        for kind in MODEL_KINDS:
            assert len(scme_reference[kind]["mean_T"]) == FAST["nsteps"] + 1

    def test_final_fields_present(self, scme_reference):
        for kind in MODEL_KINDS:
            shape = CCSMConfig().shapes[kind]
            assert scme_reference[kind]["final_field"].shape == shape

    def test_temperatures_physical(self, scme_reference):
        for kind in MODEL_KINDS:
            series = np.array(scme_reference[kind]["mean_T"])
            assert np.all(series > 150.0) and np.all(series < 350.0)

    def test_exchange_residual_roundoff(self, scme_reference):
        assert scme_reference["coupler"]["max_exchange_residual"] < 1e-10

    def test_ice_thickness_tracked(self, scme_reference):
        assert len(scme_reference["ice"]["mean_thickness"]) == FAST["nsteps"] + 1


class TestModeEquivalence:
    @pytest.mark.parametrize("mode", ["mcse", "mcme"])
    def test_identical_physics(self, scme_reference, mode):
        diags = run_ccsm(mode, CCSMConfig(**FAST))
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                diags[kind]["final_field"], scme_reference[kind]["final_field"]
            )
            assert diags[kind]["mean_T"] == scme_reference[kind]["mean_T"]

    def test_overlap_mode_identical(self, scme_reference):
        cfg = CCSMConfig(**FAST)
        cfg = CCSMConfig(nsteps=FAST["nsteps"], procs=dict(cfg.procs, land=cfg.procs["atmosphere"]))
        diags = run_ccsm("mcme_overlap", cfg)
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                diags[kind]["final_field"], scme_reference[kind]["final_field"]
            )

    def test_join_exchange_identical(self, scme_reference):
        diags = run_ccsm("scme", CCSMConfig(nsteps=FAST["nsteps"], exchange="join"))
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                diags[kind]["final_field"], scme_reference[kind]["final_field"]
            )

    def test_different_proc_counts_identical(self, scme_reference):
        """Decomposition independence: more processes, same bits."""
        cfg = CCSMConfig(
            nsteps=FAST["nsteps"],
            procs={"atmosphere": 8, "ocean": 4, "land": 4, "ice": 2, "coupler": 1},
        )
        diags = run_ccsm("scme", cfg)
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                diags[kind]["final_field"], scme_reference[kind]["final_field"]
            )


class TestConservation:
    def test_closed_system_conserves_energy(self):
        diags = run_ccsm("scme", CCSMConfig.conservation(nsteps=6))
        energy = total_energy_series(diags)
        drift = abs(energy[-1] - energy[0]) / abs(energy[0])
        assert drift < 1e-12

    def test_energy_report_closes(self):
        diags = run_ccsm("scme", CCSMConfig(nsteps=4))
        report = energy_report(diags)
        assert report.relative_unexplained() < 1e-10
        assert report.coupler_residual < 1e-10

    def test_budget_terms_signs(self):
        diags = run_ccsm("scme", CCSMConfig(nsteps=4))
        report = energy_report(diags)
        assert report.solar_in > 0
        assert report.olr_out > 0


class TestScseStandalone:
    def test_standalone_atmosphere_runs(self):
        diags = run_ccsm("scse", CCSMConfig(nsteps=3))
        assert set(diags) == {"atmosphere"}
        assert len(diags["atmosphere"]["mean_T"]) == 4

    def test_standalone_has_zero_coupling(self):
        diags = run_ccsm("scse", CCSMConfig(nsteps=3))
        assert diags["atmosphere"]["budget"]["coupling_in"] == 0.0


class TestBuilders:
    def test_registry_modes(self):
        cfg = CCSMConfig()
        for mode in ("scse", "scme", "mcse", "mcme"):
            reg = build_registry(cfg, mode)
            assert reg.total_components >= 1

    def test_executable_counts(self):
        cfg = CCSMConfig()
        assert len(build_executables(cfg, "scme")) == 5
        assert len(build_executables(cfg, "mcse")) == 1
        assert len(build_executables(cfg, "mcme")) == 3

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown mode"):
            build_registry(CCSMConfig(), "hybrid")
        with pytest.raises(ReproError, match="unknown mode"):
            build_executables(CCSMConfig(), "hybrid")

    def test_overlap_requires_equal_procs(self):
        with pytest.raises(ReproError, match="procs"):
            build_registry(CCSMConfig(), "mcme_overlap")

    def test_bad_exchange_rejected(self):
        with pytest.raises(ReproError, match="exchange"):
            CCSMConfig(exchange="smoke-signals")


class TestArbitraryNames:
    def test_renamed_components(self):
        """Paper §3(a): component names evolve (CCM -> CAM); nothing is
        hardwired."""
        cfg = CCSMConfig(
            nsteps=2,
            names={
                "atmosphere": "CAM",
                "ocean": "POP",
                "land": "CLM",
                "ice": "CSIM",
                "coupler": "cpl6",
            },
        )
        diags = run_ccsm("scme", cfg)
        assert diags["atmosphere"]["name"] == "CAM"
        assert diags["coupler"]["name"] == "cpl6"

    def test_renamed_run_matches_default_names(self):
        base = run_ccsm("scme", CCSMConfig(nsteps=2))
        renamed = run_ccsm(
            "scme",
            CCSMConfig(
                nsteps=2,
                names={
                    "atmosphere": "NCAR_atm",
                    "ocean": "o",
                    "land": "l",
                    "ice": "i",
                    "coupler": "c",
                },
            ),
        )
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                base[kind]["final_field"], renamed[kind]["final_field"]
            )


class TestProtocolErrors:
    def test_total_energy_requires_models(self):
        with pytest.raises(ReproError):
            total_energy_series({"coupler": {"energy": []}})
