"""Energy-report arithmetic (repro.climate.diagnostics) as a unit."""

import numpy as np
import pytest

from repro.climate.diagnostics import EnergyReport, energy_report
from repro.errors import ReproError


def make_report(**overrides):
    defaults = dict(
        total_energy=np.array([100.0, 102.0, 104.0]),
        net_coupling=0.0,
        coupler_residual=0.0,
        solar_in=10.0,
        olr_out=6.0,
        diffusion_residual=0.0,
    )
    defaults.update(overrides)
    return EnergyReport(**defaults)


class TestEnergyReport:
    def test_drift(self):
        assert make_report().drift == pytest.approx(4.0)

    def test_unexplained_zero_when_books_balance(self):
        assert make_report().unexplained == pytest.approx(0.0)

    def test_unexplained_flags_leak(self):
        r = make_report(total_energy=np.array([100.0, 105.0]))
        assert r.unexplained == pytest.approx(1.0)

    def test_relative_unexplained_scales_by_throughput(self):
        r = make_report(total_energy=np.array([100.0, 105.0]))
        assert r.relative_unexplained() == pytest.approx(1.0 / 16.0)

    def test_coupling_counts_toward_explained(self):
        r = make_report(
            total_energy=np.array([100.0, 107.0]), net_coupling=3.0
        )
        assert r.unexplained == pytest.approx(0.0)

    def test_diffusion_residual_counts(self):
        r = make_report(
            total_energy=np.array([100.0, 104.5]), diffusion_residual=0.5
        )
        assert r.unexplained == pytest.approx(0.0)


class TestEnergyReportAssembly:
    def make_diags(self):
        def comp(solar, olr, coupling, energy):
            return {
                "budget": {
                    "solar_in": solar,
                    "olr_out": olr,
                    "coupling_in": coupling,
                    "diffusion_residual": 0.0,
                },
                "energy": energy,
            }

        return {
            "atmosphere": comp(0.0, 5.0, 2.0, [50.0, 49.0]),
            "ocean": comp(8.0, 0.0, -2.0, [70.0, 74.0]),
            "coupler": {"exchange_residual": [1e-13, -2e-13]},
        }

    def test_terms_summed_over_models(self):
        report = energy_report(self.make_diags())
        assert report.solar_in == 8.0
        assert report.olr_out == 5.0
        assert report.net_coupling == 0.0
        np.testing.assert_array_equal(report.total_energy, [120.0, 123.0])

    def test_coupler_residual_absolute_sum(self):
        report = energy_report(self.make_diags())
        assert report.coupler_residual == pytest.approx(3e-13)

    def test_books_close_for_consistent_diags(self):
        report = energy_report(self.make_diags())
        assert report.unexplained == pytest.approx(0.0)

    def test_requires_model_components(self):
        with pytest.raises(ReproError, match="no model components"):
            energy_report({"coupler": {"exchange_residual": []}})

    def test_works_without_coupler_entry(self):
        diags = self.make_diags()
        del diags["coupler"]
        assert energy_report(diags).coupler_residual == 0.0
