"""The flux coupler's numerics: fractions, fluxes, conservation
(repro.climate.coupler)."""

import numpy as np
import pytest

from repro.climate.coupler import FluxCoupler, SurfaceFractions
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError

ATM = LatLonGrid(10, 20, "atm")
OCN = LatLonGrid(8, 16, "ocn")
LND = LatLonGrid(5, 10, "lnd")


class TestSurfaceFractions:
    def test_fractions_sum_to_one(self):
        f = SurfaceFractions.build(ATM)
        np.testing.assert_allclose(f.ocean + f.land + f.ice, 1.0, atol=1e-12)

    def test_fractions_in_unit_interval(self):
        f = SurfaceFractions.build(ATM)
        for field in (f.ocean, f.land, f.ice):
            assert field.min() >= 0.0 and field.max() <= 1.0

    def test_ice_concentrated_at_poles(self):
        f = SurfaceFractions.build(LatLonGrid(19, 4))
        assert f.ice[0].mean() > 0.8  # south pole band
        assert f.ice[9].mean() < 0.05  # equator band

    def test_deterministic(self):
        a, b = SurfaceFractions.build(ATM), SurfaceFractions.build(ATM)
        np.testing.assert_array_equal(a.land, b.land)

    def test_of_accessor(self):
        f = SurfaceFractions.build(ATM)
        assert f.of("ocean") is f.ocean
        with pytest.raises(ReproError, match="unknown surface"):
            f.of("swamp")


def make_coupler(**kw):
    return FluxCoupler(
        ATM,
        {"ocean": OCN, "land": LND},
        {"ocean": 15.0, "land": 10.0},
        **kw,
    )


class TestFluxComputation:
    def test_equilibrium_no_flux(self):
        """Identical temperatures everywhere -> zero exchange."""
        cpl = make_coupler()
        atm_flux, sfc = cpl.compute_fluxes(
            np.full(ATM.shape, 288.0),
            {"ocean": np.full(OCN.shape, 288.0), "land": np.full(LND.shape, 288.0)},
        )
        np.testing.assert_allclose(atm_flux, 0.0, atol=1e-10)
        np.testing.assert_allclose(sfc["ocean"], 0.0, atol=1e-10)

    def test_warm_surface_heats_atmosphere(self):
        cpl = make_coupler()
        atm_flux, sfc = cpl.compute_fluxes(
            np.full(ATM.shape, 280.0),
            {"ocean": np.full(OCN.shape, 290.0), "land": np.full(LND.shape, 290.0)},
        )
        assert ATM.area_integral(atm_flux) > 0.0
        assert OCN.area_integral(sfc["ocean"]) < 0.0

    def test_energy_balance_exact(self):
        """What the atmosphere gains the surfaces lose (E11 heart)."""
        rng = np.random.default_rng(4)
        cpl = make_coupler()
        atm_flux, sfc = cpl.compute_fluxes(
            rng.normal(285, 5, ATM.shape),
            {"ocean": rng.normal(288, 3, OCN.shape), "land": rng.normal(282, 8, LND.shape)},
        )
        total = (
            ATM.area_integral(atm_flux)
            + OCN.area_integral(sfc["ocean"])
            + LND.area_integral(sfc["land"])
        )
        assert abs(total) < 1e-10

    def test_residual_tracked_per_step(self):
        cpl = make_coupler()
        for _ in range(3):
            cpl.compute_fluxes(
                np.full(ATM.shape, 280.0), {"ocean": np.full(OCN.shape, 285.0), "land": np.full(LND.shape, 281.0)}
            )
        assert len(cpl.exchange_residual) == 3
        assert cpl.max_residual() < 1e-10

    def test_coefficient_scales_flux(self):
        strong = FluxCoupler(ATM, {"ocean": OCN}, {"ocean": 30.0})
        weak = FluxCoupler(ATM, {"ocean": OCN}, {"ocean": 15.0})
        atm_t = np.full(ATM.shape, 280.0)
        ocn_t = {"ocean": np.full(OCN.shape, 290.0)}
        f_strong, _ = strong.compute_fluxes(atm_t, ocn_t)
        f_weak, _ = weak.compute_fluxes(atm_t, ocn_t)
        np.testing.assert_allclose(f_strong, 2.0 * f_weak, atol=1e-10)

    def test_missing_coefficient_rejected(self):
        with pytest.raises(ReproError, match="coefficient"):
            FluxCoupler(ATM, {"ocean": OCN}, {})

    def test_bad_atm_shape_rejected(self):
        cpl = make_coupler()
        with pytest.raises(ReproError, match="shape"):
            cpl.compute_fluxes(np.zeros((2, 2)), {"ocean": np.zeros(OCN.shape), "land": np.zeros(LND.shape)})

    def test_fraction_weighting(self):
        """A surface's flux reaching the atmosphere is weighted by its
        area fraction: an all-ice-free equator band cares little about
        ice temperature anomalies."""
        cpl = FluxCoupler(ATM, {"ice": OCN}, {"ice": 10.0})
        atm_t = np.full(ATM.shape, 280.0)
        _, _ = 0, 0
        atm_flux, _ = cpl.compute_fluxes(atm_t, {"ice": np.full(OCN.shape, 300.0)})
        equator_row = ATM.nlat // 2
        pole_row = 0
        assert abs(atm_flux[equator_row].mean()) < abs(atm_flux[pole_row].mean())
