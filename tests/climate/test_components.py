"""Component models: physics sanity and decomposition independence
(repro.climate.components)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.climate.components import (
    AtmosphereModel,
    LandModel,
    OceanModel,
    PhysicsParams,
    SeaIceModel,
    insolation,
)
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError

GRID = LatLonGrid(8, 12)


class TestPhysicsParams:
    def test_defaults_valid(self):
        for cls in (AtmosphereModel, OceanModel, LandModel, SeaIceModel):
            cls.default_params().validate()

    def test_negative_heat_capacity_rejected(self):
        with pytest.raises(ReproError, match="heat_capacity"):
            PhysicsParams(heat_capacity=-1.0).validate()

    def test_albedo_range(self):
        with pytest.raises(ReproError, match="albedo"):
            PhysicsParams(albedo=1.5).validate()

    def test_negative_diffusivity_rejected(self):
        with pytest.raises(ReproError, match="diffusivity"):
            PhysicsParams(diffusivity=-1e-6).validate()


class TestInsolation:
    def test_equator_exceeds_poles(self):
        lat = np.array([-90.0, 0.0, 90.0])
        q = insolation(lat, 1361.0)
        assert q[1] > q[0] and q[1] > q[2]

    def test_hemispheric_symmetry(self):
        q = insolation(np.array([-45.0, 45.0]), 1361.0)
        assert q[0] == pytest.approx(q[1])

    def test_global_mean_is_quarter_solar_constant(self):
        g = LatLonGrid(64, 2)
        q = insolation(g.lat_centers, 1361.0)
        mean = float((q[:, None] * g.area_weights * g.nlon).sum()) / g.nlon * g.nlon
        mean = float((np.repeat(q[:, None], g.nlon, axis=1) * g.area_weights).sum())
        assert mean == pytest.approx(1361.0 / 4.0, rel=1e-3)


class TestStepping:
    def test_radiative_cooling_without_sun(self, spmd):
        params = replace(
            AtmosphereModel.default_params(), diffusivity=0.0, olr_a=200.0, olr_b=0.0
        )

        def main(comm):
            m = AtmosphereModel(comm, GRID, params)
            before = m.mean_temperature()
            m.step(3600.0)
            return m.mean_temperature() - before

        delta = spmd(2, main)[0]
        assert delta == pytest.approx(-200.0 * 3600.0 / params.heat_capacity)

    def test_solar_heating_raises_temperature(self, spmd):
        params = replace(
            OceanModel.default_params(), diffusivity=0.0, olr_a=0.0, olr_b=0.0
        )

        def main(comm):
            m = OceanModel(comm, GRID, params)
            before = m.mean_temperature()
            m.step(3600.0)
            return m.mean_temperature() - before

        assert spmd(2, main)[0] > 0.0

    def test_coupling_flux_applied(self, spmd):
        params = replace(
            LandModel.default_params(), solar_constant=0.0, olr_a=0.0, olr_b=0.0
        )

        def main(comm):
            m = LandModel(comm, GRID, params)
            before = m.mean_temperature()
            flux = np.full(m.temperature.data.shape, 100.0)  # uniform warming
            m.step(1000.0, flux)
            return m.mean_temperature() - before

        expected = 100.0 * 1000.0 / params.heat_capacity
        assert spmd(2, main)[0] == pytest.approx(expected)

    def test_flux_shape_validated(self, spmd):
        def main(comm):
            m = LandModel(comm, GRID, LandModel.default_params())
            m.step(10.0, np.zeros((1, 1)))

        with pytest.raises(ReproError, match="flux shape"):
            spmd(2, main)

    def test_diffusion_smooths_checkerboard(self, spmd):
        params = replace(
            AtmosphereModel.default_params(), diffusivity=2e-6, olr_a=0.0, olr_b=0.0
        )

        def main(comm):
            def checkerboard(lat, lon):
                return 280.0 + 10.0 * np.sign(np.sin(np.deg2rad(lon * 6)))

            m = AtmosphereModel(comm, GRID, params, t_init=checkerboard)
            before = m.temperature.gather_global()  # collective: all ranks call
            for _ in range(50):
                m.step(3600.0)
            after = m.temperature.gather_global()
            if comm.rank == 0:
                return (float(np.var(before)), float(np.var(after)))
            return None

        before, after = spmd(2, main)[0]
        assert after < before

    def test_budget_accumulates(self, spmd):
        def main(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params())
            for _ in range(3):
                m.step(3600.0)
            return (m.steps_taken, m.budget.solar_in > 0)

        assert spmd(2, main)[0] == (3, True)

    def test_energy_budget_closes_per_component(self, spmd):
        """dE == solar - olr + coupling + diffusion_residual, to round-off."""
        params = replace(OceanModel.default_params(), diffusivity=5e-7, olr_a=5.0, olr_b=1.0)

        def main(comm):
            m = OceanModel(comm, GRID, params)
            e0 = m.energy()
            rng_flux = np.full(m.temperature.data.shape, 12.5)
            for _ in range(10):
                m.step(3600.0, rng_flux)
            drift = m.energy() - e0
            explained = (
                m.budget.solar_in
                - m.budget.olr_out
                + m.budget.coupling_in
                + m.budget.diffusion_residual
            )
            return abs(drift - explained) / max(abs(drift), 1.0)

        assert spmd(4, main)[0] < 1e-9


class TestDecompositionIndependence:
    @pytest.mark.parametrize("cls", [AtmosphereModel, OceanModel, LandModel, SeaIceModel])
    def test_bitwise_same_across_proc_counts(self, spmd, cls):
        def main(comm):
            m = cls(comm, GRID, cls.default_params())
            for _ in range(5):
                m.step(3600.0)
            return m.temperature.gather_global()

        serial = spmd(1, main)[0]
        for n in (2, 4):
            parallel = spmd(n, main)[0]
            np.testing.assert_array_equal(serial, parallel)


class TestSeaIce:
    def test_thickness_grows_when_cold(self, spmd):
        params = replace(
            SeaIceModel.default_params(), solar_constant=0.0, olr_a=0.0, olr_b=0.0
        )

        def main(comm):
            m = SeaIceModel(
                comm, GRID, params, t_init=lambda la, lo: 0 * la + 250.0
            )  # well below freezing
            h0 = m.mean_thickness()
            for _ in range(5):
                m.step(3600.0)
            return m.mean_thickness() - h0

        assert spmd(2, main)[0] > 0.0

    def test_thickness_never_negative(self, spmd):
        def main(comm):
            m = SeaIceModel(
                comm, GRID, SeaIceModel.default_params(), t_init=lambda la, lo: 0 * la + 400.0
            )
            m.thickness[:] = 1e-9
            for _ in range(10):
                m.step(3600.0)
            return float(m.thickness.min())

        assert spmd(2, main)[0] >= 0.0

    def test_atmosphere_absorbs_no_solar(self, spmd):
        def main(comm):
            m = AtmosphereModel(comm, GRID, AtmosphereModel.default_params())
            return float(np.abs(m.absorbed_solar()).max())

        assert spmd(1, main) == [0.0]
