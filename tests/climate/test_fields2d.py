"""2-D decomposed fields and models (repro.climate.fields2d)."""

import numpy as np
import pytest

from repro.climate.components import AtmosphereModel, OceanModel, SeaIceModel
from repro.climate.fields import DistributedField
from repro.climate.fields2d import DistributedField2D
from repro.climate.grid import LatLonGrid
from repro.climate import checkpoint
from repro.errors import ReproError

GRID = LatLonGrid(8, 12, name="g2")


def smooth(lat, lon):
    return 280.0 + np.sin(np.deg2rad(lat)) * 10.0 + np.cos(np.deg2rad(2 * lon)) * 5.0


class TestConstruction:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_blocks_partition_grid(self, spmd, n):
        def main(comm):
            f = DistributedField2D(comm, GRID)
            rs, cs = f.local_slices
            return (rs.start, rs.stop, cs.start, cs.stop)

        values = spmd(n, main)
        covered = np.zeros(GRID.shape, dtype=int)
        for r0, r1, c0, c1 in values:
            covered[r0:r1, c0:c1] += 1
        assert np.all(covered == 1)  # exact partition, no overlap, no gaps

    def test_from_function_matches_1d(self, spmd):
        def main2d(comm):
            return DistributedField2D.from_function(comm, GRID, smooth).gather_global()

        def main1d(comm):
            return DistributedField.from_function(comm, GRID, smooth).gather_global()

        full2d = spmd(4, main2d)[0]
        full1d = spmd(2, main1d)[0]
        np.testing.assert_array_equal(full2d, full1d)

    def test_bad_local_shape(self, spmd):
        def main(comm):
            DistributedField2D(comm, GRID, data=np.zeros((1, 1)))

        with pytest.raises(ReproError, match="local block shape"):
            spmd(4, main)

    def test_too_many_procs(self, spmd):
        tiny = LatLonGrid(2, 2)

        def main(comm):
            DistributedField2D(comm, tiny)

        with pytest.raises(ReproError, match="process grid"):
            spmd(9, main)


class TestHalosAndStencil:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_laplacian_matches_1d_bitwise(self, spmd, n):
        def main2d(comm):
            f = DistributedField2D.from_function(comm, GRID, smooth)
            lap = f.laplacian()
            out = DistributedField2D(f.cart, GRID, data=lap)
            return out.gather_global()

        def serial(comm):
            f = DistributedField.from_function(comm, GRID, smooth)
            return DistributedField(comm, GRID, data=f.laplacian()).gather_global()

        reference = spmd(1, serial)[0]
        np.testing.assert_array_equal(spmd(n, main2d)[0], reference)

    def test_periodic_longitude_wrap(self, spmd):
        """East halo of the last column block is the first column block."""

        def main(comm):
            f = DistributedField2D.from_function(comm, GRID, lambda la, lo: lo)
            north, south, east, west = f.exchange_halos()
            rs, cs = f.local_slices
            expect_east = GRID.lon_centers[(cs.stop) % GRID.nlon]
            return np.allclose(east, expect_east)

        assert all(spmd(4, main))

    def test_pole_rows_replicate(self, spmd):
        def main(comm):
            f = DistributedField2D.from_function(comm, GRID, lambda la, lo: la)
            north, south, _, _ = f.exchange_halos()
            rs, _ = f.local_slices
            checks = []
            if rs.start == 0:
                checks.append(np.array_equal(south, f.data[0]))
            if rs.stop == GRID.nlat:
                checks.append(np.array_equal(north, f.data[-1]))
            return all(checks)

        assert all(spmd(4, main))


class TestAssemblyAndReduction:
    def test_gather_set_roundtrip(self, spmd):
        full = np.arange(96, dtype=float).reshape(8, 12)

        def main(comm):
            f = DistributedField2D(comm, GRID)
            f.set_from_global(full if comm.rank == 0 else None)
            again = f.gather_global()
            return None if again is None else np.array_equal(again, full)

        assert spmd(4, main)[0] is True

    def test_area_mean_matches_1d_bitwise(self, spmd):
        def main2d(comm):
            return DistributedField2D.from_function(comm, GRID, smooth).area_mean()

        def main1d(comm):
            return DistributedField.from_function(comm, GRID, smooth).area_mean()

        assert spmd(6, main2d)[0] == spmd(2, main1d)[0]


class TestModelsOn2D:
    @pytest.mark.parametrize("cls", [AtmosphereModel, OceanModel, SeaIceModel])
    def test_model_identical_to_1d(self, spmd, cls):
        """Any component model produces bitwise-identical physics on the
        2-D decomposition."""

        def main2d(comm):
            m = cls(comm, GRID, cls.default_params(), field_cls=DistributedField2D)
            for _ in range(4):
                m.step(3600.0)
            return m.temperature.gather_global(root=0)

        def main1d(comm):
            m = cls(comm, GRID, cls.default_params())
            for _ in range(4):
                m.step(3600.0)
            return m.temperature.gather_global(root=0)

        reference = spmd(1, main1d)[0]
        np.testing.assert_array_equal(spmd(4, main2d)[0], reference)

    def test_mean_temperature_consistent(self, spmd):
        def main(comm):
            m = OceanModel(comm, GRID, OceanModel.default_params(), field_cls=DistributedField2D)
            m.step(3600.0)
            return m.mean_temperature()

        values = spmd(6, main)
        assert len(set(values)) == 1

    def test_checkpoint_across_decompositions(self, spmd, tmp_path):
        """Save on a 2-D decomposition, restore on 1-D: exact."""

        def save2d(comm):
            m = SeaIceModel(
                comm, GRID, SeaIceModel.default_params(), field_cls=DistributedField2D
            )
            for _ in range(2):
                m.step(3600.0)
            checkpoint.save(m, tmp_path, "ice")
            return m.temperature.gather_global(root=0)

        def load1d(comm):
            m = SeaIceModel(comm, GRID, SeaIceModel.default_params())
            checkpoint.restore(m, tmp_path, "ice")
            return (m.temperature.gather_global(root=0), m.mean_thickness())

        saved = spmd(4, save2d)[0]
        restored, thickness = spmd(2, load1d)[0]
        np.testing.assert_array_equal(saved, restored)
        assert thickness > 0
