"""CCSM implicit coupling: the coupling-algorithms library wired into the
paper's coupled system.

Implicit mode replaces the one fixed flux exchange per step with an
iterate-to-convergence loop (a :mod:`repro.coupling` solver over the
interface temperatures), so the fluxes are computed from the *converged*
state.  These tests pin the mode's diagnostics, its transport
independence (p2p == join, bitwise), energy conservation, the
accelerated solvers and predictors, sub-cycling, and every configuration
guard."""

import numpy as np
import pytest

from repro.climate.ccsm import (
    MODEL_KINDS,
    CCSMConfig,
    run_ccsm,
    total_energy_series,
)
from repro.errors import ReproError

TINY = {"atmosphere": (6, 12), "ocean": (5, 8), "land": (4, 6), "ice": (3, 6)}
PROCS = {kind: 1 for kind in MODEL_KINDS} | {"coupler": 1}
NSTEPS = 3


def implicit_cfg(**overrides):
    base = dict(
        shapes=TINY,
        procs=PROCS,
        nsteps=NSTEPS,
        coupling="implicit",
        coupling_tol=1e-9,
    )
    base.update(overrides)
    return CCSMConfig(**base)


@pytest.fixture(scope="module")
def implicit_reference():
    """One implicit SCME run shared by the equivalence tests."""
    return run_ccsm("scme", implicit_cfg())


class TestImplicitRun:
    def test_coupler_reports_iteration_history(self, implicit_reference):
        coupler = implicit_reference["coupler"]
        assert coupler["coupling_solver"] == "gauss_seidel"
        assert len(coupler["coupling_iterations"]) == NSTEPS
        assert coupler["coupling_converged"] == [True] * NSTEPS
        assert all(i >= 1 for i in coupler["coupling_iterations"])

    def test_exchange_balances_at_roundoff(self, implicit_reference):
        assert implicit_reference["coupler"]["max_exchange_residual"] < 1e-10

    def test_temperatures_physical(self, implicit_reference):
        for kind in MODEL_KINDS:
            series = np.array(implicit_reference[kind]["mean_T"])
            assert len(series) == NSTEPS + 1
            assert np.all(series > 150.0) and np.all(series < 350.0)

    def test_implicit_differs_from_explicit(self, implicit_reference):
        """Iterating to convergence must actually change the answer —
        otherwise the mode is a no-op and these tests prove nothing."""
        explicit = run_ccsm("scme", implicit_cfg(coupling="explicit"))
        assert any(
            not np.array_equal(
                explicit[kind]["final_field"], implicit_reference[kind]["final_field"]
            )
            for kind in MODEL_KINDS
        )


class TestTransportIndependence:
    def test_join_matches_p2p_bitwise(self, implicit_reference):
        """The implicit loop is transport-agnostic: the §5.1 join
        collectives and the §5.2 p2p messages carry identical bits."""
        diags = run_ccsm("scme", implicit_cfg(exchange="join"))
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                diags[kind]["final_field"], implicit_reference[kind]["final_field"]
            )
            assert diags[kind]["mean_T"] == implicit_reference[kind]["mean_T"]
        assert (
            diags["coupler"]["coupling_iterations"]
            == implicit_reference["coupler"]["coupling_iterations"]
        )

    def test_multiprocess_components_identical(self, implicit_reference):
        """Decomposition independence holds under the implicit loop."""
        cfg = implicit_cfg(procs=dict(PROCS, atmosphere=2, ocean=2))
        diags = run_ccsm("scme", cfg)
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(
                diags[kind]["final_field"], implicit_reference[kind]["final_field"]
            )


class TestConservation:
    def test_closed_system_conserves_energy(self):
        """The E11 audit survives the iterated exchange: with forcing off,
        total energy is conserved through implicit coupling steps."""
        cfg = CCSMConfig.conservation(
            shapes=TINY, procs=PROCS, nsteps=4, coupling="implicit"
        )
        diags = run_ccsm("scme", cfg)
        energy = total_energy_series(diags)
        drift = abs(energy[-1] - energy[0]) / abs(energy[0])
        assert drift < 1e-12


class TestAcceleratedSolvers:
    @pytest.mark.parametrize("solver", ["aitken", "iqn_ils"])
    def test_accelerated_solver_converges_to_same_state(
        self, implicit_reference, solver
    ):
        diags = run_ccsm("scme", implicit_cfg(coupling_solver=solver))
        coupler = diags["coupler"]
        assert coupler["coupling_solver"] == solver
        assert coupler["coupling_converged"] == [True] * NSTEPS
        # Same fixed point to within the interface tolerance...
        for kind in MODEL_KINDS:
            np.testing.assert_allclose(
                diags[kind]["final_field"],
                implicit_reference[kind]["final_field"],
                atol=1e-6,
            )
        # ...for no more work than plain relaxation.
        assert sum(coupler["coupling_iterations"]) <= sum(
            implicit_reference["coupler"]["coupling_iterations"]
        )

    @pytest.mark.parametrize("predictor", ["constant", "linear", "quadratic"])
    def test_predictor_warm_start(self, implicit_reference, predictor):
        """Predictor-seeded steps never cost more iterations than cold
        starts once history exists, and reach the same state."""
        diags = run_ccsm("scme", implicit_cfg(coupling_predictor=predictor))
        cold = implicit_reference["coupler"]["coupling_iterations"]
        warm = diags["coupler"]["coupling_iterations"]
        assert warm[0] == cold[0]  # no history yet: identical cold start
        assert sum(warm[1:]) <= sum(cold[1:])
        assert diags["coupler"]["coupling_converged"] == [True] * NSTEPS
        for kind in MODEL_KINDS:
            np.testing.assert_allclose(
                diags[kind]["final_field"],
                implicit_reference[kind]["final_field"],
                atol=1e-6,
            )


class TestSubcycling:
    def test_explicit_subcycle_runs(self):
        """Sub-cycling is independent of the coupling scheme: explicit
        mode accepts it too (components at different timesteps, one
        exchange per coupling step)."""
        cfg = implicit_cfg(coupling="explicit", subcycle={"ocean": 2, "ice": 3})
        diags = run_ccsm("scme", cfg)
        for kind in MODEL_KINDS:
            series = np.array(diags[kind]["mean_T"])
            assert len(series) == NSTEPS + 1
            assert np.all(series > 150.0) and np.all(series < 350.0)

    def test_subcycle_changes_the_answer(self):
        """m substeps of dt/m is a different integration than one step of
        dt — the histories must differ for the sub-cycled component."""
        base = run_ccsm("scme", implicit_cfg())
        sub = run_ccsm("scme", implicit_cfg(subcycle={"ocean": 4}))
        assert not np.array_equal(
            base["ocean"]["final_field"], sub["ocean"]["final_field"]
        )


class TestValidation:
    def test_implicit_rejects_overlap_mode(self):
        with pytest.raises(ReproError, match="at most one component"):
            run_ccsm("mcme_overlap", implicit_cfg())

    def test_subcycle_rejects_periodic_checkpoints(self, tmp_path):
        with pytest.raises(ReproError, match="sub-cycling"):
            implicit_cfg(
                coupling="explicit",
                subcycle={"ocean": 2},
                checkpoint_every=1,
                checkpoint_dir=str(tmp_path),
            )

    def test_unknown_solver_rejected(self):
        with pytest.raises(ReproError, match="coupling_solver"):
            implicit_cfg(coupling_solver="newton_krylov")

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ReproError, match="coupling_predictor"):
            implicit_cfg(coupling_predictor="cubic")

    def test_nonpositive_tolerance_rejected(self):
        with pytest.raises(ReproError, match="coupling_tol"):
            implicit_cfg(coupling_tol=0.0)

    def test_zero_iteration_budget_rejected(self):
        with pytest.raises(ReproError, match="max_coupling_iterations"):
            implicit_cfg(max_coupling_iterations=0)

    def test_multiprocess_coupler_rejected(self):
        with pytest.raises(ReproError, match="single-process coupler"):
            implicit_cfg(procs=dict(PROCS, coupler=2))

    def test_parallel_coupler_rejected(self):
        with pytest.raises(ReproError, match="serial coupler"):
            implicit_cfg(coupler_mode="parallel")

    def test_crash_recovery_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="explicit-only"):
            implicit_cfg(
                crash_at=("ocean", 1),
                checkpoint_every=1,
                checkpoint_dir=str(tmp_path),
            )

    def test_unknown_subcycle_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown component kind"):
            implicit_cfg(subcycle={"mantle": 2})

    def test_zero_substeps_rejected(self):
        with pytest.raises(ReproError, match="must be >= 1"):
            implicit_cfg(subcycle={"ocean": 0})
