"""The distributed coupler: band-parallel flux computation."""

import numpy as np
import pytest

from repro.climate.ccsm import MODEL_KINDS, CCSMConfig, run_ccsm
from repro.climate.coupler import FluxCoupler
from repro.climate.diagnostics import energy_report
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError

ATM = LatLonGrid(10, 20, "atm")
OCN = LatLonGrid(8, 16, "ocn")
LND = LatLonGrid(5, 10, "lnd")


class TestBandKernel:
    def make(self):
        return FluxCoupler(ATM, {"ocean": OCN, "land": LND}, {"ocean": 15.0, "land": 10.0})

    def fields(self, seed=3):
        rng = np.random.default_rng(seed)
        return (
            rng.normal(285, 5, ATM.shape),
            {"ocean": rng.normal(288, 3, OCN.shape), "land": rng.normal(282, 8, LND.shape)},
        )

    @pytest.mark.parametrize("nbands", [1, 2, 3, 5])
    def test_band_partials_sum_to_serial(self, nbands):
        """Any banding of the kernel reassembles to the serial answer."""
        atm_t, sfc_t = self.fields()
        serial = self.make()
        atm_flux, sfc_fluxes = serial.compute_fluxes(atm_t, sfc_t)

        banded = self.make()
        bounds = np.linspace(0, ATM.nlat, nbands + 1).astype(int)
        atm_parts, sfc_parts = [], {k: np.zeros_like(v) for k, v in sfc_fluxes.items()}
        for b in range(nbands):
            band, partials = banded.compute_fluxes_band(
                atm_t, sfc_t, bounds[b], bounds[b + 1]
            )
            atm_parts.append(band)
            for k, v in partials.items():
                sfc_parts[k] += v
        np.testing.assert_allclose(np.concatenate(atm_parts), atm_flux, atol=1e-10)
        for k in sfc_fluxes:
            np.testing.assert_allclose(sfc_parts[k], sfc_fluxes[k], atol=1e-10)

    def test_record_residual(self):
        atm_t, sfc_t = self.fields()
        engine = self.make()
        atm_flux, sfc_fluxes = engine.compute_fluxes(atm_t, sfc_t)
        engine.record_residual(atm_flux, sfc_fluxes)
        assert len(engine.exchange_residual) == 2
        assert abs(engine.exchange_residual[1]) < 1e-10


class TestParallelCoupledRun:
    def parallel_cfg(self, ncpl, nsteps=3):
        base = CCSMConfig()
        return CCSMConfig(
            nsteps=nsteps,
            procs=dict(base.procs, coupler=ncpl),
            coupler_mode="parallel",
        )

    @pytest.mark.parametrize("ncpl", [2, 3])
    def test_matches_serial_coupler(self, ncpl):
        serial = run_ccsm("scme", CCSMConfig(nsteps=3))
        parallel = run_ccsm("scme", self.parallel_cfg(ncpl))
        for kind in MODEL_KINDS:
            np.testing.assert_allclose(
                parallel[kind]["final_field"],
                serial[kind]["final_field"],
                rtol=0,
                atol=1e-9,
            )

    def test_energy_books_still_close(self):
        diags = run_ccsm("scme", self.parallel_cfg(3, nsteps=4))
        assert diags["coupler"]["max_exchange_residual"] < 1e-10
        report = energy_report(diags)
        assert report.relative_unexplained() < 1e-10

    def test_serial_mode_on_multiproc_coupler_unchanged(self):
        """coupler_mode='serial' with a multi-process coupler keeps the
        rank-0-only behaviour (bitwise vs a 1-process coupler)."""
        base = CCSMConfig(nsteps=2)
        multi = CCSMConfig(nsteps=2, procs=dict(base.procs, coupler=3))
        a = run_ccsm("scme", base)
        b = run_ccsm("scme", multi)
        for kind in MODEL_KINDS:
            np.testing.assert_array_equal(a[kind]["final_field"], b[kind]["final_field"])

    def test_parallel_with_join_rejected(self):
        with pytest.raises(ReproError, match="parallel coupler"):
            CCSMConfig(coupler_mode="parallel", exchange="join")

    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError, match="coupler_mode"):
            CCSMConfig(coupler_mode="vectorised")
