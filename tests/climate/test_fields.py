"""Distributed fields: halo exchange, gather/scatter, reductions
(repro.climate.fields)."""

import numpy as np
import pytest

from repro.climate.fields import DistributedField
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError

GRID = LatLonGrid(8, 6, name="t")


class TestConstruction:
    def test_zero_initialised(self, spmd):
        def main(comm):
            f = DistributedField(comm, GRID)
            return (f.local_shape, float(f.data.sum()))

        values = spmd(4, main)
        assert values == [((2, 6), 0.0)] * 4

    def test_from_function_matches_serial(self, spmd):
        def init(lat, lon):
            return lat + 0.01 * lon

        def main(comm):
            return DistributedField.from_function(comm, GRID, init).gather_global()

        serial = spmd(1, main)[0]
        parallel = spmd(4, main)[0]
        np.testing.assert_array_equal(serial, parallel)

    def test_from_global_slices(self, spmd):
        full = np.arange(48, dtype=float).reshape(8, 6)

        def main(comm):
            f = DistributedField.from_global(comm, GRID, full)
            start, stop = f.rows_range
            np.testing.assert_array_equal(f.data, full[start:stop])
            return True

        assert all(spmd(3, main))

    def test_bad_local_shape_rejected(self, spmd):
        def main(comm):
            DistributedField(comm, GRID, data=np.zeros((1, 1)))

        with pytest.raises(ReproError, match="local block shape"):
            spmd(2, main)

    def test_copy_is_deep(self, spmd):
        def main(comm):
            f = DistributedField(comm, GRID)
            g = f.copy()
            g.data += 1.0
            return float(f.data.sum())

        assert spmd(2, main) == [0.0, 0.0]


class TestGatherScatter:
    def test_gather_reassembles(self, spmd):
        def main(comm):
            f = DistributedField.from_function(comm, GRID, lambda la, lo: la * lo)
            full = f.gather_global()
            return None if full is None else full.shape

        values = spmd(4, main)
        assert values[0] == (8, 6)
        assert values[1:] == [None, None, None]

    def test_scatter_roundtrip(self, spmd):
        full = np.arange(48, dtype=float).reshape(8, 6)

        def main(comm):
            f = DistributedField(comm, GRID)
            f.set_from_global(full if comm.rank == 0 else None)
            again = f.gather_global()
            return None if again is None else np.array_equal(again, full)

        assert spmd(4, main)[0] is True

    def test_scatter_shape_checked(self, spmd):
        def main(comm):
            f = DistributedField(comm, GRID)
            f.set_from_global(np.zeros((3, 3)) if comm.rank == 0 else None)

        with pytest.raises(ReproError, match="global field shape"):
            spmd(2, main)


class TestHalos:
    def test_interior_halos_are_neighbour_rows(self, spmd):
        full = np.arange(48, dtype=float).reshape(8, 6)

        def main(comm):
            f = DistributedField.from_global(comm, GRID, full)
            north, south = f.exchange_halos()
            start, stop = f.rows_range
            expect_north = full[stop] if stop < 8 else full[stop - 1]
            expect_south = full[start - 1] if start > 0 else full[start]
            return (
                np.array_equal(north, expect_north),
                np.array_equal(south, expect_south),
            )

        assert spmd(4, main) == [(True, True)] * 4

    def test_pole_halos_replicate_edges(self, spmd):
        def main(comm):
            f = DistributedField.from_function(comm, GRID, lambda la, lo: la)
            north, south = f.exchange_halos()
            if comm.rank == 0:
                return np.array_equal(south, f.data[0])
            if comm.rank == comm.size - 1:
                return np.array_equal(north, f.data[-1])
            return True

        assert all(spmd(4, main))

    def test_laplacian_decomposition_independent(self, spmd):
        def main(comm):
            f = DistributedField.from_function(
                comm, GRID, lambda la, lo: np.sin(np.deg2rad(la)) * np.cos(np.deg2rad(lo))
            )
            lap = f.laplacian()
            out = DistributedField(comm, GRID, data=lap)
            return out.gather_global()

        serial = spmd(1, main)[0]
        for n in (2, 4, 8):
            parallel = spmd(n, main)[0]
            np.testing.assert_array_equal(serial, parallel)

    def test_laplacian_of_constant_is_zero(self, spmd):
        def main(comm):
            f = DistributedField.from_function(comm, GRID, lambda la, lo: 0 * la + 7.0)
            return float(np.abs(f.laplacian()).max())

        assert spmd(4, main) == [0.0] * 4


class TestReductions:
    def test_area_mean_matches_serial_grid(self, spmd):
        full_holder = {}

        def main(comm):
            f = DistributedField.from_function(comm, GRID, lambda la, lo: la**2 + lo)
            return f.area_mean()

        serial = spmd(1, main)[0]
        for n in (2, 4):
            values = spmd(n, main)
            assert values == [serial] * n  # bitwise identical on all ranks

    def test_area_mean_constant(self, spmd):
        def main(comm):
            f = DistributedField.from_function(comm, GRID, lambda la, lo: 0 * la + 2.5)
            return f.area_mean()

        assert spmd(4, main)[0] == pytest.approx(2.5)
