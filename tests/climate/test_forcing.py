"""Seasonal insolation and CO2 scenarios (repro.climate.forcing)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.climate.components import LandModel, insolation
from repro.climate.forcing import YEAR_SECONDS, CO2Scenario, SeasonalForcing
from repro.climate.grid import LatLonGrid
from repro.errors import ReproError


class TestDeclination:
    def test_zero_at_equinoxes(self):
        f = SeasonalForcing()
        assert f.declination(0.0) == pytest.approx(0.0)
        assert f.declination(YEAR_SECONDS / 2) == pytest.approx(0.0, abs=1e-12)

    def test_extremes_at_solstices(self):
        f = SeasonalForcing(obliquity_deg=23.44)
        north_summer = f.declination(YEAR_SECONDS / 4)
        assert north_summer == pytest.approx(np.deg2rad(23.44))
        assert f.declination(3 * YEAR_SECONDS / 4) == pytest.approx(-north_summer)

    def test_zero_obliquity_no_seasons(self):
        f = SeasonalForcing(obliquity_deg=0.0)
        for frac in (0.1, 0.3, 0.7):
            assert f.declination(frac * YEAR_SECONDS) == 0.0


class TestDailyInsolation:
    def test_equinox_hemispheric_symmetry(self):
        f = SeasonalForcing()
        q = f.daily_insolation(np.array([-45.0, 45.0]), t=0.0)
        assert q[0] == pytest.approx(q[1])

    def test_polar_night_is_dark(self):
        f = SeasonalForcing()
        # Southern winter solstice: south pole dark.
        q = f.daily_insolation(np.array([-89.0]), t=YEAR_SECONDS / 4)
        assert q[0] == pytest.approx(0.0, abs=1e-9)

    def test_polar_day_beats_equator(self):
        """At summer solstice the pole's 24h sun out-insolates the equator
        (the classic counterintuitive result)."""
        f = SeasonalForcing()
        q = f.daily_insolation(np.array([89.0, 0.0]), t=YEAR_SECONDS / 4)
        assert q[0] > q[1]

    def test_never_negative(self):
        f = SeasonalForcing()
        lats = np.linspace(-90, 90, 37)
        for frac in np.linspace(0, 1, 13):
            assert np.all(f.daily_insolation(lats, frac * YEAR_SECONDS) >= 0.0)

    def test_annual_mean_matches_ebm_profile_shape(self):
        """The annual mean of the seasonal formula tracks the static P2
        profile: warm equator, cold poles, hemispherically symmetric."""
        f = SeasonalForcing()
        lats = np.array([-80.0, -40.0, 0.0, 40.0, 80.0])
        mean = f.annual_mean(lats, samples=146)
        assert mean[2] == max(mean)
        np.testing.assert_allclose(mean[0], mean[4], rtol=1e-6)
        static = insolation(lats, 1361.0)
        # Same ordering equator->pole as the static profile.
        assert np.all(np.argsort(mean) == np.argsort(static))

    def test_global_annual_mean_is_quarter_s0(self):
        f = SeasonalForcing()
        grid = LatLonGrid(48, 2)
        mean_profile = f.annual_mean(grid.lat_centers, samples=146)
        weights = grid.area_weights[:, 0] * grid.nlon
        global_mean = float((mean_profile * weights).sum())
        assert global_mean == pytest.approx(1361.0 / 4.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ReproError):
            SeasonalForcing(obliquity_deg=95.0)
        with pytest.raises(ReproError):
            SeasonalForcing(year_seconds=0.0)


class TestCO2Scenario:
    def test_flat_path_no_forcing(self):
        s = CO2Scenario()
        assert s.forcing(5 * YEAR_SECONDS) == 0.0
        assert s.years_to_doubling() == float("inf")

    def test_one_percent_doubling_time(self):
        s = CO2Scenario(rate_per_year=0.01)
        assert s.years_to_doubling() == pytest.approx(69.66, abs=0.1)

    def test_forcing_at_doubling(self):
        s = CO2Scenario(rate_per_year=0.01, forcing_per_doubling=4.0)
        t_double = s.years_to_doubling() * YEAR_SECONDS
        assert s.forcing(t_double) == pytest.approx(4.0, rel=1e-6)

    def test_concentration_grows(self):
        s = CO2Scenario(rate_per_year=0.01)
        assert s.concentration(YEAR_SECONDS) == pytest.approx(380.0 * 1.01)

    def test_validation(self):
        with pytest.raises(ReproError):
            CO2Scenario(initial_ppm=-1.0)


class TestForcedComponents:
    GRID = LatLonGrid(8, 8)

    def test_seasonal_cycle_amplitude_grows_poleward(self, spmd):
        """A fast-responding land surface shows a larger seasonal
        temperature swing at high latitude than at the equator."""
        forcing = SeasonalForcing()
        # ~40-day response timescale (C/B), well inside the explicit
        # stability limit B*dt/C << 1 at 5-day steps.
        params = replace(
            LandModel.default_params(), heat_capacity=1e7, olr_a=0.0, olr_b=3.0
        )
        dt = YEAR_SECONDS / 73  # 5-day steps

        def main(comm):
            m = LandModel(comm, self.GRID, params, forcing=forcing)
            highs, equats = [], []
            for step in range(3 * 73):  # three model years
                m.step(dt)
                if step < 2 * 73:
                    continue  # spin-up: measure the final year only
                full = m.temperature.gather_global(root=0)
                if comm.rank == 0:
                    highs.append(full[-1].mean())  # northernmost band
                    equats.append(full[4].mean())
            if comm.rank == 0:
                return (max(highs) - min(highs), max(equats) - min(equats))
            return None

        high_amp, eq_amp = spmd(2, main)[0]
        assert high_amp > 2.0 * eq_amp

    def test_co2_scenario_warms(self, spmd):
        params = replace(
            LandModel.default_params(), heat_capacity=2e8, olr_a=240.0, olr_b=3.0
        )
        scenario = CO2Scenario(rate_per_year=0.05)
        dt = YEAR_SECONDS / 12

        def main(comm):
            base = LandModel(comm, self.GRID, params)
            warm = LandModel(comm, self.GRID, params, co2=scenario)
            for _ in range(36):  # three years
                base.step(dt)
                warm.step(dt)
            return warm.mean_temperature() - base.mean_temperature()

        assert spmd(1, main)[0] > 0.1

    def test_unforced_path_unchanged(self, spmd):
        """forcing=None keeps the original static-insolation behaviour
        bitwise (regression guard for the refactor)."""

        def main(comm):
            m = LandModel(comm, self.GRID, LandModel.default_params())
            for _ in range(3):
                m.step(3600.0)
            return m.temperature.gather_global(root=0)

        a = spmd(1, main)[0]
        b = spmd(2, main)[0]
        np.testing.assert_array_equal(a, b)

    def test_current_time_advances(self, spmd):
        def main(comm):
            m = LandModel(comm, self.GRID, LandModel.default_params())
            m.step(100.0)
            m.step(150.0)
            return m.current_time

        assert spmd(1, main) == [250.0]
