"""Root conftest: registers the repo-wide pytest plugins.

``pytest_plugins`` must live in the rootdir conftest (a hard error
elsewhere in modern pytest).  The plugins:

* :mod:`tests.plugins.schedule_sweep` — seed sweeping, the
  ``mpi_world``/``sweep_config`` fixtures, and the failing-run repro
  command;
* :mod:`tests.plugins.backend_select` — the ``--mpi-backend`` option and
  the ``mpi_backend``/``backend_spmd`` fixtures parametrizing the
  conformance suite over the thread and process backends.
"""

pytest_plugins = (
    "tests.plugins.schedule_sweep",
    "tests.plugins.backend_select",
)
