"""Root conftest: registers the schedule-sweep plugin repo-wide.

``pytest_plugins`` must live in the rootdir conftest (a hard error
elsewhere in modern pytest); the plugin itself — seed sweeping, the
``mpi_world``/``sweep_config`` fixtures, and the failing-run repro
command — is :mod:`tests.plugins.schedule_sweep`.
"""

pytest_plugins = ("tests.plugins.schedule_sweep",)
